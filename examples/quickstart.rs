//! Quickstart: mediate a handful of queries by hand and watch satisfaction
//! and ω evolve.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use sbqa::core::{Mediator, StaticIntentions};
use sbqa::types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
};

fn main() {
    // A mediator running the SbQA allocation process: KnBest pre-selection
    // followed by satisfaction-balanced SQLB scoring.
    let config = SystemConfig::default().with_knbest(5, 5);
    let mut mediator = Mediator::sbqa(config, 42).expect("default configuration is valid");

    // Five providers able to answer capability-0 queries, with one unit of
    // capacity each.
    let caps = CapabilitySet::singleton(Capability::new(0));
    for p in 0..5u64 {
        mediator.register_provider(ProviderId::new(p), caps, 1.0);
    }
    let consumer = ConsumerId::new(100);
    mediator.register_consumer(consumer);

    // The consumer trusts provider 3 and dislikes provider 0; provider 3 is
    // keen on this consumer's queries, provider 0 is not.
    let mut intentions =
        StaticIntentions::new().with_defaults(Intention::new(0.2), Intention::new(0.2));
    intentions.set_consumer_intention(ProviderId::new(3), Intention::new(0.9));
    intentions.set_consumer_intention(ProviderId::new(0), Intention::new(-0.6));
    intentions.set_provider_intention(ProviderId::new(3), Intention::new(0.8));
    intentions.set_provider_intention(ProviderId::new(0), Intention::new(-0.4));

    println!("query  selected        omega   consumer-sat");
    println!("--------------------------------------------");
    for q in 0..10u64 {
        let query = Query::builder(QueryId::new(q), consumer, Capability::new(0))
            .replication(1)
            .build();
        match mediator.submit(&query, &intentions) {
            Ok(outcome) => {
                let selected: Vec<String> =
                    outcome.selected().iter().map(ToString::to_string).collect();
                println!(
                    "{:<6} {:<15} {:<7.3} {:.3}",
                    query.id,
                    selected.join(","),
                    outcome.decision.omega.unwrap_or(f64::NAN),
                    mediator
                        .satisfaction()
                        .consumer_satisfaction(consumer)
                        .value()
                );
            }
            Err(err) => println!("{:<6} could not be allocated: {err}", query.id.to_string()),
        }
    }

    println!("\nProvider satisfaction after 10 mediations:");
    let mut rows: Vec<(ProviderId, f64)> = mediator
        .satisfaction()
        .provider_satisfactions()
        .map(|(id, s)| (id, s.value()))
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    for (id, satisfaction) in rows {
        println!("  {id}: {satisfaction:.3}");
    }
}
