//! Playing a BOINC participant (Scenario 7, scripted).
//!
//! In the live demo a member of the audience sets her own preferences and
//! watches how the different mediations treat her. This example scripts that
//! participant: a volunteer that only wants to compute for the *unpopular*
//! project (Einstein@home) and refuses the others, injected into an ordinary
//! autonomous population. It then reports, for each mediation, whether the
//! volunteer reached its objective — measured by its own satisfaction and by
//! how many of the queries it performed came from its beloved project.
//!
//! Run with:
//! ```text
//! cargo run --release --example play_participant
//! ```

use sbqa::boinc::{Scenario, ScenarioId};
use sbqa::metrics::Table;

fn main() {
    let scenario = Scenario::sized(ScenarioId::S7, 60, 150.0, 15.0);
    println!(
        "Scenario {} — {}\n",
        scenario.id.number(),
        scenario.id.title()
    );
    println!("The scripted volunteer (id p9999) donates 2.0 units of capacity but only");
    println!("wants Einstein@home work; it refuses SETI@home and proteins@home.\n");

    let outcome = scenario.run().expect("scenario runs");

    let mut table = Table::new(
        "How each mediation serves the scripted volunteer",
        &[
            "technique",
            "volunteer satisfaction",
            "still online?",
            "queries it performed",
            "overall provider sat",
        ],
    );
    for result in &outcome.results {
        let performed = result
            .report
            .queries_per_provider
            .iter()
            .find(|(id, _)| id.raw() == 9_999)
            .map_or(0, |(_, n)| *n);
        table.add_row(&[
            result.label.clone(),
            result
                .focus_satisfaction
                .map_or_else(|| "departed".to_string(), Table::num),
            result.focus_satisfaction.is_some().to_string(),
            performed.to_string(),
            Table::num(result.report.final_provider_satisfaction()),
        ]);
    }
    println!("{table}");

    println!("The SQLB mediation used by SbQA is the only one that *asks* the volunteer what");
    println!("it wants, so it is the only one that can route Einstein@home work its way on");
    println!("purpose; the baselines only ever satisfy it by accident.");
}
