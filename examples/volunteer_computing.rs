//! Volunteer computing: the paper's BOINC setting, end to end.
//!
//! Generates the three demo projects (SETI@home, proteins@home,
//! Einstein@home) and a volunteer population, then runs Scenario 4 — SbQA
//! against the Capacity-based and Economic baselines in an *autonomous*
//! environment where dissatisfied participants quit — and prints the
//! comparison table plus the retained-capacity story.
//!
//! Run with:
//! ```text
//! cargo run --release --example volunteer_computing
//! ```

use sbqa::boinc::{Scenario, ScenarioId};

fn main() {
    // The quick preset keeps the run under a couple of seconds; swap for
    // `Scenario::new(ScenarioId::S4)` to reproduce the full-size experiment.
    let scenario = Scenario::sized(ScenarioId::S4, 80, 150.0, 20.0);
    println!(
        "Running Scenario {} — {}\n",
        scenario.id.number(),
        scenario.id.title()
    );
    println!(
        "population: {} volunteers, {} projects, autonomous environment\n",
        scenario.population.volunteers, 3
    );

    let outcome = scenario.run().expect("scenario runs");
    println!("{}", outcome.table());

    println!("What to look for:");
    println!("  * 'providers kept' and 'capacity kept' — SbQA keeps dissatisfied volunteers");
    println!("    from quitting, so it preserves more of the donated capacity;");
    println!("  * 'mean resp' — with more capacity online, response times stay lower even");
    println!("    though SbQA does not optimise them directly;");
    println!("  * 'provider sat' — the satisfaction gap between techniques explains the");
    println!("    departures (Scenario 2's prediction).");

    for result in &outcome.results {
        let report = &result.report;
        println!(
            "\n[{}] issued {} queries, completed {} ({:.1}% completion), throughput {:.2} q/s",
            result.label,
            report.queries_issued,
            report.response.completed(),
            report.response.completion_rate() * 100.0,
            report.throughput(),
        );
    }
}
