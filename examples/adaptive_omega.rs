//! The self-adaptation knob: adaptive ω (Equation 2) versus fixed ω.
//!
//! SbQA's distinguishing feature is that the balance between consumers' and
//! providers' intentions is not a constant: it is recomputed at every
//! mediation from the satisfaction gap, `ω = ((δs(c) − δs(p)) + 1) / 2`, so
//! whichever side is worse off gets more weight. This example runs the same
//! autonomous BOINC population under the adaptive policy and under several
//! fixed values of ω, and prints how the two sides' satisfaction and the
//! fairness gap respond — the core of Scenario 6's ω axis.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_omega
//! ```

use sbqa::boinc::{BoincPopulation, PopulationConfig};
use sbqa::core::SbqaAllocator;
use sbqa::metrics::Table;
use sbqa::sim::{DeparturePolicy, SimulationBuilder, SimulationConfig};
use sbqa::types::{OmegaPolicy, SystemConfig};

fn main() {
    let population = BoincPopulation::generate(
        &PopulationConfig::default()
            .with_volunteers(60)
            .with_arrival_rate(15.0),
    );

    let policies = [
        ("adaptive (Eq. 2)", OmegaPolicy::Adaptive),
        ("fixed 0.00 (consumer only)", OmegaPolicy::Fixed(0.0)),
        ("fixed 0.50 (balanced)", OmegaPolicy::Fixed(0.5)),
        ("fixed 1.00 (provider only)", OmegaPolicy::Fixed(1.0)),
    ];

    let mut table = Table::new(
        "Adaptive vs fixed omega — autonomous BOINC population",
        &[
            "omega policy",
            "consumer sat",
            "provider sat",
            "sat gap",
            "providers kept",
            "mean resp (s)",
        ],
    );

    for (label, omega) in policies {
        let system = SystemConfig::default().with_omega(omega);
        let config = SimulationConfig {
            duration: 150.0,
            sample_interval: 5.0,
            departure: DeparturePolicy::paper_autonomous(),
            system: system.clone(),
            ..SimulationConfig::default()
        };
        let report = SimulationBuilder::new(config)
            .allocator(Box::new(
                SbqaAllocator::new(system, 11).expect("valid configuration"),
            ))
            .consumers(population.consumers.iter().cloned())
            .providers(population.providers.iter().cloned())
            .run()
            .expect("simulation runs");

        let consumer = report.final_consumer_satisfaction();
        let provider = report.final_provider_satisfaction();
        table.add_row(&[
            label.to_string(),
            Table::num(consumer),
            Table::num(provider),
            Table::num((consumer - provider).abs()),
            format!(
                "{}/{}",
                report.participants.final_providers, report.participants.initial_providers
            ),
            Table::num(report.response.mean()),
        ]);
    }

    println!("{table}");
    println!("Reading guide: extreme fixed values favour one side of the market (a small");
    println!("satisfaction for the other side, more departures); the adaptive policy keeps");
    println!("the gap small without an operator having to pick the right constant.");
}
