//! E-commerce mediation: SbQA outside of BOINC.
//!
//! The paper's introduction motivates participant interests with e-commerce
//! examples (eBay, Google AdWords): providers are merchants that *want*
//! certain kinds of requests (the products they are promoting), consumers are
//! buyers with preferences over merchants (reputation). This example builds
//! such a marketplace directly on the simulator — without the BOINC layer —
//! and compares SbQA with the Capacity baseline when a merchant runs a
//! promotion campaign on one product category.
//!
//! Run with:
//! ```text
//! cargo run --release --example ecommerce
//! ```

use sbqa::baselines::CapacityAllocator;
use sbqa::core::intention::{
    ConsumerIntentionStrategy, ConsumerProfile, ProviderIntentionStrategy, ProviderProfile,
};
use sbqa::core::SbqaAllocator;
use sbqa::sim::{ConsumerSpec, NetworkConfig, ProviderSpec, SimulationBuilder, SimulationConfig};
use sbqa::types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, QueryClass, SystemConfig,
};

/// Product categories sold on the marketplace.
fn books() -> Capability {
    Capability::new(0)
}

fn electronics() -> Capability {
    Capability::new(1)
}

fn merchants() -> Vec<ProviderSpec> {
    let mut merchants = Vec::new();
    // Ten generalist merchants with mild interest in everything.
    for id in 0..10u64 {
        let profile = ProviderProfile::new(
            ProviderIntentionStrategy::Hybrid {
                preference_weight: 0.5,
                acceptable_backlog: 3.0,
            },
            Intention::new(0.2),
        );
        let mut caps = CapabilitySet::new();
        caps.insert(books());
        caps.insert(electronics());
        merchants.push(ProviderSpec::new(ProviderId::new(id), caps, 1.5, profile));
    }
    // One merchant running an electronics promotion: it *really* wants
    // electronics requests and has no interest in book requests — the
    // AdWords-style campaign from the paper's introduction.
    let campaign = ProviderProfile::new(ProviderIntentionStrategy::Preference, Intention::NEUTRAL)
        .with_class_preference(QueryClass::Long, Intention::new(0.2))
        .with_consumer_preference(ConsumerId::new(0), Intention::new(0.9))
        .with_consumer_preference(ConsumerId::new(1), Intention::new(-0.8));
    let mut caps = CapabilitySet::new();
    caps.insert(books());
    caps.insert(electronics());
    merchants.push(ProviderSpec::new(ProviderId::new(10), caps, 2.0, campaign));
    merchants
}

fn buyers() -> Vec<ConsumerSpec> {
    // Consumer 0 buys electronics, consumer 1 buys books. Both trust the
    // campaign merchant a little more than average (it advertises heavily).
    [electronics(), books()]
        .into_iter()
        .enumerate()
        .map(|(i, capability)| {
            let profile =
                ConsumerProfile::new(ConsumerIntentionStrategy::Preference, Intention::new(0.3))
                    .with_preference(ProviderId::new(10), Intention::new(0.6));
            ConsumerSpec::new(ConsumerId::new(i as u64), capability, 8.0, 1.0, 1, profile)
        })
        .collect()
}

fn run(label: &str, allocator: Box<dyn sbqa::core::QueryAllocator>) {
    let config = SimulationConfig {
        duration: 200.0,
        sample_interval: 10.0,
        network: NetworkConfig::default(),
        system: SystemConfig::default().with_knbest(8, 4),
        ..SimulationConfig::default()
    };
    let report = SimulationBuilder::new(config)
        .allocator(allocator)
        .consumers(buyers())
        .providers(merchants())
        .run()
        .expect("simulation runs");

    let campaign_queries = report
        .queries_per_provider
        .iter()
        .find(|(id, _)| *id == ProviderId::new(10))
        .map_or(0, |(_, n)| *n);
    let campaign_satisfaction = report
        .provider_satisfaction_of(ProviderId::new(10))
        .unwrap_or(0.0);

    println!("== {label} ==");
    println!(
        "  completed requests: {}   mean response: {:.3}s   p95: {:.3}s",
        report.response.completed(),
        report.response.mean(),
        report.response.p95()
    );
    println!(
        "  campaign merchant: handled {campaign_queries} requests, satisfaction {campaign_satisfaction:.3}"
    );
    println!(
        "  buyer satisfaction: {:.3}   merchant satisfaction: {:.3}\n",
        report.final_consumer_satisfaction(),
        report.final_provider_satisfaction()
    );
}

fn main() {
    println!("Marketplace: 11 merchants, 2 buyers, one merchant runs an electronics promotion.\n");
    let system = SystemConfig::default().with_knbest(8, 4);
    run(
        "SbQA (interest-aware mediation)",
        Box::new(SbqaAllocator::new(system, 7).expect("valid configuration")),
    );
    run(
        "Capacity (load-only mediation)",
        Box::new(CapacityAllocator::new()),
    );
    println!("With SbQA the promoting merchant attracts the electronics requests it wants");
    println!("(higher satisfaction, more handled requests) without buyers paying a large");
    println!("response-time penalty; the load-only mediation spreads requests blindly.");
}
