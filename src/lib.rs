//! # sbqa — Satisfaction-based Query Allocation
//!
//! An open-source reproduction of *"SbQA: A Self-Adaptable Query Allocation
//! Process"* (Quiané-Ruiz, Lamarre, Valduriez — ICDE 2009): a query-allocation
//! framework for distributed information systems in which autonomous
//! consumers and providers have private interests in queries, may become
//! dissatisfied, and may leave — taking their capacity with them.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`types`] — identifiers, the `[-1, 1]` intention and `[0, 1]`
//!   satisfaction domains, queries, capabilities, configuration;
//! * [`satisfaction`] — the long-run satisfaction model (Definitions 1 and 2)
//!   plus adequation / allocation-efficiency analysis;
//! * [`core`] — the SbQA allocation process: KnBest pre-selection, SQLB
//!   scoring (Definition 3) with the self-adapting ω of Equation 2, the
//!   mediator, and the [`core::QueryAllocator`] trait every technique
//!   implements;
//! * [`baselines`] — the Capacity-based and Economic (Mariposa-style)
//!   baselines of the paper, plus Random / Round-robin / Load-based sanity
//!   baselines;
//! * [`service`] — the sharded mediation service: provider-disjoint mediator
//!   shards behind a deterministic router, with an async mpsc ingest front
//!   and per-shard tail-latency instrumentation;
//! * [`sim`] — the discrete-event simulator standing in for SimJava, plus
//!   the open-loop sharded runner path ([`sim::sharded`]);
//! * [`boinc`] — the BOINC-shaped volunteer-computing workload and the seven
//!   demonstration scenarios;
//! * [`metrics`] — the measurement toolkit shared by every experiment.
//!
//! ## Quick start
//!
//! ```
//! use sbqa::core::{Mediator, StaticIntentions};
//! use sbqa::types::{
//!     Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
//! };
//!
//! // A mediator running the SbQA allocation process.
//! let mut mediator = Mediator::sbqa(SystemConfig::default(), 42).unwrap();
//!
//! // Three providers able to answer capability-0 queries.
//! for p in 0..3u64 {
//!     mediator.register_provider(
//!         ProviderId::new(p),
//!         CapabilitySet::singleton(Capability::new(0)),
//!         1.0,
//!     );
//! }
//! mediator.register_consumer(ConsumerId::new(1));
//!
//! // The consumer prefers provider 2; provider 2 likes the consumer's queries.
//! let mut intentions = StaticIntentions::new()
//!     .with_defaults(Intention::new(0.1), Intention::new(0.1));
//! intentions.set_consumer_intention(ProviderId::new(2), Intention::new(0.9));
//! intentions.set_provider_intention(ProviderId::new(2), Intention::new(0.8));
//!
//! let query = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0)).build();
//! let outcome = mediator.submit(&query, &intentions).unwrap();
//! assert_eq!(outcome.selected()[0], ProviderId::new(2));
//! ```

#![forbid(unsafe_code)]

pub use sbqa_baselines as baselines;
pub use sbqa_boinc as boinc;
pub use sbqa_core as core;
pub use sbqa_metrics as metrics;
pub use sbqa_satisfaction as satisfaction;
pub use sbqa_service as service;
pub use sbqa_sim as sim;
pub use sbqa_types as types;

/// The crate version, kept in sync with the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exported() {
        assert!(!super::VERSION.is_empty());
    }
}
