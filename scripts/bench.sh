#!/usr/bin/env bash
# Runs the criterion micro-benchmarks and collects their results as JSON.
#
# Each bench appends JSON lines ({"id": ..., "ns_per_iter": ..., "iters": ...})
# to bench_results/BENCH_<name>.json via the CRITERION_JSON environment
# variable understood by the vendored criterion harness. Human-readable
# `bench: ...` lines still go to stdout.
#
# Usage: scripts/bench.sh [output-dir]    (default: bench_results)

set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with their package directory as
# CWD, so a relative CRITERION_JSON would land in crates/bench/.
OUT_DIR="$(pwd)/${1:-bench_results}"
mkdir -p "$OUT_DIR"

BENCHES=(adaptive allocation cache knbest overload registry replication scoring scenarios service window)

for bench in "${BENCHES[@]}"; do
    out="$OUT_DIR/BENCH_${bench}.json"
    : > "$out"
    echo "== bench: $bench -> $out"
    CRITERION_JSON="$out" cargo bench -p sbqa_bench --bench "$bench"
done

echo
echo "Results written to $OUT_DIR/BENCH_*.json:"
wc -l "$OUT_DIR"/BENCH_*.json
