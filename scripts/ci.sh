#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 verify, and the auxiliary
# targets (workspace tests, examples, benches).
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (no deps, rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== sbqa-lint (repo-specific static analysis, warnings are errors)"
# Source-level proof of the determinism / panic-freedom / unsafe-audit
# contracts (ARCHITECTURE.md "Statically-enforced invariants"): no wall
# clock, hash-ordered collections or entropy-seeded RNG in deterministic
# crates, no panics in mediator library code, no partial_cmp float ordering,
# SAFETY comments on every unsafe block — with justified waivers pinned in
# bench_results/LINT_baseline.json.
cargo run --release -p sbqa-lint -- --deny-warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests (root package already covered by tier-1)"
cargo test --workspace --exclude sbqa -q

echo "== examples and benches compile"
cargo build --examples
cargo bench --no-run -p sbqa_bench

echo "== bench smoke: scenario1 --quick, scenario_multicap --quick, scenario_sharded --quick, scenario_adaptive --quick, scenario_failover --quick and the registry bench"
# Exercises the allocation hot path end-to-end (golden-output protected by
# tests/golden_scenario1.rs), the multi-capability postings-merge path
# (golden-output protected by tests/golden_multicap.rs; the candidate-plan
# cache and batch dedup are on by default, so this smoke drives the cached
# resolution path and prints the cache hit/miss table), the sharded
# mediation service — the run itself asserts the 1-shard ≡ single-mediator
# determinism contract and exercises the threaded ingest front — the
# adaptive-kn controller — whose run asserts the self-adaptation claim
# (adaptive ≥ best static kn on aggregate consumer satisfaction) — and the
# capability-index micro-bench — whose candidates/* series cover single-cap
# lookup vs 2- and 4-way All/Any merges — so a hot-path regression that only
# shows up at runtime still fails CI. The failover smoke crashes every
# shard's primary at the stream midpoint and exits non-zero unless the
# promoted run's merged outcome stream is byte-identical to the
# uninterrupted one, so replication replay is exercised end-to-end on every
# CI run.
cargo run --release -p sbqa_bench --bin scenario1 -- --quick > /dev/null
cargo run --release -p sbqa_bench --bin scenario_multicap -- --quick > /dev/null
cargo run --release -p sbqa_bench --bin scenario_sharded -- --quick --shards 1,2 > /dev/null
cargo run --release -p sbqa_bench --bin scenario_adaptive -- --quick > /dev/null
cargo run --release -p sbqa_bench --bin scenario_failover -- --quick > /dev/null
cargo bench -p sbqa_bench --bench registry > /dev/null

echo "== overload smoke: scenario_overload --quick"
# Drives sustained 1x/10x/100x arrival steps through the bounded-ring
# ingest with the degradation ladder armed, and exits non-zero unless the
# 100x decision stream (outcome digest + shed-set digest) is identical
# across re-runs and producer chunk sizes AND all four tiers
# (normal/shrink-kn/baseline/shed) are observed and counted. This is the
# past-saturation behavior gate: overload must degrade deterministically,
# never by queue explosion.
cargo run --release -p sbqa_bench --bin scenario_overload -- --quick > /dev/null

echo "== 1M-provider smoke: scenario_sharded --providers 1000000 --quick"
# The headline scale: one million registered providers behind the bitmap
# postings index. A quick query stream over 1 and 2 shards proves
# registration, candidate resolution and mediation all hold up at 1M (the
# run re-asserts the 1-shard determinism contract at that scale too).
cargo run --release -p sbqa_bench --bin scenario_sharded -- \
    --providers 1000000 --quick --shards 1,2 > /dev/null

echo "== golden determinism gates (scenario1, multicap, sharded service, failover, overload)"
# Byte-identical-per-seed is a hard invariant (ARCHITECTURE.md): these run
# as part of the test suites above, but are re-run here by name so a
# filtered or partial test invocation can never skip them silently. The
# plan cache and batch-level dedup are enabled by default in every one of
# these runs, so the golden outputs double as proof that caching serves the
# exact bytes the uncached merge path produced. The failover gates pin the
# seed-42 crash-and-promote outcome digest (golden_failover) and assert the
# crashed-run ≡ uninterrupted-run byte-identity under churn (failover).
# The overload gates pin the seed-42 100x-step outcome and shed-set digests
# (golden_overload) and assert run-to-run + chunking byte-identity of the
# degradation ladder's admit/degrade/shed decisions (overload), including
# crash-while-shedding promotion (failover's overload case).
cargo test --release -p sbqa --test golden_scenario1 --test golden_multicap --test determinism -q
cargo test --release -p sbqa_service --test determinism --test failover --test overload -q
cargo test --release -p sbqa_sim --test golden_failover --test golden_overload -q

echo "CI OK"
