#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 verify, and the auxiliary
# targets (workspace tests, examples, benches).
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests (root package already covered by tier-1)"
cargo test --workspace --exclude sbqa -q

echo "== examples and benches compile"
cargo build --examples
cargo bench --no-run -p sbqa_bench

echo "CI OK"
