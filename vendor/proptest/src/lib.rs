//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the subset used by this workspace: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, numeric range strategies,
//! `proptest::collection::vec`, `proptest::bool::ANY`,
//! `proptest::num::f64::ANY`, and tuple strategies.
//!
//! Each property runs a fixed number of randomized cases (deterministically
//! seeded, so failures are reproducible). There is no shrinking: when a case
//! fails, the generated inputs are printed instead.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// How a property test is executed.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the (many) property tests in this
        // workspace fast while still exercising a varied input set.
        Self { cases: 64 }
    }
}

/// A source of random test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// The `Just` strategy: always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy producing arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Produces `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Numeric strategies (`proptest::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::{Rng, RngCore};

        /// The strategy producing arbitrary `f64`s, including NaN and the
        /// infinities.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Produces arbitrary bit patterns plus an over-weighted set of
        /// special values (NaN, ±inf, ±0, extremes), as tests of clamping
        /// code expect to see them.
        pub const ANY: Any = Any;

        const SPECIALS: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
        ];

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                if rng.gen_range(0u32..4) == 0 {
                    SPECIALS[rng.gen_range(0..SPECIALS.len())]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

/// Everything `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __private {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runs `body` for every case, printing the generated inputs when a case
    /// panics so failures are diagnosable without shrinking.
    pub fn run_cases<F: FnMut(&mut TestRng)>(
        config: &ProptestConfig,
        property_name: &str,
        mut body: F,
    ) {
        for case in 0..config.cases {
            // Deterministic per-property, per-case seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in property_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng::seed_from_u64(hash ^ u64::from(case));
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
            if let Err(panic) = outcome {
                eprintln!("proptest stub: property `{property_name}` failed on case {case}");
                resume_unwind(panic);
            }
        }
    }
}

/// The property-test macro. Mirrors proptest's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::__private::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                let __case_inputs = || {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}, ", $arg));
                    )+
                    __s
                };
                let __guard = $crate::__CaseReporter(::std::option::Option::Some(__case_inputs()));
                $body
                ::core::mem::forget(__guard);
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Prints the generated inputs if a property body panics.
#[doc(hidden)]
pub struct __CaseReporter(pub Option<String>);

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if let Some(inputs) = self.0.take() {
            if std::thread::panicking() {
                eprintln!("proptest stub: failing inputs: {inputs}");
            }
        }
    }
}

/// Asserts a condition inside a property, like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..200 {
            let f = crate::Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let v = crate::Strategy::sample(&crate::collection::vec(0u8..10, 2..5), &mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
            let (a, b) = crate::Strategy::sample(&(-1.0f64..=1.0, crate::bool::ANY), &mut rng);
            assert!((-1.0..=1.0).contains(&a));
            let _: bool = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, ys in crate::collection::vec(0.0f64..1.0, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(b in crate::bool::ANY) {
            let negated = !b;
            prop_assert_ne!(b, negated);
        }
    }
}
