//! Offline stand-in for `serde_json`, backed by the vendored serde stub's
//! JSON-like text format. Provides the `to_string` / `from_str` pair with
//! real-serde_json-compatible `Result` signatures.

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON-like string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::to_string(value))
}

/// Deserializes `T` from a string produced by [`to_string`].
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    serde::from_str(text)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_scalars() {
        let json = super::to_string(&42u64).unwrap();
        assert_eq!(json, "42");
        let back: u64 = super::from_str(&json).unwrap();
        assert_eq!(back, 42);
    }
}
