//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform range sampling,
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. Generators are deterministic
//! (xoshiro256++-based) so seeded experiments replay bit-for-bit, which is all
//! the simulator requires of them.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the way
    /// `rand 0.8` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from the given range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard (uniform) distribution marker, as in `rand::distributions`.
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Samples one value using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled from, as in `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (start + (end - start) * u).clamp(start, end)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic xoshiro256++ core shared by the vendored generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub(crate) fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Concrete generators, as in `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The standard seeded generator. Unlike the real `StdRng` its algorithm
    /// is fixed (xoshiro256++), which is fine for tests that only rely on
    /// determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        core: Xoshiro256,
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                core: Xoshiro256::from_seed_bytes(seed),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.core.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.core.next_u64()
        }
    }
}

/// Sequence-related helpers, as in `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Uniform index in `[0, n)` usable with unsized `R`. Uses rejection
    /// sampling so the shuffle stays unbiased.
    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let draw = rng.next_u64();
            if draw < zone {
                return (draw % n) as usize;
            }
        }
    }

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let k = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
