//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate keeps
//! the workspace's `#[derive(Serialize, Deserialize)]` annotations and
//! `use serde::{Deserialize, Serialize}` imports compiling — and genuinely
//! round-trippable — without the real serde.
//!
//! Instead of serde's visitor architecture it uses a single self-describing
//! [`Value`] tree: [`Serialize`] converts a type into a [`Value`],
//! [`Deserialize`] reads it back. The derive macros (in `serde_derive`)
//! generate both impls for structs and enums. [`to_string`] / [`from_str`]
//! provide a JSON-like text format on top, so round-trip tests and CSV/JSON
//! emitters have something concrete to exercise.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value (unit structs, unit enum variants, `()`).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A character.
    Char(char),
    /// A string.
    String(String),
    /// An optional value (`None` / `Some`).
    Option(Option<Box<Value>>),
    /// A sequence (vectors, tuples, tuple structs).
    Seq(Vec<Value>),
    /// An ordered map (named structs, maps, enum variant wrappers).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when deserialization finds an unexpected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde stub error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads a value of this type back out of a serialized tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Support functions used by derive-generated code.
// ---------------------------------------------------------------------------

/// Looks up `key` in a struct map. Used by generated `Deserialize` impls.
pub fn __find<'a>(entries: &'a [(Value, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Value::String(s) if s == key))
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Unwraps the single `variant name -> payload` entry of a serialized enum.
pub fn __enum_entry(value: &Value) -> Result<(&str, &Value), Error> {
    let entries = value
        .as_map()
        .ok_or_else(|| Error::custom("expected enum map"))?;
    match entries {
        [(Value::String(name), payload)] => Ok((name.as_str(), payload)),
        _ => Err(Error::custom("expected single-entry enum map")),
    }
}

/// Fetches element `index` of a serialized tuple. Used by generated impls.
pub fn __seq_get(items: &[Value], index: usize) -> Result<&Value, Error> {
    items
        .get(index)
        .ok_or_else(|| Error::custom(format!("missing tuple element {index}")))
}

/// Deserializes a map key. The text format stringifies non-string keys, so if
/// direct deserialization fails on a string key, the string is re-parsed as an
/// embedded value and tried again.
fn key_from_value<K: Deserialize>(key: &Value) -> Result<K, Error> {
    match K::from_value(key) {
        Ok(k) => Ok(k),
        Err(err) => {
            if let Value::String(text) = key {
                if let Ok(k) = from_str::<K>(text) {
                    return Ok(k);
                }
            }
            Err(err)
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive and std impls.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Char(*self)
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Char(c) => Ok(*c),
            // The text format renders chars as one-character strings.
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}
impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Unit => Ok(()),
            _ => Err(Error::custom("expected unit")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        Value::Option(self.as_ref().map(|v| Box::new(v.to_value())))
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Option(None) | Value::Unit => Ok(None),
            Value::Option(Some(inner)) => T::from_value(inner).map(Some),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(__seq_get(items, $n)?)?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// JSON-like text format over Value.
// ---------------------------------------------------------------------------

/// Serializes a value to a compact JSON-like string.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

/// Parses a string produced by [`to_string`] and deserializes `T` from it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters"));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            // JSON has no NaN/inf; tag them as single-entry maps (like the
            // Option encoding) so user strings can never collide with them.
            if x.is_nan() {
                out.push_str("{\"__f64\":\"nan\"}");
            } else if x.is_infinite() {
                out.push_str(if *x > 0.0 {
                    "{\"__f64\":\"inf\"}"
                } else {
                    "{\"__f64\":\"-inf\"}"
                });
            } else {
                // `{:?}` keeps a decimal point or exponent, so floats stay
                // distinguishable from integers when parsed back.
                out.push_str(&format!("{x:?}"));
            }
        }
        Value::Char(c) => write_string(&c.to_string(), out),
        Value::String(s) => write_string(s, out),
        Value::Option(None) => out.push_str("null"),
        Value::Option(Some(inner)) => {
            out.push_str("{\"__some\":");
            write_value(inner, out);
            out.push('}');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Value::String(s) => write_string(s, out),
                    other => {
                        // Non-string keys (ids, enums) are stringified.
                        let mut key = String::new();
                        write_value(other, &mut key);
                        write_string(&key, out);
                    }
                }
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Unit)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Value::String(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::custom("expected ',' or '}'")),
                    }
                }
                // `{"__some": v}` is the Option encoding, `{"__f64": "..."}`
                // the non-finite float encoding.
                if let [(Value::String(key), inner)] = entries.as_slice() {
                    if key == "__some" {
                        return Ok(Value::Option(Some(Box::new(inner.clone()))));
                    }
                    if key == "__f64" {
                        return match inner.as_str() {
                            Some("nan") => Ok(Value::F64(f64::NAN)),
                            Some("inf") => Ok(Value::F64(f64::INFINITY)),
                            Some("-inf") => Ok(Value::F64(f64::NEG_INFINITY)),
                            _ => Err(Error::custom("bad __f64 tag")),
                        };
                    }
                }
                Ok(Value::Map(entries))
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::custom("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(byte) = self.peek() {
            if byte.is_ascii_digit() || matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom("expected number"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let text = to_string(&value);
        let back: T = from_str(&text).unwrap_or_else(|e| panic!("{e} while parsing {text}"));
        assert_eq!(back, value, "round-trip through {text}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(-17i64);
        round_trip(3.25f64);
        round_trip(f64::NAN.to_bits());
        round_trip(true);
        round_trip(String::from("hé\"llo\n"));
        round_trip(Some(4u32));
        round_trip(Option::<u32>::None);
        round_trip(Some(Option::<u32>::None));
    }

    #[test]
    fn nan_and_infinity_round_trip() {
        let text = to_string(&f64::INFINITY);
        assert_eq!(from_str::<f64>(&text).unwrap(), f64::INFINITY);
        let text = to_string(&f64::NEG_INFINITY);
        assert_eq!(from_str::<f64>(&text).unwrap(), f64::NEG_INFINITY);
        let text = to_string(&f64::NAN);
        assert!(from_str::<f64>(&text).unwrap().is_nan());
    }

    #[test]
    fn strings_resembling_float_tags_round_trip() {
        for s in ["__nan", "__inf", "__-inf", "nan", "{\"__f64\":\"nan\"}"] {
            round_trip(s.to_string());
        }
    }

    #[test]
    fn chars_round_trip() {
        round_trip('a');
        round_trip('é');
        round_trip('"');
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(VecDeque::from(vec![1.5f64, -2.5]));
        round_trip((1u64, -2i64, String::from("x")));
        let mut map = BTreeMap::new();
        map.insert(String::from("a"), 1u64);
        map.insert(String::from("b"), 2u64);
        round_trip(map);
    }
}
