//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the slice of the criterion 0.5 API the workspace benches use
//! (`Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) with a
//! simple calibrated timing loop instead of criterion's statistical engine.
//!
//! Results are printed as `bench: <id> ... <ns>/iter` lines, and when the
//! `CRITERION_JSON` environment variable names a file, appended to it as JSON
//! lines (`{"id": ..., "ns_per_iter": ..., "iters": ...}`) so scripts such as
//! `scripts/bench.sh` can collect them.

pub use std::hint::black_box;

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark. Kept short: the stub is for smoke-level
/// timing, not statistically rigorous estimation.
const TARGET_MEASURE: Duration = Duration::from_millis(50);
const MAX_CALIBRATION: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores the sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores throughput settings.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark, e.g. `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput hint (accepted, ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of abstract elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    // Calibrate: grow the iteration count until one batch is long enough to
    // time reliably, or until the calibration budget runs out.
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    let per_iter_ns = loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let elapsed = bencher.elapsed;
        if elapsed >= TARGET_MEASURE || calibration_start.elapsed() >= MAX_CALIBRATION {
            break elapsed.as_nanos() as f64 / iters.max(1) as f64;
        }
        // Aim directly for the target on the next attempt.
        let scale = if elapsed.is_zero() {
            100.0
        } else {
            (TARGET_MEASURE.as_secs_f64() / elapsed.as_secs_f64()).clamp(2.0, 100.0)
        };
        iters = ((iters as f64 * scale) as u64).max(iters + 1);
    };

    println!("bench: {id:<60} {per_iter_ns:>14.1} ns/iter ({iters} iters)");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{}\", \"ns_per_iter\": {per_iter_ns:.1}, \"iters\": {iters}}}",
                    id.replace('"', "'")
                );
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark target declared in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target declared in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs > 0, "benchmark closure never executed");
    }
}
