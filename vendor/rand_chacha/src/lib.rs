//! Offline, API-compatible subset of the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the real ChaCha8 block function, so seeded
//! streams are specified and stable — the property `sbqa_sim` relies on for
//! bit-for-bit replayable experiments.

use rand::{RngCore, SeedableRng};

/// A deterministic generator driven by the ChaCha stream cipher with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill needed".
    index: usize,
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
