//! Derive macros for the vendored serde stub.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (the simplified
//! value-based traits of the stub, not real serde's visitor traits) for
//! structs and enums. The item is parsed directly from the proc-macro token
//! stream — `syn`/`quote` are unavailable offline — which is enough for the
//! shapes this workspace uses: unit/tuple/named structs, enums with
//! unit/tuple/named variants, and plain type parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Plain type parameter names (lifetimes and bounds are not supported).
    type_params: Vec<String>,
    kind: ItemKind,
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().unwrap()
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    assert!(
        keyword == "struct" || keyword == "enum",
        "serde stub derive: expected struct or enum, found `{keyword}`"
    );
    let name = expect_ident(&tokens, &mut pos);
    let type_params = parse_generics(&tokens, &mut pos);

    let kind = if keyword == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                ItemKind::Struct(Fields::Tuple(count))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(group.stream())))
            }
            other => panic!("serde stub derive: unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(group.stream()))
            }
            other => panic!("serde stub derive: unexpected enum body: {other:?}"),
        }
    };

    Item {
        name,
        type_params,
        kind,
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(*pos) {
                    *pos += 1;
                }
            }
            // `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(group)) = tokens.get(*pos) {
                    if group.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(ident)) => {
            *pos += 1;
            ident.to_string()
        }
        other => panic!("serde stub derive: expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` after the item name, returning plain type parameter names.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            *pos += 1;
        }
        _ => return params,
    }
    let mut depth = 1usize;
    // True at a position where a fresh parameter may start.
    let mut at_param_start = true;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                *pos += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                *pos += 1;
                if depth == 0 {
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *pos += 1;
            }
            TokenTree::Ident(ident) if depth == 1 && at_param_start => {
                params.push(ident.to_string());
                at_param_start = false;
                *pos += 1;
            }
            _ => {
                // Bounds, lifetimes, defaults — irrelevant to codegen.
                at_param_start = false;
                *pos += 1;
            }
        }
    }
    panic!("serde stub derive: unterminated generics");
}

/// Counts the comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut saw_tokens = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Extracts the field names of a named struct / named variant body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        fields.push(name);
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0usize;
        while let Some(token) = tokens.get(pos) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                pos += 1;
                Fields::Tuple(count)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(group.stream());
                pos += 1;
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while let Some(token) = tokens.get(pos) {
            pos += 1;
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.type_params.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let plain = item.type_params.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            plain
        )
    }
}

fn generate_serialize(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Unit".to_string(),
        // Newtype structs serialize transparently, as with real serde_json.
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(count)) => {
            let elements: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elements.join(", "))
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::String(::std::string::String::from(\"{f}\")), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => format!(
                            "Self::{vname} => ::serde::Value::Map(vec![(\
                             ::serde::Value::String(::std::string::String::from(\"{vname}\")), \
                             ::serde::Value::Unit)]),"
                        ),
                        Fields::Tuple(count) => {
                            let binders: Vec<String> =
                                (0..*count).map(|i| format!("__f{i}")).collect();
                            let elements: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Map(vec![(\
                                 ::serde::Value::String(::std::string::String::from(\"{vname}\")), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binders.join(", "),
                                elements.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Value::String(::std::string::String::from(\"{f}\")), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {} }} => ::serde::Value::Map(vec![(\
                                 ::serde::Value::String(::std::string::String::from(\"{vname}\")), \
                                 ::serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn generate_deserialize(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!(
            "match __value {{ ::serde::Value::Unit => ::core::result::Result::Ok({}), \
             _ => ::core::result::Result::Err(::serde::Error::custom(\"expected unit\")) }}",
            item.name
        ),
        // Newtype structs deserialize transparently, as with real serde_json.
        ItemKind::Struct(Fields::Tuple(1)) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(__value)?))"
                .to_string()
        }
        ItemKind::Struct(Fields::Tuple(count)) => {
            let elements: Vec<String> = (0..*count)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::__seq_get(__items, {i})?)?")
                })
                .collect();
            format!(
                "let __items = __value.as_seq()\
                 .ok_or_else(|| ::serde::Error::custom(\"expected sequence\"))?; \
                 ::core::result::Result::Ok(Self({}))",
                elements.join(", ")
            )
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let assignments: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__find(__entries, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __entries = __value.as_map()\
                 .ok_or_else(|| ::serde::Error::custom(\"expected map\"))?; \
                 ::core::result::Result::Ok(Self {{ {} }})",
                assignments.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => {
                            format!("\"{vname}\" => ::core::result::Result::Ok(Self::{vname}),")
                        }
                        Fields::Tuple(count) => {
                            let elements: Vec<String> = (0..*count)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::__seq_get(__items, {i})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let __items = __payload.as_seq()\
                                 .ok_or_else(|| ::serde::Error::custom(\"expected sequence\"))?; \
                                 ::core::result::Result::Ok(Self::{vname}({})) }}",
                                elements.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let assignments: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::__find(__entries, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let __entries = __payload.as_map()\
                                 .ok_or_else(|| ::serde::Error::custom(\"expected map\"))?; \
                                 ::core::result::Result::Ok(Self::{vname} {{ {} }}) }}",
                                assignments.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__name, __payload) = ::serde::__enum_entry(__value)?; \
                 match __name {{ {} __other => ::core::result::Result::Err(\
                 ::serde::Error::custom(format!(\"unknown variant {{}}\", __other))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn from_value(__value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
