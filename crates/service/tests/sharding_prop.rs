//! Property tests for the sharding invariants.
//!
//! For any provider population, shard count and query workload:
//!
//! * **partition disjointness** — every registered provider id lives in
//!   exactly one shard's registry (and it is the router's owning shard);
//! * **allocation soundness** — every query a sharded run allocates goes to
//!   providers that satisfy its `CapabilityRequirement`, are online, and are
//!   owned by the shard that mediated the query;
//! * **conservation** — the merged tallies account for every submitted
//!   query, and per-shard tallies sum to the total.

use proptest::prelude::*;

use sbqa_core::StaticIntentions;
use sbqa_service::ShardedMediator;
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig, VirtualTime,
};

const CLASSES: u8 = 6;

fn capability_set(mask: u8) -> CapabilitySet {
    CapabilitySet::from_capabilities(
        (0..CLASSES)
            .filter(|class| mask & (1 << class) != 0)
            .map(Capability::new),
    )
}

fn requirement(mask: u8, conjunctive: bool) -> CapabilityRequirement {
    let set = capability_set(mask);
    if conjunctive {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    }
}

proptest! {
    #[test]
    fn sharded_runs_uphold_partition_and_allocation_invariants(
        // (id, capability mask, capacity bump) per provider; duplicate ids
        // re-register on the same shard (routing is id-pure).
        providers in proptest::collection::vec((0u64..80, 1u8..64, 0u8..4), 1..50),
        shards in 1usize..6,
        seed in 0u64..1_000,
        // (id, requirement mask, conjunctive, replication) per query.
        queries in proptest::collection::vec(
            (0u64..200, 1u8..64, proptest::bool::ANY, 1usize..3),
            1..60,
        ),
    ) {
        let config = SystemConfig::default().with_knbest(8, 3);
        let mut service = ShardedMediator::sbqa(config, seed, shards).unwrap();
        for (id, mask, bump) in &providers {
            let owner = service.register_provider(
                ProviderId::new(*id),
                capability_set(*mask),
                1.0 + f64::from(*bump),
            );
            prop_assert_eq!(owner, service.router().shard_of_provider(ProviderId::new(*id)));
        }
        service.register_consumer(ConsumerId::new(1));

        // Partition disjointness: each registered id appears in exactly one
        // shard's registry, and it is the router's owning shard.
        let mut total_registered = 0;
        for shard in service.shards() {
            total_registered += shard.mediator().providers().len();
            for snapshot in shard.mediator().providers().iter() {
                prop_assert_eq!(
                    service.router().shard_of_provider(snapshot.id),
                    shard.index(),
                    "provider {} on shard {}", snapshot.id, shard.index()
                );
            }
        }
        let distinct: std::collections::HashSet<u64> =
            providers.iter().map(|(id, _, _)| *id).collect();
        prop_assert_eq!(total_registered, distinct.len());

        // Allocation soundness over the whole workload.
        let batch: Vec<Query> = queries
            .iter()
            .enumerate()
            .map(|(position, (id, mask, conjunctive, replication))| {
                Query::requiring(
                    QueryId::new(*id),
                    ConsumerId::new(1),
                    requirement(*mask, *conjunctive),
                )
                .replication(*replication)
                .issued_at(VirtualTime::new(position as f64))
                .build()
            })
            .collect();
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.2), Intention::new(0.2));
        let router = *service.router();
        let mut mediations: Vec<(Query, Option<sbqa_core::AllocationDecision>)> = Vec::new();
        let report = service.submit_batch(&batch, &oracle, |_, query, result| {
            mediations.push((query.clone(), result.ok().cloned()));
        });
        for (query, decision) in &mediations {
            let Some(decision) = decision else { continue };
            let shard = router.shard_of_query(query.id);
            prop_assert!(!decision.selected.is_empty());
            for provider in &decision.selected {
                prop_assert_eq!(
                    router.shard_of_provider(*provider), shard,
                    "query {} allocated to provider {} outside its shard",
                    query.id, provider
                );
            }
            for proposal in &decision.proposals {
                prop_assert!(
                    query.required.matched_by(
                        // Capability satisfaction is checked against the
                        // registered profile (last registration of the id
                        // wins), not the proposal record.
                        lookup_capabilities(proposal.provider, &providers)
                    ),
                    "query {} consulted incapable provider {}",
                    query.id, proposal.provider
                );
            }
        }

        // Conservation: every query accounted for, shard tallies sum up.
        prop_assert_eq!(mediations.len(), batch.len());
        prop_assert_eq!(report.submitted(), batch.len());
        let shard_sum: usize = service
            .shard_reports()
            .iter()
            .map(|s| s.report.submitted())
            .sum();
        prop_assert_eq!(shard_sum, batch.len());
    }
}

/// The capability profile a provider id ended up registered with: the *last*
/// `(id, mask)` entry wins, exactly like repeated `register_provider` calls.
fn lookup_capabilities(id: ProviderId, providers: &[(u64, u8, u8)]) -> CapabilitySet {
    providers
        .iter()
        .rev()
        .find(|(raw, _, _)| *raw == id.raw())
        .map(|(_, mask, _)| capability_set(*mask))
        .expect("allocated provider was registered")
}
