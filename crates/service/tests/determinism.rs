//! Determinism tests for the sharded mediation service.
//!
//! The headline contract of the service (see the crate docs):
//!
//! 1. with `--shards 1` the service produces **byte-identical decisions** to
//!    the plain [`Mediator`] — routing degenerates to the identity and shard
//!    0 consumes exactly the RNG stream `Mediator::sbqa(config, seed)`
//!    would; pinned below on the golden scenario-1 seed (42) over a churny
//!    mixed-requirement workload, for both the synchronous facade and the
//!    threaded ingest front;
//! 2. with `N` shards the merged outcome stream — ordered by
//!    `(VirtualTime, QueryId)` — is **byte-stable across runs** for a fixed
//!    seed and producer order, no matter how the shard threads interleave.

use std::sync::Arc;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle};
use sbqa_core::{Mediator, StaticIntentions};
use sbqa_service::{MediationService, OutcomeRecord, ShardedMediator};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig, VirtualTime,
};

/// The golden scenario-1 seed the repository pins its regression runs to.
const GOLDEN_SEED: u64 = 42;
const PROVIDERS: u64 = 60;
const QUERIES: u64 = 400;

fn config() -> SystemConfig {
    SystemConfig::default().with_knbest(16, 4)
}

fn capabilities(p: u64) -> CapabilitySet {
    let mut caps = CapabilitySet::singleton(Capability::new((p % 4) as u8));
    if p.is_multiple_of(3) {
        caps.insert(Capability::new(((p + 1) % 4) as u8));
    }
    caps
}

/// A workload mixing single-capability, conjunctive and disjunctive
/// requirements with varying replication, in arrival order (`issued_at`
/// grows with the id), so it exercises the borrowed fast path and both
/// postings merges.
fn stream() -> Vec<Query> {
    (0..QUERIES)
        .map(|id| {
            let a = Capability::new((id % 4) as u8);
            let b = Capability::new(((id + 1) % 4) as u8);
            let set = CapabilitySet::from_capabilities([a, b]);
            let required = match id % 5 {
                0 => CapabilityRequirement::All(set),
                1 => CapabilityRequirement::Any(set),
                _ => CapabilityRequirement::single(a),
            };
            Query::requiring(QueryId::new(id), ConsumerId::new(1 + id % 3), required)
                .replication(1 + (id % 2) as usize)
                .issued_at(VirtualTime::new((id / 8) as f64))
                .build()
        })
        .collect()
}

fn oracle() -> StaticIntentions {
    StaticIntentions::new().with_defaults(Intention::new(0.35), Intention::new(0.55))
}

fn register_all(register: &mut dyn FnMut(ProviderId, CapabilitySet, f64)) {
    for p in 0..PROVIDERS {
        register(ProviderId::new(p), capabilities(p), 1.0 + (p % 3) as f64);
    }
}

/// Deterministic churn applied identically to both sides between batches:
/// load updates everywhere, a few providers toggled offline and back.
fn churn_step(step: u64, apply: &mut dyn FnMut(ChurnOp)) {
    for p in 0..PROVIDERS {
        apply(ChurnOp::Load {
            id: ProviderId::new(p),
            utilization: ((p + step) % 7) as f64 * 0.5,
            queue_length: ((p + step) % 5) as usize,
        });
    }
    let toggled = ProviderId::new((step * 13) % PROVIDERS);
    apply(ChurnOp::Online {
        id: toggled,
        online: step.is_multiple_of(2),
    });
}

enum ChurnOp {
    Load {
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    },
    Online {
        id: ProviderId,
        online: bool,
    },
}

/// Runs the stream through a plain mediator, batch by batch, applying the
/// churn between batches; returns each query's owned decision (`None` for
/// starvations).
fn run_plain(queries: &[Query], churn: bool) -> Vec<Option<AllocationDecision>> {
    let mut mediator = Mediator::sbqa(config(), GOLDEN_SEED).unwrap();
    register_all(&mut |id, caps, capacity| mediator.register_provider(id, caps, capacity));
    for c in 1..=3u64 {
        mediator.register_consumer(ConsumerId::new(c));
    }
    let oracle = oracle();
    let mut decisions = Vec::new();
    for (step, batch) in queries.chunks(50).enumerate() {
        if churn {
            churn_step(step as u64, &mut |op| match op {
                ChurnOp::Load {
                    id,
                    utilization,
                    queue_length,
                } => mediator
                    .update_provider_load(id, utilization, queue_length)
                    .unwrap(),
                ChurnOp::Online { id, online } => {
                    mediator.set_provider_online(id, online).unwrap();
                }
            });
        }
        mediator.submit_batch(batch, &oracle, |_, _, result| {
            decisions.push(result.ok().cloned());
        });
    }
    decisions
}

/// The same run through the synchronous sharded facade.
fn run_sharded_sync(
    queries: &[Query],
    shards: usize,
    churn: bool,
) -> Vec<Option<AllocationDecision>> {
    let mut service = ShardedMediator::sbqa(config(), GOLDEN_SEED, shards).unwrap();
    register_all(&mut |id, caps, capacity| {
        service.register_provider(id, caps, capacity);
    });
    for c in 1..=3u64 {
        service.register_consumer(ConsumerId::new(c));
    }
    let oracle = oracle();
    let mut decisions: Vec<Option<AllocationDecision>> = vec![None; queries.len()];
    for (step, batch) in queries.chunks(50).enumerate() {
        if churn {
            churn_step(step as u64, &mut |op| match op {
                ChurnOp::Load {
                    id,
                    utilization,
                    queue_length,
                } => service
                    .update_provider_load(id, utilization, queue_length)
                    .unwrap(),
                ChurnOp::Online { id, online } => {
                    service.set_provider_online(id, online).unwrap();
                }
            });
        }
        let base = step * 50;
        service.submit_batch(batch, &oracle, |position, _, result| {
            decisions[base + position] = result.ok().cloned();
        });
    }
    decisions
}

/// The same run through the threaded ingest front (no churn: the producers
/// only enqueue). Returns the merged outcome stream.
fn run_service_async(queries: &[Query], shards: usize, chunk: usize) -> Vec<OutcomeRecord> {
    let mut service = ShardedMediator::sbqa(config(), GOLDEN_SEED, shards).unwrap();
    register_all(&mut |id, caps, capacity| {
        service.register_provider(id, caps, capacity);
    });
    for c in 1..=3u64 {
        service.register_consumer(ConsumerId::new(c));
    }
    let oracle: Arc<dyn IntentionOracle + Send + Sync> = Arc::new(oracle());
    let mut running = MediationService::spawn(service, oracle);
    for batch in queries.chunks(chunk) {
        running.enqueue_batch(batch.iter().cloned());
    }
    running.finish().outcomes
}

#[test]
fn one_shard_is_byte_identical_to_the_plain_mediator_on_the_golden_seed() {
    let queries = stream();
    let plain = run_plain(&queries, true);
    let sharded = run_sharded_sync(&queries, 1, true);
    assert_eq!(plain.len(), sharded.len());
    let mediated = plain.iter().filter(|d| d.is_some()).count();
    assert!(mediated > 300, "only {mediated} of {QUERIES} mediated");
    for (id, (expected, got)) in plain.iter().zip(&sharded).enumerate() {
        // Full decision equality: selected providers, every proposal with
        // its intentions and score, and ω — byte-identical, not just the
        // same winners.
        assert_eq!(expected, got, "query {id}");
    }
}

#[test]
fn one_shard_async_selections_match_the_plain_mediator() {
    let queries = stream();
    let plain = run_plain(&queries, false);
    let outcomes = run_service_async(&queries, 1, 32);
    assert_eq!(outcomes.len(), plain.len());
    for (outcome, decision) in outcomes.iter().zip(&plain) {
        match decision {
            Some(decision) => {
                assert!(!outcome.starved);
                assert_eq!(
                    outcome.selected, decision.selected,
                    "query {}",
                    outcome.query
                );
            }
            None => assert!(outcome.starved, "query {}", outcome.query),
        }
    }
}

#[test]
fn n_shard_sync_decisions_are_stable_across_runs() {
    let queries = stream();
    for shards in [2usize, 4] {
        let a = run_sharded_sync(&queries, shards, true);
        let b = run_sharded_sync(&queries, shards, true);
        assert_eq!(a, b, "{shards} shards");
    }
}

#[test]
fn n_shard_merged_outcome_stream_is_byte_stable_across_runs() {
    let queries = stream();
    for shards in [2usize, 4] {
        let a = run_service_async(&queries, shards, 32);
        let b = run_service_async(&queries, shards, 32);
        assert_eq!(a, b, "{shards} shards");
        // The merged stream is ordered by (issued_at, id).
        assert!(a.windows(2).all(|w| w[0].merge_key() <= w[1].merge_key()));
    }
}

#[test]
fn chunk_size_does_not_change_decisions() {
    // Ingest batch size trades latency for throughput but must never change
    // the decision stream: per shard, queries are mediated one by one in
    // queue order either way.
    let queries = stream();
    let small = run_service_async(&queries, 4, 1);
    let large = run_service_async(&queries, 4, 128);
    assert_eq!(small, large);
}

#[test]
fn async_and_sync_fronts_agree_on_selections() {
    let queries = stream();
    let sync = run_sharded_sync(&queries, 4, false);
    let outcomes = run_service_async(&queries, 4, 32);
    for (outcome, decision) in outcomes.iter().zip(&sync) {
        match decision {
            Some(decision) => assert_eq!(outcome.selected, decision.selected),
            None => assert!(outcome.starved),
        }
    }
}
