//! Determinism and reporting tests for adaptive `kn` in the sharded
//! mediation service.
//!
//! Enabling adaptation must not weaken the service's contracts where they
//! still apply:
//!
//! 1. a **1-shard** synchronous service with adaptation enabled is
//!    byte-identical to a plain adaptive [`Mediator`] (same controller
//!    config, same batch cadence);
//! 2. the **async ingest front** matches both when its chunk cadence equals
//!    the sync batch cadence (with adaptation on, the chunking *is* the
//!    adaptation cadence — a documented semantic);
//! 3. **N-shard** adaptive runs are byte-stable across runs, and each
//!    shard's controller trajectory lands in its [`ShardReport::kn_trail`].

use std::sync::Arc;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle};
use sbqa_core::{KnControllerConfig, Mediator, StaticIntentions};
use sbqa_service::{MediationService, ServiceReport, ShardedMediator};
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
    VirtualTime,
};

const SEED: u64 = 42;
const PROVIDERS: u64 = 48;
const QUERIES: u64 = 600;
const BATCH: usize = 40;

fn config() -> SystemConfig {
    SystemConfig::default().with_knbest(16, 4)
}

fn controller() -> KnControllerConfig {
    KnControllerConfig {
        initial_kn: 4,
        min_kn: 2,
        max_kn: 12,
        alpha: 0.5,
        target_gap: 0.1,
        deadband: 0.1,
        step: 1,
        window: 64,
    }
}

/// An arrival-ordered single-capability stream over three consumers and
/// four capability classes.
fn stream() -> Vec<Query> {
    (0..QUERIES)
        .map(|id| {
            Query::builder(
                QueryId::new(id),
                ConsumerId::new(1 + id % 3),
                Capability::new((id % 4) as u8),
            )
            .replication(1 + (id % 2) as usize)
            .issued_at(VirtualTime::new((id / 8) as f64))
            .build()
        })
        .collect()
}

/// Providers dislike the work while consumers like the allocations: the
/// satisfaction gap grows, so the controllers demonstrably move.
fn oracle() -> StaticIntentions {
    StaticIntentions::new().with_defaults(Intention::new(0.6), Intention::new(-0.6))
}

fn register_all(register: &mut dyn FnMut(ProviderId, CapabilitySet, f64)) {
    for p in 0..PROVIDERS {
        register(
            ProviderId::new(p),
            CapabilitySet::singleton(Capability::new((p % 4) as u8)),
            1.0,
        );
    }
}

fn run_plain_adaptive(queries: &[Query]) -> Vec<Option<AllocationDecision>> {
    let mut mediator = Mediator::sbqa(config(), SEED).unwrap();
    register_all(&mut |id, caps, capacity| mediator.register_provider(id, caps, capacity));
    for c in 1..=3u64 {
        mediator.register_consumer(ConsumerId::new(c));
    }
    mediator.enable_adaptive_kn(controller());
    let oracle = oracle();
    let mut decisions = Vec::new();
    for batch in queries.chunks(BATCH) {
        mediator.submit_batch(batch, &oracle, |_, _, result| {
            decisions.push(result.ok().cloned());
        });
    }
    decisions
}

fn build_sharded(shards: usize) -> ShardedMediator {
    let mut service = ShardedMediator::sbqa(config(), SEED, shards).unwrap();
    register_all(&mut |id, caps, capacity| {
        service.register_provider(id, caps, capacity);
    });
    for c in 1..=3u64 {
        service.register_consumer(ConsumerId::new(c));
    }
    service.enable_adaptive_kn(controller());
    service
}

fn run_sharded_adaptive(queries: &[Query], shards: usize) -> Vec<Option<AllocationDecision>> {
    let mut service = build_sharded(shards);
    let oracle = oracle();
    let mut decisions: Vec<Option<AllocationDecision>> = vec![None; queries.len()];
    for (step, batch) in queries.chunks(BATCH).enumerate() {
        let base = step * BATCH;
        service.submit_batch(batch, &oracle, |position, _, result| {
            decisions[base + position] = result.ok().cloned();
        });
    }
    decisions
}

fn run_async_adaptive(queries: &[Query], shards: usize) -> ServiceReport {
    let service = build_sharded(shards);
    let oracle: Arc<dyn IntentionOracle + Send + Sync> = Arc::new(oracle());
    let mut running = MediationService::spawn(service, oracle);
    for batch in queries.chunks(BATCH) {
        running.enqueue_batch(batch.iter().cloned());
    }
    running.finish()
}

#[test]
fn one_shard_adaptive_sync_is_byte_identical_to_the_adaptive_mediator() {
    let queries = stream();
    let plain = run_plain_adaptive(&queries);
    let sharded = run_sharded_adaptive(&queries, 1);
    assert_eq!(plain.len(), sharded.len());
    assert!(plain.iter().filter(|d| d.is_some()).count() as u64 > QUERIES / 2);
    for (id, (expected, got)) in plain.iter().zip(&sharded).enumerate() {
        assert_eq!(expected, got, "query {id}");
    }
}

#[test]
fn one_shard_adaptive_async_matches_when_chunk_cadence_matches() {
    let queries = stream();
    let plain = run_plain_adaptive(&queries);
    let report = run_async_adaptive(&queries, 1);
    assert_eq!(report.outcomes.len(), plain.len());
    for (outcome, decision) in report.outcomes.iter().zip(&plain) {
        match decision {
            Some(decision) => {
                assert!(!outcome.starved);
                assert_eq!(
                    outcome.selected, decision.selected,
                    "query {}",
                    outcome.query
                );
            }
            None => assert!(outcome.starved),
        }
    }
}

#[test]
fn adaptive_controllers_actually_move_and_record_their_trail() {
    let queries = stream();
    let report = run_async_adaptive(&queries, 2);
    // Under a persistent provider-side satisfaction deficit the gap EWMA
    // sits above the band: every shard's width must have shrunk from the
    // initial 4 towards the floor, leaving a non-empty trail.
    for shard in &report.shards {
        assert!(
            !shard.kn_trail.is_empty(),
            "shard {} recorded no kn change",
            shard.shard
        );
        let last = shard.kn_trail.last().unwrap();
        assert!(
            last.kn < 4,
            "shard {} never shrank: {:?}",
            shard.shard,
            last
        );
        assert!(last.gap_ewma > 0.2);
        // Rounds are recorded in adaptation order (several classes may
        // adjust in the same round).
        assert!(shard.kn_trail.windows(2).all(|w| w[0].round <= w[1].round));
    }
    // The flattened trajectory covers both shards in (shard, round) order.
    let trajectory = report.kn_trajectory();
    assert!(trajectory.len() >= 2);
    // Ordered by (shard, round); several classes may adjust in one round.
    assert!(trajectory
        .windows(2)
        .all(|w| (w[0].0, w[0].1.round) <= (w[1].0, w[1].1.round)));
}

#[test]
fn n_shard_adaptive_runs_are_byte_stable() {
    let queries = stream();
    for shards in [2usize, 4] {
        let a = run_sharded_adaptive(&queries, shards);
        let b = run_sharded_adaptive(&queries, shards);
        assert_eq!(a, b, "{shards} shards (sync)");

        let ra = run_async_adaptive(&queries, shards);
        let rb = run_async_adaptive(&queries, shards);
        assert_eq!(ra.outcomes, rb.outcomes, "{shards} shards (async)");
        for (sa, sb) in ra.shards.iter().zip(&rb.shards) {
            assert_eq!(sa.kn_trail, sb.kn_trail, "shard {} trail", sa.shard);
        }
    }
}

#[test]
fn disabled_adaptation_leaves_empty_trails() {
    let queries = stream();
    let mut service = ShardedMediator::sbqa(config(), SEED, 2).unwrap();
    register_all(&mut |id, caps, capacity| {
        service.register_provider(id, caps, capacity);
    });
    for c in 1..=3u64 {
        service.register_consumer(ConsumerId::new(c));
    }
    let oracle = oracle();
    for batch in queries.chunks(BATCH) {
        service.submit_batch(batch, &oracle, |_, _, _| {});
    }
    for shard_report in service.shard_reports() {
        assert!(shard_report.kn_trail.is_empty());
    }
}
