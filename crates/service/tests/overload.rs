//! Golden overload tests for the bounded-ring ingest front.
//!
//! Past saturation the interesting contract is no longer "every query is
//! mediated" but "the sacrifice is deterministic": for a fixed seed the
//! degradation ladder must admit, degrade and shed *exactly* the same
//! queries on every run, for every producer chunk size, while conserving
//! the stream (`enqueued = mediated + starved + shed`). These tests pin
//! that on the golden seed (42) with a burst far past the ladder's modeled
//! capacity, and pin the drain-order normalization (the chunking fix) that
//! the determinism rests on.

use std::sync::Arc;

use sbqa_core::allocator::IntentionOracle;
use sbqa_core::{DegradationConfig, DegradationTier, StaticIntentions};
use sbqa_service::{IngestConfig, MediationService, ServiceReport, ShardedMediator};
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
    VirtualTime,
};

/// The golden scenario-1 seed the repository pins its regression runs to.
const GOLDEN_SEED: u64 = 42;
const PROVIDERS: u64 = 40;
const QUERIES: u64 = 600;

fn service(shards: usize) -> ShardedMediator {
    let mut service = ShardedMediator::sbqa(
        SystemConfig::default().with_knbest(12, 4),
        GOLDEN_SEED,
        shards,
    )
    .unwrap();
    for p in 0..PROVIDERS {
        service.register_provider(
            ProviderId::new(p),
            CapabilitySet::singleton(Capability::new((p % 3) as u8)),
            1.0 + (p % 2) as f64,
        );
    }
    for c in 1..=3u64 {
        service.register_consumer(ConsumerId::new(c));
    }
    service
}

/// A burst stream: 600 queries inside 1.2 virtual seconds — a sustained
/// ~500/s arrival rate against the ladder's 100/s drain model below, deep
/// past every threshold.
fn burst() -> Vec<Query> {
    (0..QUERIES)
        .map(|id| {
            Query::builder(
                QueryId::new(id),
                ConsumerId::new(1 + id % 3),
                Capability::new((id % 3) as u8),
            )
            .issued_at(VirtualTime::new(id as f64 * 0.002))
            .build()
        })
        .collect()
}

fn oracle() -> Arc<dyn IntentionOracle + Send + Sync> {
    Arc::new(StaticIntentions::new().with_defaults(Intention::new(0.35), Intention::new(0.55)))
}

fn ladder() -> DegradationConfig {
    DegradationConfig {
        capacity: 80,
        drain_rate: 100.0,
        ..DegradationConfig::default()
    }
}

fn run(shards: usize, chunk: usize) -> ServiceReport {
    let config = IngestConfig {
        ring_capacity: 64,
        degradation: Some(ladder()),
    };
    let mut running = MediationService::spawn_with(service(shards), oracle(), config).unwrap();
    for batch in burst().chunks(chunk) {
        running.enqueue_batch(batch.iter().cloned());
    }
    running.finish()
}

/// The observable overload decision stream: per query, the winners and the
/// starved/shed flags, in merged `(VirtualTime, QueryId)` order.
fn decisions(report: &ServiceReport) -> Vec<(u64, Vec<u64>, bool, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.query.raw(),
                o.selected.iter().map(|p| p.raw()).collect(),
                o.starved,
                o.shed,
            )
        })
        .collect()
}

fn shed_set(report: &ServiceReport) -> Vec<u64> {
    report
        .outcomes
        .iter()
        .filter(|o| o.shed)
        .map(|o| o.query.raw())
        .collect()
}

#[test]
fn golden_overload_run_is_byte_identical_across_runs_and_chunkings() {
    let baseline = run(2, 64);

    let stats = baseline.degradation_stats().expect("ladder armed");
    assert!(stats.shed > 0, "the burst must reach the shed tier");
    assert!(stats.degraded(), "and pass through the degraded tiers");
    // Conservation: every enqueued query is admitted (mediated/starved) or
    // shed, and every one of them appears in the outcome stream.
    assert_eq!(stats.observed(), QUERIES);
    assert_eq!(stats.admitted() as usize, baseline.total.submitted());
    assert_eq!(baseline.outcomes.len() as u64, QUERIES);
    assert_eq!(baseline.shed(), stats.shed);

    // Byte-identity across runs.
    let again = run(2, 64);
    assert_eq!(decisions(&baseline), decisions(&again));

    // Byte-identity across producer chunk sizes, including a chunk size
    // that slices the stream unevenly.
    for chunk in [17usize, 128, 999] {
        let rechunked = run(2, chunk);
        assert_eq!(
            decisions(&baseline),
            decisions(&rechunked),
            "chunk size {chunk} changed the decision stream"
        );
        assert_eq!(shed_set(&baseline), shed_set(&rechunked));
    }
}

#[test]
fn overload_outcomes_stay_in_merged_order_with_sheds_inline() {
    // The chunking fix, observed end to end: outcomes (sheds included) come
    // back in (issued_at, id) order even when the producer enqueues each
    // chunk in reverse.
    let config = IngestConfig {
        ring_capacity: 64,
        degradation: Some(ladder()),
    };
    let forward = run(1, 50);
    let mut running = MediationService::spawn_with(service(1), oracle(), config).unwrap();
    let stream = burst();
    for batch in stream.chunks(50) {
        let mut reversed: Vec<Query> = batch.to_vec();
        reversed.reverse();
        running.enqueue_batch(reversed);
    }
    let reversed = running.finish();

    assert_eq!(decisions(&forward), decisions(&reversed));
    let ids: Vec<u64> = reversed.outcomes.iter().map(|o| o.query.raw()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "outcomes must be in merged order");
}

#[test]
fn ladder_tiers_escalate_in_order_on_the_golden_burst() {
    // The first admitted queries ride Normal; as the bucket fills the
    // stream passes ShrinkKn and Baseline before anything is shed. The
    // per-tier counters must all be populated by the golden burst.
    let report = run(1, 64);
    let stats = report.degradation_stats().expect("ladder armed");
    assert!(stats.normal > 0, "tier counters: {stats:?}");
    assert!(stats.shrink_kn > 0, "tier counters: {stats:?}");
    assert!(stats.baseline > 0, "tier counters: {stats:?}");
    assert!(stats.shed > 0, "tier counters: {stats:?}");
    assert!(stats.transitions >= 3);

    // The first outcome cannot be a shed (the bucket starts empty) and the
    // very first admitted query runs at Normal.
    assert!(!report.outcomes[0].shed);
    let _ = DegradationTier::Normal; // tier labels are part of the public API
}
