//! Property tests for the bounded ingest ring.
//!
//! For any capacity and any randomized interleaving of producer pushes and
//! consumer pops:
//!
//! * **capacity** — the ring never holds more than its capacity;
//! * **FIFO** — items come out in exactly the order they went in;
//! * **conservation** — every item pushed is either popped or still in the
//!   ring when it closes: `pushed = popped + drained + in_flight(0)`.
//!
//! A final threaded smoke drives a real producer/consumer pair through a
//! tiny ring (forcing blocking pushes) and checks the same invariants
//! against wall-clock interleaving.

use proptest::prelude::*;

use sbqa_service::BoundedRing;

/// One scripted step of the single-threaded interleaving.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Try to push the next sequence number.
    Push,
    /// Try to pop one item.
    Pop,
    /// Drain a whole wave (what the shard thread does).
    Wave,
}

/// Weighted decode of a raw draw: pushes dominate (3:2:1) so rings actually
/// fill up against the smaller capacities.
fn decode(raw: u8) -> Step {
    match raw {
        0..=2 => Step::Push,
        3..=4 => Step::Pop,
        _ => Step::Wave,
    }
}

proptest! {
    #[test]
    fn interleavings_uphold_capacity_fifo_and_conservation(
        capacity in 1usize..32,
        raw_steps in proptest::collection::vec(0u8..6, 1..200),
    ) {
        let steps = raw_steps.into_iter().map(decode);
        let ring: BoundedRing<u64> = BoundedRing::new(capacity);
        let mut next = 0u64;
        let mut pushed = 0u64;
        let mut popped: Vec<u64> = Vec::new();
        let mut wave = Vec::new();

        for step in steps {
            match step {
                Step::Push => {
                    // `try_push` so a full ring never blocks the script.
                    if ring.try_push(next).is_ok() {
                        next += 1;
                        pushed += 1;
                    }
                }
                Step::Pop => {
                    if let Some(item) = ring.try_pop() {
                        popped.push(item);
                    }
                }
                Step::Wave => {
                    if !ring.is_empty() {
                        prop_assert!(ring.pop_wave(&mut wave));
                        popped.append(&mut wave);
                    }
                }
            }
            // Capacity is never exceeded at any point of the interleaving.
            prop_assert!(ring.len() <= capacity, "len {} > capacity {}", ring.len(), capacity);
        }

        // Close and drain the remainder the way a shard shutdown does.
        ring.close();
        while ring.pop_wave(&mut wave) {
            popped.append(&mut wave);
        }

        // FIFO: popped is exactly 0..pushed in order.
        prop_assert_eq!(popped.len() as u64, pushed, "conservation");
        for (expected, item) in popped.iter().enumerate() {
            prop_assert_eq!(*item, expected as u64, "FIFO order");
        }
    }
}

#[test]
fn threaded_producers_conserve_and_order_per_producer() {
    // Two producers × 500 items through a capacity-4 ring: pushes must
    // block (not drop), the consumer must see every item exactly once, and
    // each producer's items must arrive in that producer's order.
    const PER_PRODUCER: u64 = 500;
    let ring: std::sync::Arc<BoundedRing<(u8, u64)>> = std::sync::Arc::new(BoundedRing::new(4));

    let mut producers = Vec::new();
    for who in 0u8..2 {
        let ring = std::sync::Arc::clone(&ring);
        producers.push(std::thread::spawn(move || {
            for sequence in 0..PER_PRODUCER {
                ring.push((who, sequence))
                    .expect("ring open while producing");
            }
        }));
    }

    let consumer = {
        let ring = std::sync::Arc::clone(&ring);
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            let mut wave = Vec::new();
            while ring.pop_wave(&mut wave) {
                seen.append(&mut wave);
            }
            seen
        })
    };

    for producer in producers {
        producer.join().unwrap();
    }
    ring.close();
    let seen = consumer.join().unwrap();

    assert_eq!(seen.len() as u64, 2 * PER_PRODUCER, "conservation");
    let mut next = [0u64; 2];
    for (who, sequence) in seen {
        assert_eq!(
            sequence, next[who as usize],
            "per-producer FIFO for producer {who}"
        );
        next[who as usize] += 1;
    }
    assert_eq!(next, [PER_PRODUCER; 2]);
}
