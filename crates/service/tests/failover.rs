//! Integration tests of the replication subsystem at the service layer:
//! crash/promotion byte-identity under registry churn, standby lockstep,
//! checkpoint pruning, and delta-driven live resize.

use sbqa_core::{DegradationConfig, Mediator, StaticIntentions};
use sbqa_service::{ReplicatedMediator, ShardedMediator};
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
    VirtualTime,
};

fn caps(class: u8) -> CapabilitySet {
    CapabilitySet::singleton(Capability::new(class))
}

fn query(id: u64, at: f64, class: u8) -> Query {
    Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(class))
        .issued_at(VirtualTime::new(at))
        .build()
}

fn oracle() -> StaticIntentions {
    StaticIntentions::new().with_defaults(Intention::new(0.6), Intention::new(-0.2))
}

fn replicated(shards: usize, providers: u64) -> ReplicatedMediator {
    let mut service =
        ReplicatedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 42, shards).unwrap();
    for p in 0..providers {
        service
            .register_provider(
                ProviderId::new(p),
                caps((p % 2) as u8),
                1.0 + (p % 3) as f64,
            )
            .unwrap();
    }
    service.register_consumer(ConsumerId::new(1));
    service
}

/// Deterministic churn applied identically to two services.
fn churn(service: &mut ReplicatedMediator, round: u64, providers: u64) {
    for step in 0..3u64 {
        let p = (round * 7 + step * 11) % providers;
        if step == 2 {
            let online = !(round + p).is_multiple_of(3);
            service
                .set_provider_online(ProviderId::new(p), online)
                .unwrap();
        } else {
            service
                .update_provider_load(
                    ProviderId::new(p),
                    (round + step) as f64 * 0.4,
                    step as usize,
                )
                .unwrap();
        }
    }
}

#[test]
fn crash_and_promotion_preserve_the_decision_stream_under_churn() {
    let oracle = oracle();
    let mut stormy = replicated(3, 30);
    let mut calm = replicated(3, 30);
    let stream: Vec<Query> = (0..200u64)
        .map(|i| query(i, i as f64 * 0.05, (i % 2) as u8))
        .collect();

    let mut stormy_outcomes = Vec::new();
    let mut calm_outcomes = Vec::new();
    for (round, chunk) in stream.chunks(25).enumerate() {
        churn(&mut stormy, round as u64, 30);
        churn(&mut calm, round as u64, 30);
        match round {
            3 => {
                stormy.crash_shard(1, &oracle).unwrap();
            }
            5 => {
                // A different shard, later in the run.
                stormy.crash_shard(2, &oracle).unwrap();
                // Crashing the same shard twice must also hold.
                stormy.crash_shard(1, &oracle).unwrap();
            }
            _ => {}
        }
        stormy
            .submit_batch(chunk, &oracle, |_, q, r| {
                stormy_outcomes.push((q.id, r.map(|d| d.selected.clone()).ok()));
            })
            .unwrap();
        calm.submit_batch(chunk, &oracle, |_, q, r| {
            calm_outcomes.push((q.id, r.map(|d| d.selected.clone()).ok()));
        })
        .unwrap();
    }

    assert_eq!(stormy_outcomes, calm_outcomes);
    assert!(stormy.mirrors_in_lockstep());
    assert!(calm.mirrors_in_lockstep());

    // Cumulative tallies survive the promotions.
    let stormy_total: usize = stormy
        .shard_reports()
        .iter()
        .map(|r| r.report.submitted())
        .sum();
    assert_eq!(stormy_total, 200);
}

#[test]
fn checkpoints_bound_replay_state() {
    let oracle = oracle();
    let mut service = replicated(2, 20);
    service.set_checkpoint_interval(0); // manual control
    let stream: Vec<Query> = (0..60u64).map(|i| query(i, i as f64, 0)).collect();
    for chunk in stream.chunks(20) {
        service.submit_batch(chunk, &oracle, |_, _, _| {}).unwrap();
    }
    let before: usize = (0..2)
        .map(|i| {
            let stats = service.shard(i).replication_stats();
            stats.journal_depth + stats.log_depth
        })
        .sum();
    assert!(
        before > 0,
        "a run without checkpoints accumulates replay state"
    );

    service.checkpoint_all().unwrap();
    for i in 0..2 {
        let stats = service.shard(i).replication_stats();
        assert_eq!(stats.journal_depth, 0, "checkpoint clears the journal");
        assert_eq!(stats.tail_depth, 0, "checkpoint clears the tail");
        assert_eq!(stats.replay_lag, 0);
        assert!(stats.checkpoints >= 2);
        // The log keeps only the snapshot mark.
        assert!(
            stats.log_depth <= 1,
            "log depth {} after prune",
            stats.log_depth
        );
    }

    // A crash right after a checkpoint still promotes cleanly.
    let report = service.crash_shard(0, &oracle).unwrap();
    assert_eq!(report.queries_mediated + report.queries_starved, 0);
    assert!(service.mirrors_in_lockstep());
}

#[test]
fn crash_while_shedding_preserves_the_overload_decision_stream() {
    // Drive two degradation-armed replicated services deep into overload —
    // a dense burst that climbs the ladder into shedding — and crash one of
    // them mid-shed. The outcome streams (decisions, starvations AND shed
    // rejections) must stay byte-identical: the ladder survives on the
    // replicated shard, and the journal replays admitted queries at their
    // recorded tier while skipping the recorded sheds.
    let oracle = oracle();
    let degradation = DegradationConfig {
        capacity: 40,
        drain_rate: 50.0,
        ..DegradationConfig::default()
    };
    let mut crashed = replicated(2, 24);
    let mut calm = replicated(2, 24);
    crashed.enable_degradation(degradation).unwrap();
    calm.enable_degradation(degradation).unwrap();

    // 300 queries inside 0.6 virtual seconds: ~500/s against a 50/s drain
    // model — the ladder must reach Shed well before the crash round.
    let stream: Vec<Query> = (0..300u64)
        .map(|i| query(i, i as f64 * 0.002, (i % 2) as u8))
        .collect();

    let mut crashed_outcomes = Vec::new();
    let mut calm_outcomes = Vec::new();
    let classify =
        |r: Result<&sbqa_core::allocator::AllocationDecision, sbqa_types::SbqaError>| match r {
            Ok(d) => (Some(d.selected.clone()), false),
            Err(sbqa_types::SbqaError::QueryShed { .. }) => (None, true),
            Err(_) => (None, false),
        };
    for (round, chunk) in stream.chunks(50).enumerate() {
        if round == 3 {
            // By round 3 the bucket is saturated: crash one shard while its
            // ladder is actively shedding.
            let pre = shed_total(&crashed);
            assert!(pre > 0, "the ladder must be shedding before the crash");
            let replay = crashed.crash_shard(0, &oracle).unwrap();
            assert!(
                replay.queries_shed > 0,
                "the journal must have replayed shed entries"
            );
        }
        crashed
            .submit_batch(chunk, &oracle, |_, q, r| {
                crashed_outcomes.push((q.id, classify(r)));
            })
            .unwrap();
        calm.submit_batch(chunk, &oracle, |_, q, r| {
            calm_outcomes.push((q.id, classify(r)));
        })
        .unwrap();
    }

    assert_eq!(crashed_outcomes, calm_outcomes);
    assert!(crashed_outcomes.iter().any(|(_, (_, shed))| *shed));
    assert!(crashed.mirrors_in_lockstep());

    // The surviving ladders tell the same overload story.
    assert_eq!(shed_total(&crashed), shed_total(&calm));
    let crashed_stats = degradation_totals(&crashed);
    let calm_stats = degradation_totals(&calm);
    assert_eq!(crashed_stats, calm_stats);
    // Conservation across the whole run: mediated + starved + shed = 300.
    let tallied: usize = crashed
        .shard_reports()
        .iter()
        .map(|r| r.report.submitted())
        .sum();
    assert_eq!(tallied as u64 + shed_total(&crashed), 300);
}

fn shed_total(service: &ReplicatedMediator) -> u64 {
    (0..service.shard_count())
        .filter_map(|i| service.shard(i).ladder())
        .map(|ladder| ladder.stats().shed)
        .sum()
}

fn degradation_totals(service: &ReplicatedMediator) -> Vec<(u64, u64, u64, u64)> {
    (0..service.shard_count())
        .map(|i| {
            let stats = service.shard(i).ladder().expect("ladder armed").stats();
            (stats.normal, stats.shrink_kn, stats.baseline, stats.shed)
        })
        .collect()
}

#[test]
fn resize_then_replicate_round_trip() {
    // A sharded service resized live, then armed with replication: the
    // handoff must hand over registry state replication can keep mirroring.
    let mut plain =
        ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 42, 2).unwrap();
    for p in 0..24u64 {
        plain.register_provider(ProviderId::new(p), caps(0), 1.0);
    }
    plain.register_consumer(ConsumerId::new(1));
    plain
        .update_provider_load(ProviderId::new(5), 3.0, 2)
        .unwrap();
    plain
        .set_provider_online(ProviderId::new(9), false)
        .unwrap();

    let grown = plain
        .resize_sbqa(SystemConfig::default().with_knbest(10, 3), 4)
        .unwrap();
    assert_eq!(grown.shard_count(), 4);
    assert_eq!(grown.provider_count(), 24);

    // Rebuild a replicated service over the same population and prove the
    // mirrors track the resized state (load and offline flags included).
    let (router, shards) = grown.into_shards();
    let mut replicated = ReplicatedMediator::new(router.shards(), router.seed(), {
        let mut mediators: Vec<Mediator> = shards
            .into_iter()
            .map(sbqa_service::MediatorShard::into_mediator)
            .collect();
        mediators.reverse();
        move |_| mediators.pop().expect("one mediator per shard")
    })
    .unwrap();
    assert!(replicated.mirrors_in_lockstep());
    let moved = replicated
        .shard(replicated.router().shard_of_provider(ProviderId::new(5)))
        .primary()
        .mediator()
        .providers()
        .get(ProviderId::new(5))
        .unwrap();
    assert_eq!(moved.utilization, 3.0);

    // And it still mediates (with the offline provider excluded).
    let oracle = oracle();
    let stream: Vec<Query> = (0..30u64).map(|i| query(i, i as f64, 0)).collect();
    let report = replicated
        .submit_batch(&stream, &oracle, |_, _, _| {})
        .unwrap();
    assert_eq!(report.mediated + report.starved, 30);
    assert!(replicated.mirrors_in_lockstep());
}
