//! Merged reports of a service run.
//!
//! Each shard mediates its queries independently; at report time the
//! per-shard views are merged into one service-wide picture:
//!
//! * the [`OutcomeRecord`] stream, ordered by `(VirtualTime, QueryId)` — the
//!   determinism contract: for a fixed seed and producer order the merged
//!   stream is byte-stable across runs regardless of how the shard threads
//!   interleaved in wall-clock time;
//! * one [`ShardReport`] per shard (tallies + latency percentiles), so tail
//!   latency can be compared *across* shards;
//! * the aggregate [`BatchReport`] and latency distribution.

use sbqa_core::{BatchReport, DegradationStats, KnAdjustment, PlanCacheStats};
use sbqa_metrics::{LatencyRecorder, LatencyUnit};
use sbqa_replication::ReplicationStats;
use sbqa_types::{ConsumerId, ProviderId, QueryId, VirtualTime};

/// The service-visible outcome of one query's mediation.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRecord {
    /// The shard that mediated the query.
    pub shard: usize,
    /// The mediated query.
    pub query: QueryId,
    /// The consumer that issued it.
    pub consumer: ConsumerId,
    /// Virtual time at which the consumer issued it (the merge key's major
    /// component).
    pub issued_at: VirtualTime,
    /// Providers the query was allocated to, best-ranked first; empty if the
    /// query starved or was shed.
    pub selected: Vec<ProviderId>,
    /// `true` if the shard found no capable online provider.
    pub starved: bool,
    /// `true` if the degradation ladder rejected the query before mediation.
    /// Disjoint from `starved`: shedding is a deliberate admission decision,
    /// not a capability failure.
    pub shed: bool,
}

impl OutcomeRecord {
    /// The merge key: outcomes are ordered by issue time, ties broken by
    /// query id.
    #[must_use]
    pub fn merge_key(&self) -> (VirtualTime, QueryId) {
        (self.issued_at, self.query)
    }
}

/// One shard's view of a service run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Mediated/starved tallies of everything the shard drained.
    pub report: BatchReport,
    /// Per-query ingest-to-decision latency samples.
    pub latency: LatencyRecorder,
    /// The shard's adaptive-`kn` trajectory (every recorded width change,
    /// in adaptation order); empty when adaptation is disabled.
    pub kn_trail: Vec<KnAdjustment>,
    /// Counters of the shard registry's candidate-plan cache.
    pub cache: PlanCacheStats,
    /// Replication counters (log depth, applied sequence, replay lag);
    /// `None` when the shard runs without a standby.
    pub replication: Option<ReplicationStats>,
    /// Degradation-ladder counters (per-tier admissions, sheds, tier
    /// transitions); `None` when the shard runs without a ladder.
    pub degradation: Option<DegradationStats>,
}

/// The merged report of a whole service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-shard tallies and latency, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Every query's outcome, ordered by `(VirtualTime, QueryId)`.
    pub outcomes: Vec<OutcomeRecord>,
    /// Aggregate tallies across all shards.
    pub total: BatchReport,
    /// Wall-clock span from service spawn to the last shard draining dry.
    pub wall: std::time::Duration,
}

impl ServiceReport {
    /// Assembles a service report from per-shard results, sorting the
    /// outcome stream by its merge key (stable, so records that tie on both
    /// time and id keep their per-shard order).
    #[must_use]
    pub fn merge(
        mut shards: Vec<ShardReport>,
        mut outcomes: Vec<OutcomeRecord>,
        wall: std::time::Duration,
    ) -> Self {
        shards.sort_by_key(|s| s.shard);
        outcomes.sort_by_key(OutcomeRecord::merge_key);
        let mut total = BatchReport::default();
        for shard in &shards {
            total.merge(&shard.report);
        }
        Self {
            shards,
            outcomes,
            total,
            wall,
        }
    }

    /// The whole-service latency distribution (all shards merged).
    #[must_use]
    pub fn aggregate_latency(&self) -> LatencyRecorder {
        let mut merged = LatencyRecorder::new();
        for shard in &self.shards {
            merged.merge(&shard.latency);
        }
        merged
    }

    /// Aggregate throughput in queries per wall-clock second.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total.submitted() as f64 / secs
    }

    /// The display unit every per-shard latency row of this report should
    /// share, chosen from the largest per-shard p99 (falling back to the
    /// aggregate maximum when no shard recorded anything).
    ///
    /// The per-recorder adaptive display
    /// ([`LatencyRecorder::display_nanos`]) picks its unit per value, which
    /// renders neighbouring shard rows in different units (`980.00µs` next
    /// to `1.02ms`) — visually incomparable. Formatting every row with this
    /// one unit keeps the shard comparison honest.
    #[must_use]
    pub fn shard_latency_unit(&self) -> LatencyUnit {
        let widest = self
            .shards
            .iter()
            .map(|shard| shard.latency.p99())
            .max()
            .filter(|&p99| p99 > 0)
            .unwrap_or_else(|| self.aggregate_latency().max_nanos());
        LatencyUnit::for_nanos(widest)
    }

    /// Fleet-wide candidate-plan cache counters: every shard's cache stats
    /// folded together (`entries`/`capacity` sum across shards).
    #[must_use]
    pub fn cache_stats(&self) -> PlanCacheStats {
        let mut merged = PlanCacheStats::default();
        for shard in &self.shards {
            merged.merge(&shard.cache);
        }
        merged
    }

    /// Fleet-wide replication counters: every replicated shard's stats
    /// folded together (depths sum, replay lag takes the worst shard).
    /// `None` when no shard ran with a standby.
    #[must_use]
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        let mut merged: Option<ReplicationStats> = None;
        for shard in &self.shards {
            if let Some(stats) = &shard.replication {
                merged
                    .get_or_insert_with(ReplicationStats::default)
                    .merge(stats);
            }
        }
        merged
    }

    /// Fleet-wide degradation counters: every ladder-armed shard's stats
    /// folded together. `None` when no shard ran with a degradation ladder.
    #[must_use]
    pub fn degradation_stats(&self) -> Option<DegradationStats> {
        let mut merged: Option<DegradationStats> = None;
        for shard in &self.shards {
            if let Some(stats) = &shard.degradation {
                merged
                    .get_or_insert_with(DegradationStats::default)
                    .merge(stats);
            }
        }
        merged
    }

    /// Queries the degradation ladders shed across the whole service (0
    /// without ladders).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.degradation_stats().map_or(0, |stats| stats.shed)
    }

    /// Every shard's adaptive-`kn` trajectory, flattened in `(shard, round)`
    /// order — the service-level kn-over-time series. Empty when adaptation
    /// is disabled.
    #[must_use]
    pub fn kn_trajectory(&self) -> Vec<(usize, KnAdjustment)> {
        let mut trajectory: Vec<(usize, KnAdjustment)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .kn_trail
                    .iter()
                    .map(move |adjustment| (shard.shard, *adjustment))
            })
            .collect();
        trajectory.sort_by_key(|(shard, adjustment)| (*shard, adjustment.round));
        trajectory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(shard: usize, id: u64, at: f64) -> OutcomeRecord {
        OutcomeRecord {
            shard,
            query: QueryId::new(id),
            consumer: ConsumerId::new(1),
            issued_at: VirtualTime::new(at),
            selected: vec![ProviderId::new(id)],
            starved: false,
            shed: false,
        }
    }

    fn shard_report(shard: usize, mediated: usize, starved: usize) -> ShardReport {
        ShardReport {
            shard,
            report: BatchReport { mediated, starved },
            latency: {
                let mut latency = LatencyRecorder::new();
                latency.record_nanos(100 * (shard as u64 + 1));
                latency
            },
            kn_trail: Vec::new(),
            cache: PlanCacheStats {
                hits: 4 * shard as u64,
                misses: 1,
                ..PlanCacheStats::default()
            },
            replication: Some(ReplicationStats {
                log_depth: 3,
                last_appended: 10 + shard as u64,
                last_applied: 10 + shard as u64,
                replay_lag: shard as u64,
                ..ReplicationStats::default()
            }),
            degradation: Some(DegradationStats {
                normal: mediated as u64,
                shed: shard as u64,
                transitions: 1,
                ..DegradationStats::default()
            }),
        }
    }

    #[test]
    fn merge_orders_outcomes_by_time_then_id() {
        let outcomes = vec![
            record(1, 7, 2.0),
            record(0, 9, 1.0),
            record(1, 3, 1.0),
            record(0, 5, 2.0),
        ];
        let report = ServiceReport::merge(
            vec![shard_report(1, 2, 0), shard_report(0, 2, 1)],
            outcomes,
            std::time::Duration::from_millis(10),
        );
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.query.raw()).collect();
        assert_eq!(ids, vec![3, 9, 5, 7]);
        // Shard reports come back sorted by index, tallies summed.
        assert_eq!(report.shards[0].shard, 0);
        assert_eq!(report.shards[1].shard, 1);
        assert_eq!(report.total.mediated, 4);
        assert_eq!(report.total.starved, 1);
    }

    #[test]
    fn aggregate_latency_and_throughput() {
        let report = ServiceReport::merge(
            vec![shard_report(0, 3, 0), shard_report(1, 2, 0)],
            Vec::new(),
            std::time::Duration::from_secs(1),
        );
        let latency = report.aggregate_latency();
        assert_eq!(latency.count(), 2);
        assert_eq!(latency.max_nanos(), 200);
        assert!((report.throughput_per_sec() - 5.0).abs() < 1e-9);
        // Cache counters fold across shards.
        let cache = report.cache_stats();
        assert_eq!(cache.hits, 4);
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.lookups(), 6);
        assert!((cache.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        // Replication counters fold across shards: depths sum, lag is the
        // worst shard's, high-water marks take the maximum.
        let replication = report.replication_stats().unwrap();
        assert_eq!(replication.log_depth, 6);
        assert_eq!(replication.last_appended, 11);
        assert_eq!(replication.replay_lag, 1);
        // Degradation counters fold across shards the same way.
        let degradation = report.degradation_stats().unwrap();
        assert_eq!(degradation.normal, 5);
        assert_eq!(degradation.shed, 1);
        assert_eq!(degradation.transitions, 2);
        assert_eq!(report.shed(), 1);

        let degenerate = ServiceReport::merge(Vec::new(), Vec::new(), std::time::Duration::ZERO);
        assert_eq!(degenerate.throughput_per_sec(), 0.0);
    }
}
