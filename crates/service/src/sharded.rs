//! The synchronous sharded mediator.
//!
//! [`ShardedMediator`] partitions the provider population across `N`
//! [`MediatorShard`]s through a [`ShardRouter`] and presents the same
//! registration / batch-submission surface as a single
//! [`Mediator`]:
//!
//! * **providers** are registered with exactly one shard (the router's
//!   placement), so the shards' registries are pairwise disjoint and each
//!   shard answers `Pq` locally over its slice;
//! * **consumers** are registered with every shard — any of their queries may
//!   route anywhere — so each shard tracks the satisfaction of the
//!   mediations *it* performed;
//! * **queries** in a batch are processed in `(VirtualTime, QueryId)` order
//!   (stable: ties keep their batch positions) and dispatched to the shard
//!   the router assigns. Processing in the merged order — rather than
//!   per-shard sub-batches — makes the interleaving, and with it every
//!   shard's RNG consumption, a pure function of the batch content.
//!
//! ## Determinism contract
//!
//! With one shard, everything routes to shard 0 and a batch that is already
//! ordered by `(VirtualTime, QueryId)` (the natural order of an arrival
//! stream with monotone ids) is processed exactly like
//! [`Mediator::submit_batch`](sbqa_core::Mediator::submit_batch): decisions
//! are **byte-identical** to the plain mediator's. With `N` shards the
//! decision stream is a deterministic function of `(seed, batch contents)` —
//! byte-stable across runs — because routing, per-shard order and per-shard
//! allocator seeds are all derived from the seed, never from thread timing
//! or hasher state.

use std::collections::BTreeSet;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle};
use sbqa_core::{Admission, BatchReport, DegradationConfig, KnControllerConfig, Mediator};
use sbqa_metrics::LatencyRecorder;
use sbqa_replication::HandoffPackage;
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{
    CapabilitySet, ConsumerId, ProviderId, Query, SbqaError, SbqaResult, SystemConfig,
};

use crate::report::ShardReport;
use crate::router::ShardRouter;
use crate::shard::MediatorShard;

/// A mediation service facade over `N` provider-disjoint mediator shards.
#[derive(Debug)]
pub struct ShardedMediator {
    router: ShardRouter,
    shards: Vec<MediatorShard>,
    /// Reused batch-position permutation for the merged processing order.
    order_scratch: Vec<u32>,
}

impl ShardedMediator {
    /// Builds a service of `shards` shards (raised to 1 if 0); `make` is
    /// called once per shard index to construct its mediator.
    pub fn new<F>(shards: usize, seed: u64, mut make: F) -> Self
    where
        F: FnMut(usize) -> Mediator,
    {
        let router = ShardRouter::new(shards, seed);
        let shards = (0..router.shards())
            .map(|index| MediatorShard::new(index, make(index)))
            .collect();
        Self {
            router,
            shards,
            order_scratch: Vec::new(),
        }
    }

    /// Builds a sharded SbQA service: shard `i` hosts an
    /// [`SbqaAllocator`](sbqa_core::SbqaAllocator) seeded with
    /// `seed + i`, so shard 0 of a single-shard service consumes exactly the
    /// RNG stream the plain `Mediator::sbqa(config, seed)` would.
    pub fn sbqa(config: SystemConfig, seed: u64, shards: usize) -> SbqaResult<Self> {
        config.validate()?;
        let mut built = Vec::new();
        for index in 0..shards.max(1) {
            built.push(Mediator::sbqa(
                config.clone(),
                seed.wrapping_add(index as u64),
            )?);
        }
        let mut mediators = built.into_iter();
        Ok(Self::new(shards, seed, |_| {
            // sbqa-lint: allow(panic-hygiene, "builder produced exactly one mediator per shard two lines above")
            mediators.next().expect("one mediator per shard")
        }))
    }

    /// The deterministic router assigning providers and queries to shards.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's instrumented view.
    #[must_use]
    pub fn shard(&self, index: usize) -> &MediatorShard {
        &self.shards[index]
    }

    /// Iterates over the shards in index order.
    pub fn shards(&self) -> impl Iterator<Item = &MediatorShard> {
        self.shards.iter()
    }

    /// Registers a provider with its owning shard; returns the shard index.
    pub fn register_provider(
        &mut self,
        id: ProviderId,
        capabilities: CapabilitySet,
        capacity: f64,
    ) -> usize {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard]
            .mediator_mut()
            .register_provider(id, capabilities, capacity);
        shard
    }

    /// Registers a consumer with every shard (its queries may route to any
    /// of them).
    pub fn register_consumer(&mut self, id: ConsumerId) {
        for shard in &mut self.shards {
            shard.mediator_mut().register_consumer(id);
        }
    }

    /// Enables adaptive `kn` on **every shard**: each shard hosts its own
    /// [`KnController`](sbqa_core::KnController) fed exclusively by the
    /// mediations *it* performed, so shards adapt independently to their own
    /// slice of the population (a hot shard can shrink its exploration while
    /// a cold one widens). One adaptation round per shard runs at every
    /// [`ShardedMediator::submit_batch`] boundary; the async ingest front
    /// adapts per drained chunk instead.
    pub fn enable_adaptive_kn(&mut self, config: KnControllerConfig) {
        for shard in &mut self.shards {
            shard.mediator_mut().enable_adaptive_kn(config);
        }
    }

    /// Arms **every shard** with a degradation ladder: each shard runs its
    /// own deterministic leaky bucket over the arrivals routed to it, so a
    /// hot shard can shed while a cold one still mediates at full quality.
    /// Admission runs inside [`ShardedMediator::submit_batch`], in the same
    /// merged `(VirtualTime, QueryId)` order as mediation; shed queries are
    /// reported to the callback as [`SbqaError::QueryShed`] and tallied in
    /// the shards' [`DegradationStats`](sbqa_core::DegradationStats), not in
    /// the [`BatchReport`].
    pub fn enable_degradation(&mut self, config: DegradationConfig) -> SbqaResult<()> {
        for shard in &mut self.shards {
            shard.enable_degradation(config)?;
        }
        Ok(())
    }

    /// Marks a provider online or offline at its owning shard.
    pub fn set_provider_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard]
            .mediator_mut()
            .set_provider_online(id, online)
    }

    /// Updates a provider's load state at its owning shard.
    pub fn update_provider_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard]
            .mediator_mut()
            .update_provider_load(id, utilization, queue_length)
    }

    /// Total number of registered providers across all shards.
    #[must_use]
    pub fn provider_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.mediator().providers().len())
            .sum()
    }

    /// Mediates one query at the shard the router assigns. The returned
    /// decision borrows that shard's scratch, like
    /// [`Mediator::submit_in_place`].
    pub fn submit_in_place(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
    ) -> SbqaResult<&AllocationDecision> {
        let shard = self.router.shard_of_query(query.id);
        self.shards[shard].submit_timed(query, oracle)
    }

    /// Drains a batch of queries through the sharded pipeline.
    ///
    /// Queries are processed in `(issued_at, query id)` order (stable sort —
    /// ties keep batch order), each at its assigned shard; `on_result` is
    /// invoked once per query *in that merged order* with the query's
    /// original batch position and either the borrowed decision or the
    /// starvation error. Returns the batch tallies (also folded into the
    /// per-shard cumulative reports).
    pub fn submit_batch<F>(
        &mut self,
        queries: &[Query],
        oracle: &dyn IntentionOracle,
        mut on_result: F,
    ) -> BatchReport
    where
        F: FnMut(usize, &Query, SbqaResult<&AllocationDecision>),
    {
        self.order_scratch.clear();
        self.order_scratch
            // sbqa-lint: allow(panic-hygiene, "batch length is bounded by the ingest queue, far below u32::MAX")
            .extend(0..u32::try_from(queries.len()).expect("batch fits in u32"));
        self.order_scratch
            .sort_by_key(|&pos| merge_key(&queries[pos as usize]));

        // Batch boundary: every shard runs one adaptation round (a no-op
        // without a controller), mirroring `Mediator::submit_batch`.
        for shard in &mut self.shards {
            shard.mediator_mut().adapt_kn();
        }

        let mut report = BatchReport::default();
        for &pos in &self.order_scratch {
            let query = &queries[pos as usize];
            let shard = self.router.shard_of_query(query.id);
            if matches!(self.shards[shard].admit(query.issued_at), Admission::Shed) {
                // sbqa-lint: allow(wall-clock, "latency instrumentation only; the shed decision itself is virtual-time driven")
                self.shards[shard].record_shed(std::time::Instant::now());
                on_result(
                    pos as usize,
                    query,
                    Err(SbqaError::QueryShed { query: query.id }),
                );
                continue;
            }
            let result = self.shards[shard].submit_timed(query, oracle);
            match &result {
                Ok(_) => report.mediated += 1,
                Err(_) => report.starved += 1,
            }
            on_result(pos as usize, query, result);
        }
        report
    }

    /// Classifies a starvation the way the assigned shard sees it.
    #[must_use]
    pub fn starvation_error(&self, query: &Query) -> SbqaError {
        let shard = self.router.shard_of_query(query.id);
        self.shards[shard]
            .mediator()
            .providers()
            .starvation_error(query)
    }

    /// Immutable access to one shard's satisfaction registry.
    #[must_use]
    pub fn satisfaction(&self, shard: usize) -> &SatisfactionRegistry {
        self.shards[shard].mediator().satisfaction()
    }

    /// Snapshots the per-shard tallies, latency distributions and
    /// adaptive-`kn` trajectories.
    #[must_use]
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .map(MediatorShard::report_snapshot)
            .collect()
    }

    /// The whole-service latency distribution.
    #[must_use]
    pub fn aggregate_latency(&self) -> LatencyRecorder {
        let mut merged = LatencyRecorder::new();
        for shard in &self.shards {
            merged.merge(shard.latency());
        }
        merged
    }

    /// Decomposes the service into its router and shards — the handoff the
    /// async ingest front uses to move each shard into its mediation thread.
    #[must_use]
    pub fn into_shards(self) -> (ShardRouter, Vec<MediatorShard>) {
        (self.router, self.shards)
    }

    /// Re-partitions the service across a different shard count **live**,
    /// via replication [`HandoffPackage`]s: every provider's full registry
    /// snapshot (capabilities, capacity, load columns, online flag) and its
    /// satisfaction tracker travel to the shard the re-seeded router
    /// assigns, replayed there as snapshot deltas — no provider is
    /// re-registered from the outside world, and no accumulated state
    /// (utilization, queue depth, offline flags, satisfaction windows) is
    /// lost in transit.
    ///
    /// `make` constructs the new shards' mediators (fresh allocators: each
    /// new shard's RNG stream starts at its seed, exactly as if the service
    /// had been built at this size — the resized service is deterministic,
    /// not a byte-continuation of the old one). Consumer registrations are
    /// re-created on every new shard with fresh satisfaction windows:
    /// consumer histories are per-shard views of the mediations *that shard*
    /// performed, which the new partition redistributes anyway. Provider
    /// windows, by contrast, describe the provider itself and travel with
    /// it.
    ///
    /// # Errors
    ///
    /// Any handoff replay error (a corrupt package); the service is consumed
    /// either way, so resize at a quiescent point.
    pub fn resize<F>(self, new_shards: usize, mut make: F) -> SbqaResult<Self>
    where
        F: FnMut(usize) -> Mediator,
    {
        let (router, shards) = self.into_shards();
        let new_router = ShardRouter::new(new_shards, router.seed());
        let mut packages: Vec<HandoffPackage> = (0..new_router.shards())
            .map(|_| HandoffPackage::new())
            .collect();
        let mut consumers: BTreeSet<ConsumerId> = BTreeSet::new();
        for shard in shards {
            let (_allocator, providers, mut satisfaction) = shard.into_mediator().into_parts();
            consumers.extend(satisfaction.consumer_satisfactions().map(|(id, _)| id));
            for snapshot in providers.iter() {
                let target = new_router.shard_of_provider(snapshot.id);
                let tracker = satisfaction.extract_provider(snapshot.id);
                packages[target].push_provider(snapshot, tracker);
            }
        }
        let mut built = Vec::with_capacity(packages.len());
        for (index, package) in packages.into_iter().enumerate() {
            let mut mediator = make(index);
            for &consumer in &consumers {
                mediator.register_consumer(consumer);
            }
            package.apply(&mut mediator)?;
            built.push(MediatorShard::new(index, mediator));
        }
        Ok(Self {
            router: new_router,
            shards: built,
            order_scratch: Vec::new(),
        })
    }

    /// [`resize`](Self::resize) with SbQA mediators: new shard `i` hosts an
    /// allocator seeded with `router seed + i`, the same derivation
    /// [`ShardedMediator::sbqa`] uses, so a grown service is
    /// indistinguishable from one built at the new size with the same
    /// provider history.
    ///
    /// # Errors
    ///
    /// Configuration validation errors, or any [`resize`](Self::resize)
    /// handoff error.
    pub fn resize_sbqa(self, config: SystemConfig, new_shards: usize) -> SbqaResult<Self> {
        config.validate()?;
        let seed = self.router.seed();
        let mut built = Vec::new();
        for index in 0..new_shards.max(1) {
            built.push(Mediator::sbqa(
                config.clone(),
                seed.wrapping_add(index as u64),
            )?);
        }
        let mut mediators = built.into_iter();
        self.resize(new_shards, |_| {
            // sbqa-lint: allow(panic-hygiene, "builder produced exactly one mediator per shard two lines above")
            mediators.next().expect("one mediator per shard")
        })
    }
}

/// The merged processing order's sort key.
fn merge_key(query: &Query) -> (sbqa_types::VirtualTime, sbqa_types::QueryId) {
    (query.issued_at, query.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::StaticIntentions;
    use sbqa_types::{Capability, Intention, QueryId, VirtualTime};

    fn caps(class: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(class))
    }

    fn query(id: u64, at: f64) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .issued_at(VirtualTime::new(at))
            .build()
    }

    fn service(shards: usize) -> ShardedMediator {
        let mut service =
            ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 42, shards).unwrap();
        for p in 0..40u64 {
            service.register_provider(ProviderId::new(p), caps(0), 1.0);
        }
        service.register_consumer(ConsumerId::new(1));
        service
    }

    #[test]
    fn providers_land_on_exactly_one_shard() {
        let service = service(4);
        assert_eq!(service.shard_count(), 4);
        assert_eq!(service.provider_count(), 40);
        for p in 0..40u64 {
            let id = ProviderId::new(p);
            let owner = service.router().shard_of_provider(id);
            for shard in service.shards() {
                let present = shard.mediator().providers().get(id).is_some();
                assert_eq!(
                    present,
                    shard.index() == owner,
                    "provider {p} on shard {}",
                    shard.index()
                );
            }
        }
    }

    #[test]
    fn routed_operations_reach_the_owning_shard() {
        let mut service = service(4);
        let id = ProviderId::new(7);
        let owner = service.router().shard_of_provider(id);
        service.update_provider_load(id, 3.5, 2).unwrap();
        let snapshot = service.shard(owner).mediator().providers().get(id).unwrap();
        assert_eq!(snapshot.utilization, 3.5);
        service.set_provider_online(id, false).unwrap();
        assert!(
            !service
                .shard(owner)
                .mediator()
                .providers()
                .get(id)
                .unwrap()
                .online
        );
        // Unknown providers are an error, not a misroute.
        assert!(service
            .update_provider_load(ProviderId::new(999), 1.0, 1)
            .is_err());
    }

    #[test]
    fn batch_callback_sees_merged_time_then_id_order() {
        let mut service = service(2);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        // Batch deliberately out of order.
        let queries = vec![query(5, 2.0), query(9, 1.0), query(3, 1.0), query(7, 2.0)];
        let mut seen = Vec::new();
        let report = service.submit_batch(&queries, &oracle, |pos, q, result| {
            assert!(result.is_ok());
            seen.push((pos, q.id.raw()));
        });
        assert_eq!(report.mediated, 4);
        assert_eq!(seen, vec![(2, 3), (1, 9), (0, 5), (3, 7)]);
    }

    #[test]
    fn batch_tallies_fold_into_shard_reports() {
        let mut service = service(2);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        let queries = vec![
            query(1, 0.0),
            // Starves: nobody advertises capability 9.
            Query::builder(QueryId::new(2), ConsumerId::new(1), Capability::new(9))
                .issued_at(VirtualTime::new(0.0))
                .build(),
            query(3, 0.0),
        ];
        let report = service.submit_batch(&queries, &oracle, |_, _, _| {});
        assert_eq!(report.mediated, 2);
        assert_eq!(report.starved, 1);

        let shard_totals: BatchReport = {
            let mut total = BatchReport::default();
            for shard_report in service.shard_reports() {
                total.merge(&shard_report.report);
            }
            total
        };
        assert_eq!(shard_totals, report);
        assert_eq!(service.aggregate_latency().count(), 3);
    }

    #[test]
    fn resize_moves_provider_state_without_reregistering() {
        let mut service = service(2);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        // Accumulate state the handoff must preserve: loads, an offline
        // provider and live satisfaction windows.
        service
            .update_provider_load(ProviderId::new(3), 2.5, 7)
            .unwrap();
        service
            .set_provider_online(ProviderId::new(11), false)
            .unwrap();
        let queries: Vec<Query> = (0..20u64).map(|i| query(i, i as f64)).collect();
        service.submit_batch(&queries, &oracle, |_, _, _| {});
        let before: f64 = (0..2)
            .map(|s| {
                service
                    .satisfaction(s)
                    .provider_satisfactions()
                    .map(|(_, sat)| sat.value())
                    .sum::<f64>()
            })
            .sum();

        let grown = service
            .resize_sbqa(SystemConfig::default().with_knbest(10, 3), 5)
            .unwrap();
        assert_eq!(grown.shard_count(), 5);
        assert_eq!(grown.provider_count(), 40);

        // Every provider landed on the new router's shard with its state.
        let moved = grown
            .shard(grown.router().shard_of_provider(ProviderId::new(3)))
            .mediator()
            .providers()
            .get(ProviderId::new(3))
            .unwrap();
        assert_eq!(moved.utilization, 2.5);
        assert_eq!(moved.queue_length, 7);
        assert!(
            !grown
                .shard(grown.router().shard_of_provider(ProviderId::new(11)))
                .mediator()
                .providers()
                .get(ProviderId::new(11))
                .unwrap()
                .online
        );
        // Provider satisfaction windows travelled with their providers.
        let after: f64 = (0..5)
            .map(|s| {
                grown
                    .satisfaction(s)
                    .provider_satisfactions()
                    .map(|(_, sat)| sat.value())
                    .sum::<f64>()
            })
            .sum();
        assert!(
            (before - after).abs() < 1e-12,
            "before {before}, after {after}"
        );
        // And shrinking back works too.
        let shrunk = grown
            .resize_sbqa(SystemConfig::default().with_knbest(10, 3), 1)
            .unwrap();
        assert_eq!(shrunk.provider_count(), 40);
        assert!(
            !shrunk
                .shard(0)
                .mediator()
                .providers()
                .get(ProviderId::new(11))
                .unwrap()
                .online
        );
    }

    #[test]
    fn resized_service_matches_one_built_at_the_new_size() {
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        let grown = service(2)
            .resize_sbqa(SystemConfig::default().with_knbest(10, 3), 4)
            .unwrap();
        let mut native = service(4);
        let mut resized = grown;
        // Same seed derivation, same provider population, no prior history:
        // the decision streams coincide.
        let queries: Vec<Query> = (0..30u64).map(|i| query(i, i as f64)).collect();
        let mut from_resized = Vec::new();
        let mut from_native = Vec::new();
        resized.submit_batch(&queries, &oracle, |_, q, r| {
            from_resized.push((q.id, r.map(|d| d.selected.clone()).ok()));
        });
        native.submit_batch(&queries, &oracle, |_, q, r| {
            from_native.push((q.id, r.map(|d| d.selected.clone()).ok()));
        });
        assert_eq!(from_resized, from_native);
    }

    #[test]
    fn starvation_error_is_shard_local() {
        let mut service = ShardedMediator::sbqa(SystemConfig::default(), 4, 4).unwrap();
        // One provider, capability 1: only its owning shard knows it.
        service.register_provider(ProviderId::new(1), caps(1), 1.0);
        let q = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(1)).build();
        let err = service.starvation_error(&q);
        let owner = service.router().shard_of_provider(ProviderId::new(1));
        let assigned = service.router().shard_of_query(q.id);
        if owner == assigned {
            // The capable provider is local (and online) — the query would
            // not actually starve; the classifier reports "offline" only
            // when it is.
            assert!(service
                .submit_in_place(&q, &StaticIntentions::new())
                .is_ok());
        } else {
            assert!(matches!(err, SbqaError::NoCapableProvider { .. }));
        }
    }
}
