//! # sbqa-service
//!
//! The sharded mediation service: the paper's single logical mediator,
//! scaled across cores without touching allocation semantics.
//!
//! The [`Mediator`](sbqa_core::Mediator) of `sbqa_core` mediates one query
//! at a time over the whole provider population. This crate partitions that
//! population across `N` **shards** — each a full mediator (capability
//! -indexed registry + satisfaction registry + allocation technique) over
//! its slice — behind a thin deterministic [`ShardRouter`]:
//!
//! * [`ShardedMediator`] is the synchronous facade: the same registration /
//!   `submit_batch` surface as a plain mediator, with queries dispatched to
//!   their assigned shards in merged `(VirtualTime, QueryId)` order;
//! * [`MediationService`] is the asynchronous ingest front: one bounded
//!   ingest ring ([`BoundedRing`]) and one mediation thread per shard;
//!   producers enqueue query batches and block only when a ring fills, an
//!   optional per-shard degradation ladder (shrink-kn → capacity baseline →
//!   deterministic shedding) keeps behavior defined *past* saturation, and
//!   `finish()` merges the per-shard outcome streams and [`ShardReport`]s
//!   (tallies + p50/p95/p99 latency + degradation counters) into one
//!   [`ServiceReport`];
//! * [`ReplicatedMediator`] is the fault-tolerant front: every shard is a
//!   [`ReplicatedShard`] pairing the live mediator with a standby mirror fed
//!   by the registry's delta log; [`crash_shard`](ReplicatedMediator::crash_shard)
//!   kills a primary mid-run and promotes its standby with a byte-identical
//!   decision stream.
//!
//! ## Determinism contract
//!
//! With **one shard** the service is byte-identical to the plain mediator:
//! routing degenerates to the identity, shard 0's allocator consumes the
//! exact RNG stream `Mediator::sbqa(config, seed)` would, and an arrival
//! -ordered batch is processed in the same order. With **`N` shards** the
//! merged outcome stream is byte-stable across runs for a fixed seed and
//! producer order: routing is a pure seeded hash, per-shard processing
//! order is queue order, and the merge sorts by `(VirtualTime, QueryId)` —
//! nothing observable depends on thread interleaving. The integration tests
//! of this crate pin both properties.
//!
//! What sharding *does* change at `N > 1` — by design — is the candidate
//! set: a query sees only its shard's slice of the population, so `kn`
//! draws come from `|Pq|/N` candidates and satisfaction is tracked per
//! shard. That is the standard scale-out trade-off: each shard remains a
//! faithful SbQA mediator over its slice.

#![forbid(unsafe_code)]

pub mod failover;
pub mod ingest;
pub mod report;
pub mod ring;
pub mod router;
pub mod shard;
pub mod sharded;

pub use failover::{ReplicatedMediator, ReplicatedShard};
pub use ingest::{IngestConfig, MediationService};
pub use report::{OutcomeRecord, ServiceReport, ShardReport};
pub use ring::BoundedRing;
pub use router::ShardRouter;
pub use shard::MediatorShard;
pub use sharded::ShardedMediator;
