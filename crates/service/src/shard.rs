//! One shard of the mediation service.
//!
//! A [`MediatorShard`] is a full [`Mediator`] (provider registry +
//! satisfaction registry + allocation technique) over its slice of the
//! provider population, wrapped with the service-side instrumentation the
//! sharded front needs: cumulative [`BatchReport`] tallies and a
//! [`LatencyRecorder`] of per-query wall-clock mediation latency.
//!
//! The shard does not know how queries reach it — the synchronous
//! [`ShardedMediator`](crate::ShardedMediator) calls it inline, the async
//! [`MediationService`](crate::MediationService) moves it into a dedicated
//! mediation thread and feeds it from an mpsc ingest queue. Either way every
//! mediation goes through [`MediatorShard::submit_with_start`], so the two
//! fronts produce identical decisions and comparable latency samples.

use std::time::Instant;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle};
use sbqa_core::{
    Admission, BatchReport, DegradationConfig, DegradationLadder, DegradationTier, Mediator,
};
use sbqa_metrics::LatencyRecorder;
use sbqa_types::{Query, SbqaResult, VirtualTime};

/// A mediator shard: one [`Mediator`] plus service-side instrumentation.
#[derive(Debug)]
pub struct MediatorShard {
    index: usize,
    mediator: Mediator,
    report: BatchReport,
    latency: LatencyRecorder,
    /// Overload admission control; `None` (the default) admits everything
    /// at [`DegradationTier::Normal`], byte-identical to the seed behavior.
    ladder: Option<DegradationLadder>,
}

impl MediatorShard {
    /// Wraps a mediator as shard `index`.
    #[must_use]
    pub fn new(index: usize, mediator: Mediator) -> Self {
        Self {
            index,
            mediator,
            report: BatchReport::default(),
            latency: LatencyRecorder::new(),
            ladder: None,
        }
    }

    /// Arms the shard with a degradation ladder: every subsequent
    /// [`MediatorShard::admit`] runs the query through the deterministic
    /// leaky bucket before mediation.
    pub fn enable_degradation(&mut self, config: DegradationConfig) -> SbqaResult<()> {
        self.mediator.set_degraded_kn_floor(config.floor_kn);
        self.ladder = Some(DegradationLadder::new(config)?);
        Ok(())
    }

    /// The shard's degradation ladder, if armed.
    #[must_use]
    pub fn ladder(&self) -> Option<&DegradationLadder> {
        self.ladder.as_ref()
    }

    /// Runs admission control for a query arriving at `at`, setting the
    /// mediator's degradation tier on admission. Hosts must call this in
    /// `(issued_at, id)` order per shard and honour a
    /// [`Admission::Shed`] verdict by *not* mediating the query (recording
    /// it via [`MediatorShard::record_shed`] instead). Without a ladder
    /// every query is admitted at [`DegradationTier::Normal`] and the
    /// mediator is left untouched.
    pub fn admit(&mut self, at: VirtualTime) -> Admission {
        let Some(ladder) = &mut self.ladder else {
            return Admission::Admit(DegradationTier::Normal);
        };
        let admission = ladder.observe_arrival(at);
        if let Admission::Admit(tier) = admission {
            self.mediator.set_degradation_tier(tier);
        }
        admission
    }

    /// Records a shed query's latency sample (enqueue → shed decision).
    /// Sheds are not tallied in the [`BatchReport`] — conservation is
    /// `enqueued = mediated + starved + shed`, with the shed count living in
    /// the ladder's [`DegradationStats`](sbqa_core::DegradationStats).
    pub fn record_shed(&mut self, start: Instant) {
        self.latency.record(start.elapsed());
    }

    /// This shard's position in the service.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The wrapped mediator.
    #[must_use]
    pub fn mediator(&self) -> &Mediator {
        &self.mediator
    }

    /// Mutable access to the wrapped mediator (registration, load updates).
    pub fn mediator_mut(&mut self) -> &mut Mediator {
        &mut self.mediator
    }

    /// Cumulative tallies of every query this shard has mediated.
    #[must_use]
    pub fn report(&self) -> BatchReport {
        self.report
    }

    /// The per-query latency samples recorded so far.
    #[must_use]
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Mediates one query, recording its latency as measured from `start` —
    /// the ingest front passes the *enqueue* instant here, so the sample
    /// includes the time the query spent waiting in the shard's queue, which
    /// is exactly the quantity the batch-size/latency trade-off is about.
    ///
    /// The returned decision borrows the mediator's scratch and is valid
    /// until the next mediation, like [`Mediator::submit_in_place`].
    pub fn submit_with_start(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
        start: Instant,
    ) -> SbqaResult<&AllocationDecision> {
        let result = self.mediator.submit_in_place(query, oracle);
        self.latency.record(start.elapsed());
        match &result {
            Ok(_) => self.report.mediated += 1,
            Err(_) => self.report.starved += 1,
        }
        result
    }

    /// Mediates one query, measuring latency from this call — the
    /// synchronous front's path, where there is no queueing delay.
    pub fn submit_timed(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
    ) -> SbqaResult<&AllocationDecision> {
        // sbqa-lint: allow(wall-clock, "default submit stamp for latency measurement; allocation reads VirtualTime only")
        self.submit_with_start(query, oracle, Instant::now())
    }

    /// The shard's adaptive-`kn` trajectory: every width change its
    /// controller recorded, in adaptation order. Empty when adaptation is
    /// disabled.
    #[must_use]
    pub fn kn_trail(&self) -> Vec<sbqa_core::KnAdjustment> {
        self.mediator
            .adaptive_kn()
            .map(|controller| controller.trail().to_vec())
            .unwrap_or_default()
    }

    /// Snapshots this shard's view of a run: tallies, latency distribution,
    /// the adaptive-`kn` trajectory and the plan-cache counters.
    #[must_use]
    pub fn report_snapshot(&self) -> crate::report::ShardReport {
        crate::report::ShardReport {
            shard: self.index,
            report: self.report,
            latency: self.latency.clone(),
            kn_trail: self.kn_trail(),
            cache: self.mediator.plan_cache_stats(),
            // A bare shard has no standby; the replicated wrapper
            // (`crate::failover::ReplicatedShard`) fills these in.
            replication: None,
            degradation: self.ladder.as_ref().map(DegradationLadder::stats),
        }
    }

    /// Unwraps the shard back into its mediator, dropping the
    /// instrumentation.
    #[must_use]
    pub fn into_mediator(self) -> Mediator {
        self.mediator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::StaticIntentions;
    use sbqa_types::{
        Capability, CapabilitySet, ConsumerId, Intention, ProviderId, QueryId, SystemConfig,
    };

    fn shard_with_providers(n: u64) -> MediatorShard {
        let mut mediator = Mediator::sbqa(SystemConfig::default().with_knbest(10, 3), 5).unwrap();
        for p in 0..n {
            mediator.register_provider(
                ProviderId::new(p),
                CapabilitySet::singleton(Capability::new(0)),
                1.0,
            );
        }
        mediator.register_consumer(ConsumerId::new(1));
        MediatorShard::new(2, mediator)
    }

    fn query(id: u64, class: u8) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(class)).build()
    }

    #[test]
    fn shard_tallies_and_times_every_mediation() {
        let mut shard = shard_with_providers(5);
        assert_eq!(shard.index(), 2);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        assert!(shard.submit_timed(&query(1, 0), &oracle).is_ok());
        // Capability 9 is advertised by nobody: a starvation.
        assert!(shard.submit_timed(&query(2, 9), &oracle).is_err());
        assert!(shard.submit_timed(&query(3, 0), &oracle).is_ok());

        assert_eq!(shard.report().mediated, 2);
        assert_eq!(shard.report().starved, 1);
        assert_eq!(shard.report().submitted(), 3);
        // Every query — mediated or starved — contributes a latency sample.
        assert_eq!(shard.latency().count(), 3);
    }

    #[test]
    fn shard_decisions_match_the_plain_mediator() {
        let mut shard = shard_with_providers(8);
        let mut plain = shard_with_providers(8).into_mediator();
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.3), Intention::new(0.7));
        for id in 0..50u64 {
            let q = query(id, 0);
            let expected = plain.submit(&q, &oracle).unwrap().decision;
            let got = shard.submit_timed(&q, &oracle).unwrap();
            assert_eq!(&expected, got, "query {id}");
        }
    }
}
