//! Deterministic shard routing.
//!
//! The router answers two questions, and must answer them identically on
//! every machine, in every run, for a given seed:
//!
//! * **which shard owns a provider** — providers are partitioned across the
//!   shards so that every provider id is registered with *exactly one*
//!   shard's registry (the disjointness invariant the service's property
//!   tests pin), and
//! * **which shard mediates a query** — each query is assigned to one shard,
//!   whose local registry answers `Pq` over its slice of the provider
//!   population.
//!
//! Both answers are a seeded multiplicative-mix hash (the SplitMix64
//! finalizer) of the raw id, reduced modulo the shard count. A hash — rather
//! than a contiguous id range — keeps the partition balanced for *any* id
//! distribution (scenario populations often use offset or strided id
//! blocks), while remaining a pure function of `(seed, id)` so that routing
//! never depends on registration order, hasher state or platform. With one
//! shard every id maps to shard 0 and the service degenerates to the plain
//! mediator.
//!
//! Provider and query routing use different salts: a provider and a query
//! that happen to share a raw id must not be correlated in their placement.

use sbqa_types::{ProviderId, QueryId};

/// Salt mixed into provider placement.
const PROVIDER_SALT: u64 = 0x9E6C_63C0_D1FF_37A1;
/// Salt mixed into query assignment.
const QUERY_SALT: u64 = 0x3C79_AC49_2BA7_B653;

/// The SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Deterministic assignment of providers and queries to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u64,
    seed: u64,
}

impl ShardRouter {
    /// Creates a router over `shards` shards (raised to 1 if 0) with the
    /// given seed.
    #[must_use]
    pub fn new(shards: usize, seed: u64) -> Self {
        Self {
            shards: shards.max(1) as u64,
            seed,
        }
    }

    /// Number of shards this router distributes over.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The routing seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard that owns (registers, mediates load updates for) a provider.
    #[must_use]
    pub fn shard_of_provider(&self, id: ProviderId) -> usize {
        (mix(id.raw() ^ self.seed ^ PROVIDER_SALT) % self.shards) as usize
    }

    /// The shard that mediates a query.
    #[must_use]
    pub fn shard_of_query(&self, id: QueryId) -> usize {
        (mix(id.raw() ^ self.seed ^ QUERY_SALT) % self.shards) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1, 42);
        for raw in 0..1_000u64 {
            assert_eq!(router.shard_of_provider(ProviderId::new(raw)), 0);
            assert_eq!(router.shard_of_query(QueryId::new(raw)), 0);
        }
        // A zero shard count is raised to one, not a division by zero.
        assert_eq!(ShardRouter::new(0, 42).shards(), 1);
    }

    #[test]
    fn routing_is_a_pure_function_of_seed_and_id() {
        let a = ShardRouter::new(8, 7);
        let b = ShardRouter::new(8, 7);
        for raw in 0..500u64 {
            assert_eq!(
                a.shard_of_provider(ProviderId::new(raw)),
                b.shard_of_provider(ProviderId::new(raw))
            );
            assert_eq!(
                a.shard_of_query(QueryId::new(raw)),
                b.shard_of_query(QueryId::new(raw))
            );
        }
    }

    #[test]
    fn different_seeds_change_the_partition() {
        let a = ShardRouter::new(8, 1);
        let b = ShardRouter::new(8, 2);
        let moved = (0..1_000u64)
            .filter(|&raw| {
                a.shard_of_provider(ProviderId::new(raw))
                    != b.shard_of_provider(ProviderId::new(raw))
            })
            .count();
        // With 8 shards, ~7/8 of ids should move under a different seed.
        assert!(moved > 700, "only {moved} of 1000 ids moved");
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        // Both for dense ids and for a strided block (scenario populations
        // use offsets like 1_000 + i), every shard gets a fair share.
        for stride in [1u64, 7, 1_000] {
            let router = ShardRouter::new(4, 42);
            let mut counts = [0usize; 4];
            for i in 0..10_000u64 {
                counts[router.shard_of_provider(ProviderId::new(1_000 + i * stride))] += 1;
            }
            for (shard, &count) in counts.iter().enumerate() {
                assert!(
                    (1_800..=3_200).contains(&count),
                    "stride {stride}: shard {shard} got {count} of 10000"
                );
            }
        }
    }

    #[test]
    fn provider_and_query_placements_are_decorrelated() {
        let router = ShardRouter::new(4, 42);
        let agreeing = (0..10_000u64)
            .filter(|&raw| {
                router.shard_of_provider(ProviderId::new(raw))
                    == router.shard_of_query(QueryId::new(raw))
            })
            .count();
        // Independent placements agree ~1/4 of the time; perfectly
        // correlated ones would agree always.
        assert!(
            (1_500..=3_500).contains(&agreeing),
            "placements agree on {agreeing} of 10000 ids"
        );
    }
}
