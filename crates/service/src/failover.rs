//! Failover orchestration: replicated shards, crash and promotion.
//!
//! [`ReplicatedMediator`] is the [`ShardedMediator`](crate::ShardedMediator)
//! surface with a standby behind every shard: each
//! [`ReplicatedShard`] pairs a live [`MediatorShard`] (its registry feeding
//! a [`SharedDeltaLog`]) with a [`StandbyShard`] that mirrors it by
//! checkpoint + delta replay and journals the queries the primary accepts.
//!
//! [`ReplicatedMediator::crash_shard`] *drops* the primary — registry,
//! satisfaction state and allocator RNG vanish, exactly as in a real crash —
//! and promotes the standby in its place. Because promotion replays the
//! checkpoint's tail and query journal interleaved by log watermark, the
//! promoted mediator is in the dead primary's precise pre-crash state and
//! the merged `(VirtualTime, QueryId)`-ordered outcome stream continues
//! **byte-identically** versus an uninterrupted run (this crate's failover
//! tests and the `scenario_failover` bench pin that on seed 42).
//!
//! What does *not* survive a crash, deliberately: the shard's wall-clock
//! instrumentation (latency samples, plan-cache counters) restarts with the
//! promoted primary — those live in the crashed process. The orchestrator
//! keeps the cumulative mediated/starved tallies itself, so service totals
//! span promotions.

use std::time::Instant;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle};
use sbqa_core::{
    Admission, BatchReport, DegradationConfig, DegradationLadder, Mediator, QueryDisposition,
};
pub use sbqa_replication::standby::ReplayReport;
pub use sbqa_replication::ReplicationStats;

use sbqa_replication::{registry_digest, SharedDeltaLog, StandbyShard};
use sbqa_types::{
    CapabilitySet, ConsumerId, ProviderId, Query, SbqaError, SbqaResult, SystemConfig,
};

use crate::report::ShardReport;
use crate::router::ShardRouter;
use crate::shard::MediatorShard;

/// Default number of batches between automatic checkpoints.
const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4;

/// One mediator shard with a promotable standby behind it.
#[derive(Debug)]
pub struct ReplicatedShard {
    index: usize,
    primary: MediatorShard,
    log: SharedDeltaLog,
    standby: StandbyShard,
    promotions: u64,
    /// Overload admission control. Lives here — not on the primary — so a
    /// crash does not reset the ladder: the promoted mediator inherits the
    /// exact leaky-bucket state the crashed primary was shedding under.
    ladder: Option<DegradationLadder>,
}

impl ReplicatedShard {
    /// Arms replication around a mediator: the mediator is decomposed with
    /// [`Mediator::into_parts`], its allocator forked and registries cloned
    /// into the standby's bootstrap checkpoint, and the primary reassembled
    /// with its registry feeding a fresh delta log.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] when the hosted allocation
    /// technique does not implement
    /// [`QueryAllocator::fork`](sbqa_core::QueryAllocator::fork) — an
    /// uncheckpointable technique would silently diverge after a failover,
    /// so arming refuses instead.
    pub fn new(index: usize, mediator: Mediator) -> SbqaResult<Self> {
        let technique = mediator.technique();
        let (allocator, mut providers, satisfaction) = mediator.into_parts();
        let standby_allocator =
            allocator
                .fork()
                .ok_or_else(|| SbqaError::InvalidConfiguration {
                    reason: format!(
                        "allocation technique '{technique}' cannot be checkpointed \
                         (QueryAllocator::fork returned None)"
                    ),
                })?;
        let log = SharedDeltaLog::new();
        let standby = StandbyShard::new(
            standby_allocator,
            providers.clone(),
            satisfaction.clone(),
            log.last_sequence(),
        );
        providers.set_delta_sink(Box::new(log.clone()));
        let primary = MediatorShard::new(
            index,
            Mediator::from_parts(allocator, providers, satisfaction),
        );
        Ok(Self {
            index,
            primary,
            log,
            standby,
            promotions: 0,
            ladder: None,
        })
    }

    /// Arms overload admission control: every subsequent
    /// [`ReplicatedShard::submit_with_start`] runs the query through the
    /// deterministic degradation ladder, journaling the verdict on the
    /// standby so a promotion replays admitted queries at their tier and
    /// skips the sheds.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] for an invalid ladder config.
    pub fn enable_degradation(&mut self, config: DegradationConfig) -> SbqaResult<()> {
        self.primary
            .mediator_mut()
            .set_degraded_kn_floor(config.floor_kn);
        self.standby.set_degraded_floor(config.floor_kn);
        self.ladder = Some(DegradationLadder::new(config)?);
        Ok(())
    }

    /// The shard's degradation ladder, if armed.
    #[must_use]
    pub fn ladder(&self) -> Option<&DegradationLadder> {
        self.ladder.as_ref()
    }

    /// This shard's position in the service.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The live (instrumented) primary.
    #[must_use]
    pub fn primary(&self) -> &MediatorShard {
        &self.primary
    }

    /// The standby mirroring the primary.
    #[must_use]
    pub fn standby(&self) -> &StandbyShard {
        &self.standby
    }

    /// Streams any log records the standby has not yet applied into it.
    ///
    /// # Errors
    ///
    /// Propagates [`StandbyShard::catch_up`] gap errors.
    pub fn sync(&mut self) -> SbqaResult<usize> {
        self.standby.catch_up(&self.log)
    }

    /// Registers a provider on the primary (the mutation reaches the
    /// standby's mirror through the delta log).
    ///
    /// # Errors
    ///
    /// Propagates replication-stream gap errors from the standby sync.
    pub fn register_provider(
        &mut self,
        id: ProviderId,
        capabilities: CapabilitySet,
        capacity: f64,
    ) -> SbqaResult<()> {
        self.primary
            .mediator_mut()
            .register_provider(id, capabilities, capacity);
        self.sync().map(|_| ())
    }

    /// Registers a consumer on the primary and mirrors it to the standby
    /// (consumer churn is control-plane traffic, not registry deltas).
    pub fn register_consumer(&mut self, id: ConsumerId) {
        self.primary.mediator_mut().register_consumer(id);
        self.standby.register_consumer(id);
    }

    /// Marks a provider online or offline on the primary.
    ///
    /// # Errors
    ///
    /// Unknown provider, or a replication-stream gap on the standby sync.
    pub fn set_provider_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        self.primary
            .mediator_mut()
            .set_provider_online(id, online)?;
        self.sync().map(|_| ())
    }

    /// Updates a provider's load state on the primary.
    ///
    /// # Errors
    ///
    /// Unknown provider, or a replication-stream gap on the standby sync.
    pub fn update_provider_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        self.primary
            .mediator_mut()
            .update_provider_load(id, utilization, queue_length)?;
        self.sync().map(|_| ())
    }

    /// Mediates one query on the primary, journaling it on the standby
    /// first (at the current log watermark, so promotion replays it at
    /// exactly this position between deltas). With a
    /// [degradation ladder](ReplicatedShard::enable_degradation) armed the
    /// query passes admission control first; its verdict — tier or shed —
    /// is journaled alongside it, so promotion reproduces the overload
    /// decisions byte-identically instead of re-running admission.
    ///
    /// # Errors
    ///
    /// Starvation from the primary, [`SbqaError::QueryShed`] when admission
    /// control rejects the query, or a replication gap from the standby
    /// sync (in which case the query was neither journaled nor mediated).
    pub fn submit_with_start(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
        start: Instant,
    ) -> SbqaResult<&AllocationDecision> {
        self.sync()?;
        let Some(ladder) = &mut self.ladder else {
            self.standby.observe_query(query);
            return self.primary.submit_with_start(query, oracle, start);
        };
        match ladder.observe_arrival(query.issued_at) {
            Admission::Shed => {
                self.standby
                    .observe_query_with(query, QueryDisposition::Shed);
                self.primary.record_shed(start);
                Err(SbqaError::QueryShed { query: query.id })
            }
            Admission::Admit(tier) => {
                self.standby
                    .observe_query_with(query, QueryDisposition::Mediated(tier));
                self.primary.mediator_mut().set_degradation_tier(tier);
                self.primary.submit_with_start(query, oracle, start)
            }
        }
    }

    /// Cuts a fresh checkpoint from the live primary into the standby and
    /// prunes the delta log up to the cut: the standby's replay window
    /// restarts empty, and the log retains only the snapshot mark.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] if the primary's technique lost
    /// fork support (cannot happen for shards built via
    /// [`ReplicatedShard::new`]), or a replication gap on the standby sync.
    pub fn checkpoint(&mut self) -> SbqaResult<()> {
        self.sync()?;
        let (allocator, providers, satisfaction) =
            self.primary.mediator().fork_state().ok_or_else(|| {
                SbqaError::InvalidConfiguration {
                    reason: "primary's allocation technique cannot be checkpointed".to_string(),
                }
            })?;
        let watermark = self.log.last_sequence();
        self.log.mark_snapshot();
        self.standby
            .install_checkpoint(allocator, providers, satisfaction, watermark);
        self.log.prune_through(watermark);
        // Let the standby observe the snapshot mark itself, so a freshly
        // checkpointed shard reports zero replay lag.
        self.sync().map(|_| ())
    }

    /// Kills the primary and promotes the standby: the primary is dropped —
    /// its registry, satisfaction state and RNG are gone — the standby
    /// replays its checkpoint + tail + journal into a fresh mediator, and
    /// replication is re-armed around it (new log, new bootstrap
    /// checkpoint). Latency/cache instrumentation restarts with the new
    /// primary; the decision stream continues byte-identically.
    ///
    /// # Errors
    ///
    /// Replay errors from promotion (a corrupt tail), or re-arming errors.
    pub fn promote(self, oracle: &dyn IntentionOracle) -> SbqaResult<(Self, ReplayReport)> {
        let Self {
            index,
            primary,
            log,
            mut standby,
            promotions,
            ladder,
        } = self;
        // The crash: the live mediator is dropped wholesale.
        drop(primary);
        standby.catch_up(&log)?;
        let (mediator, report) = standby.promote(oracle)?;
        let mut promoted = Self::new(index, mediator)?;
        promoted.promotions = promotions + 1;
        if let Some(ladder) = ladder {
            // The ladder survives the crash: re-seat it (and the shrink-tier
            // floor, which re-arming reset) around the promoted mediator.
            let floor = ladder.config().floor_kn;
            promoted.primary.mediator_mut().set_degraded_kn_floor(floor);
            promoted.standby.set_degraded_floor(floor);
            promoted.ladder = Some(ladder);
        }
        Ok((promoted, report))
    }

    /// `true` if the standby's mirror registry is byte-identical (slab
    /// layout, load columns, online flags) to the live primary's registry
    /// right now.
    #[must_use]
    pub fn mirror_in_lockstep(&self) -> bool {
        registry_digest(self.primary.mediator().providers()) == self.standby.mirror_digest()
    }

    /// The shard's replication counters.
    #[must_use]
    pub fn replication_stats(&self) -> ReplicationStats {
        let last_appended = self.log.last_sequence();
        let last_applied = self.standby.applied();
        ReplicationStats {
            log_depth: self.log.depth(),
            last_appended,
            last_applied,
            replay_lag: last_appended.saturating_sub(last_applied),
            tail_depth: self.standby.tail_depth(),
            journal_depth: self.standby.journal_depth(),
            checkpoints: self.standby.checkpoints(),
            promotions: self.promotions,
        }
    }
}

/// A sharded mediation service with a standby behind every shard.
///
/// Mirrors the [`ShardedMediator`](crate::ShardedMediator) surface —
/// deterministic routing, merged-order batch processing — and adds crash
/// orchestration: [`ReplicatedMediator::crash_shard`] kills a primary
/// mid-run and promotes its standby without disturbing the other shards.
/// Checkpoints are cut automatically every
/// [`checkpoint interval`](ReplicatedMediator::set_checkpoint_interval)
/// batches (at batch boundaries, so a cut never splits a mediation).
#[derive(Debug)]
pub struct ReplicatedMediator {
    router: ShardRouter,
    shards: Vec<ReplicatedShard>,
    /// Reused batch-position permutation for the merged processing order.
    order_scratch: Vec<u32>,
    /// Cumulative per-shard tallies, surviving promotions (the crashed
    /// primary's in-memory tallies die with it).
    tallies: Vec<BatchReport>,
    batches: u64,
    checkpoint_interval: u64,
}

impl ReplicatedMediator {
    /// Builds a replicated service of `shards` shards (raised to 1 if 0);
    /// `make` is called once per shard index to construct its mediator.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] when a mediator's technique
    /// cannot be checkpointed (see [`ReplicatedShard::new`]).
    pub fn new<F>(shards: usize, seed: u64, mut make: F) -> SbqaResult<Self>
    where
        F: FnMut(usize) -> Mediator,
    {
        let router = ShardRouter::new(shards, seed);
        let mut built = Vec::with_capacity(router.shards());
        for index in 0..router.shards() {
            built.push(ReplicatedShard::new(index, make(index))?);
        }
        let tallies = vec![BatchReport::default(); built.len()];
        Ok(Self {
            router,
            shards: built,
            order_scratch: Vec::new(),
            tallies,
            batches: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        })
    }

    /// Builds a replicated SbQA service; shard `i` hosts an allocator
    /// seeded with `seed + i`, exactly like
    /// [`ShardedMediator::sbqa`](crate::ShardedMediator::sbqa).
    ///
    /// # Errors
    ///
    /// Configuration validation errors, or arming errors from
    /// [`ReplicatedShard::new`].
    pub fn sbqa(config: SystemConfig, seed: u64, shards: usize) -> SbqaResult<Self> {
        config.validate()?;
        let mut built = Vec::new();
        for index in 0..shards.max(1) {
            built.push(Mediator::sbqa(
                config.clone(),
                seed.wrapping_add(index as u64),
            )?);
        }
        let mut mediators = built.into_iter();
        Self::new(shards, seed, |_| {
            // sbqa-lint: allow(panic-hygiene, "builder produced exactly one mediator per shard two lines above")
            mediators.next().expect("one mediator per shard")
        })
    }

    /// The deterministic router assigning providers and queries to shards.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One replicated shard.
    #[must_use]
    pub fn shard(&self, index: usize) -> &ReplicatedShard {
        &self.shards[index]
    }

    /// Arms overload admission control on every shard. Each shard gets its
    /// own ladder instance (depth is per-shard, like the registry slice),
    /// and every admission verdict is journaled for byte-identical failover.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] for an invalid ladder config.
    pub fn enable_degradation(&mut self, config: DegradationConfig) -> SbqaResult<()> {
        for shard in &mut self.shards {
            shard.enable_degradation(config)?;
        }
        Ok(())
    }

    /// Sets how many batches elapse between automatic checkpoints
    /// (0 disables automatic checkpointing; promotion then replays the
    /// whole run since the bootstrap checkpoint).
    pub fn set_checkpoint_interval(&mut self, batches: u64) {
        self.checkpoint_interval = batches;
    }

    /// Registers a provider with its owning shard; returns the shard index.
    ///
    /// # Errors
    ///
    /// Replication-stream gap errors from the owning shard's standby sync.
    pub fn register_provider(
        &mut self,
        id: ProviderId,
        capabilities: CapabilitySet,
        capacity: f64,
    ) -> SbqaResult<usize> {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard].register_provider(id, capabilities, capacity)?;
        Ok(shard)
    }

    /// Registers a consumer with every shard (and every standby).
    pub fn register_consumer(&mut self, id: ConsumerId) {
        for shard in &mut self.shards {
            shard.register_consumer(id);
        }
    }

    /// Marks a provider online or offline at its owning shard.
    ///
    /// # Errors
    ///
    /// Unknown provider, or a standby-sync gap.
    pub fn set_provider_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard].set_provider_online(id, online)
    }

    /// Updates a provider's load state at its owning shard.
    ///
    /// # Errors
    ///
    /// Unknown provider, or a standby-sync gap.
    pub fn update_provider_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        let shard = self.router.shard_of_provider(id);
        self.shards[shard].update_provider_load(id, utilization, queue_length)
    }

    /// Total number of registered providers across all primaries.
    #[must_use]
    pub fn provider_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.primary().mediator().providers().len())
            .sum()
    }

    /// Drains a batch in merged `(VirtualTime, QueryId)` order, exactly like
    /// [`ShardedMediator::submit_batch`](crate::ShardedMediator::submit_batch),
    /// journaling every query on its shard's standby before mediating it.
    /// Cuts a checkpoint on every shard at the configured batch cadence.
    ///
    /// # Errors
    ///
    /// Standby-sync or checkpoint errors; per-query starvation is reported
    /// through `on_result`, not as an error.
    pub fn submit_batch<F>(
        &mut self,
        queries: &[Query],
        oracle: &dyn IntentionOracle,
        mut on_result: F,
    ) -> SbqaResult<BatchReport>
    where
        F: FnMut(usize, &Query, SbqaResult<&AllocationDecision>),
    {
        self.order_scratch.clear();
        self.order_scratch
            // sbqa-lint: allow(panic-hygiene, "batch length is bounded by the ingest queue, far below u32::MAX")
            .extend(0..u32::try_from(queries.len()).expect("batch fits in u32"));
        self.order_scratch
            .sort_by_key(|&pos| (queries[pos as usize].issued_at, queries[pos as usize].id));

        let mut report = BatchReport::default();
        for &pos in &self.order_scratch {
            let query = &queries[pos as usize];
            let shard = self.router.shard_of_query(query.id);
            // sbqa-lint: allow(wall-clock, "latency stamp only; allocation reads VirtualTime")
            let start = Instant::now();
            let result = self.shards[shard].submit_with_start(query, oracle, start);
            if let Err(SbqaError::InvalidConfiguration { reason }) = &result {
                // A replication gap, not a starvation: abort the batch.
                return Err(SbqaError::InvalidConfiguration {
                    reason: reason.clone(),
                });
            }
            match &result {
                Ok(_) => {
                    report.mediated += 1;
                    self.tallies[shard].mediated += 1;
                }
                // A shed is neither mediated nor starved: it is counted in
                // the shard ladder's `DegradationStats` and surfaced to the
                // caller through `on_result`.
                Err(SbqaError::QueryShed { .. }) => {}
                Err(_) => {
                    report.starved += 1;
                    self.tallies[shard].starved += 1;
                }
            }
            on_result(pos as usize, query, result);
        }

        self.batches += 1;
        if self.checkpoint_interval > 0 && self.batches.is_multiple_of(self.checkpoint_interval) {
            self.checkpoint_all()?;
        }
        Ok(report)
    }

    /// Cuts a checkpoint on every shard now.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`ReplicatedShard::checkpoint`] error.
    pub fn checkpoint_all(&mut self) -> SbqaResult<()> {
        for shard in &mut self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// Kills shard `index`'s primary and promotes its standby in place (the
    /// other shards are untouched). Returns the promotion's replay tallies.
    ///
    /// # Errors
    ///
    /// Promotion replay errors (see [`ReplicatedShard::promote`]).
    pub fn crash_shard(
        &mut self,
        index: usize,
        oracle: &dyn IntentionOracle,
    ) -> SbqaResult<ReplayReport> {
        let shard = self.shards.remove(index);
        let (promoted, report) = shard.promote(oracle)?;
        self.shards.insert(index, promoted);
        Ok(report)
    }

    /// `true` if every shard's standby mirror is byte-identical to its live
    /// primary registry.
    #[must_use]
    pub fn mirrors_in_lockstep(&self) -> bool {
        self.shards.iter().all(ReplicatedShard::mirror_in_lockstep)
    }

    /// Snapshots every shard's view: cumulative tallies (surviving
    /// promotions), the current primary's latency/cache instrumentation and
    /// the shard's replication counters.
    #[must_use]
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .zip(&self.tallies)
            .map(|(shard, tally)| {
                let mut snapshot = shard.primary().report_snapshot();
                snapshot.report = *tally;
                snapshot.replication = Some(shard.replication_stats());
                // The ladder lives on the replicated shard (it survives
                // promotions), not on the primary the snapshot came from.
                snapshot.degradation = shard.ladder().map(DegradationLadder::stats);
                snapshot
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::StaticIntentions;
    use sbqa_types::{Capability, Intention, QueryId, VirtualTime};

    fn caps(class: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(class))
    }

    fn query(id: u64, at: f64) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .issued_at(VirtualTime::new(at))
            .build()
    }

    fn oracle() -> StaticIntentions {
        StaticIntentions::new().with_defaults(Intention::new(0.6), Intention::new(0.4))
    }

    fn replicated(shards: usize) -> ReplicatedMediator {
        let mut service =
            ReplicatedMediator::sbqa(SystemConfig::default().with_knbest(8, 3), 42, shards)
                .unwrap();
        for p in 0..24u64 {
            service
                .register_provider(ProviderId::new(p), caps(0), 1.0)
                .unwrap();
        }
        service.register_consumer(ConsumerId::new(1));
        service
    }

    #[test]
    fn mirrors_stay_in_lockstep_through_churn() {
        let mut service = replicated(2);
        assert!(service.mirrors_in_lockstep());
        service
            .update_provider_load(ProviderId::new(3), 2.0, 4)
            .unwrap();
        service
            .set_provider_online(ProviderId::new(5), false)
            .unwrap();
        assert!(service.mirrors_in_lockstep());
        let stats = service.shard(0).replication_stats();
        assert_eq!(stats.replay_lag, 0);
    }

    #[test]
    fn promoted_shard_continues_byte_identically() {
        let oracle = oracle();
        let mut crashed = replicated(2);
        let mut baseline = replicated(2);

        let stream: Vec<Query> = (0..120u64).map(|i| query(i, i as f64 * 0.1)).collect();
        let mut crashed_outcomes = Vec::new();
        let mut baseline_outcomes = Vec::new();

        for (round, chunk) in stream.chunks(30).enumerate() {
            if round == 2 {
                // Kill shard 0 mid-run; its standby takes over.
                crashed.crash_shard(0, &oracle).unwrap();
            }
            crashed
                .submit_batch(chunk, &oracle, |_, q, r| {
                    crashed_outcomes.push((q.id, r.map(|d| d.selected.clone()).ok()));
                })
                .unwrap();
            baseline
                .submit_batch(chunk, &oracle, |_, q, r| {
                    baseline_outcomes.push((q.id, r.map(|d| d.selected.clone()).ok()));
                })
                .unwrap();
        }

        assert_eq!(crashed_outcomes, baseline_outcomes);
        assert_eq!(service_promotions(&crashed), 1);
        assert!(crashed.mirrors_in_lockstep());
    }

    fn service_promotions(service: &ReplicatedMediator) -> u64 {
        (0..service.shard_count())
            .map(|i| service.shard(i).replication_stats().promotions)
            .sum()
    }

    #[test]
    fn reports_carry_replication_counters() {
        let mut service = replicated(2);
        let stream: Vec<Query> = (0..40u64).map(|i| query(i, i as f64 * 0.1)).collect();
        service
            .submit_batch(&stream, &oracle(), |_, _, _| {})
            .unwrap();
        let reports = service.shard_reports();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            let stats = report.replication.expect("replicated shard");
            assert_eq!(stats.replay_lag, 0);
            assert!(stats.checkpoints >= 1);
        }
        let total: usize = reports.iter().map(|r| r.report.submitted()).sum();
        assert_eq!(total, 40);
    }
}
