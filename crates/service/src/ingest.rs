//! The asynchronous ingest front.
//!
//! [`MediationService`] turns a [`ShardedMediator`] into a running service:
//! each shard moves into its own **mediation thread** behind a per-shard
//! mpsc **ingest queue** (std `std::sync::mpsc` — no external runtime).
//! Producers enqueue queries (singly or in batches) without blocking on
//! mediation; each shard thread drains its queue chunk by chunk through the
//! shard's instrumented submit path and accumulates the outcome stream.
//! [`MediationService::finish`] closes the queues, joins the threads and
//! merges the per-shard results into a [`ServiceReport`].
//!
//! ## Latency semantics
//!
//! Every query is stamped with a wall-clock [`Instant`] *at enqueue time*;
//! its latency sample spans enqueue → decision, so it includes the time
//! spent waiting in the ingest queue. Enqueueing in larger chunks amortizes
//! channel traffic but makes early-chunk queries wait on late-chunk ones —
//! exactly the batch-size/latency trade-off the `service` bench sweeps.
//!
//! ## Determinism
//!
//! Per shard, queries are mediated in queue (FIFO) order, so with a single
//! producer the per-shard decision streams — and the merged
//! `(VirtualTime, QueryId)`-ordered outcome stream — are byte-stable across
//! runs for a fixed seed, no matter how the shard threads interleave in wall
//! time. (Latency *samples* are wall-clock measurements and naturally vary;
//! determinism is about decisions.) With multiple racing producers the
//! per-shard arrival order itself becomes nondeterministic; byte-stability
//! then requires the producers to agree on an enqueue order.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sbqa_core::allocator::IntentionOracle;

use crate::report::{OutcomeRecord, ServiceReport};
use crate::router::ShardRouter;
use crate::shard::MediatorShard;
use crate::sharded::ShardedMediator;

/// A query travelling through an ingest queue with its enqueue timestamp.
struct Envelope {
    query: sbqa_types::Query,
    enqueued: Instant,
}

/// What a shard thread hands back when its queue closes.
struct ShardResult {
    shard: MediatorShard,
    outcomes: Vec<OutcomeRecord>,
}

/// A running sharded mediation service: per-shard ingest queues in front of
/// per-shard mediation threads.
pub struct MediationService {
    router: ShardRouter,
    senders: Vec<Sender<Vec<Envelope>>>,
    workers: Vec<JoinHandle<ShardResult>>,
    /// Per-shard staging buffers reused by [`MediationService::enqueue_batch`].
    staging: Vec<Vec<Envelope>>,
    enqueued: usize,
    started: Instant,
}

impl MediationService {
    /// Spawns one mediation thread per shard of `service`, each behind its
    /// own ingest queue. The oracle is shared by all shards (in a real
    /// deployment it is the network asking participants for intentions; here
    /// it must be thread-safe).
    #[must_use]
    pub fn spawn(service: ShardedMediator, oracle: Arc<dyn IntentionOracle + Send + Sync>) -> Self {
        let (router, shards) = service.into_shards();
        let mut senders = Vec::with_capacity(shards.len());
        let mut workers = Vec::with_capacity(shards.len());
        let mut staging = Vec::with_capacity(shards.len());
        for shard in shards {
            let (sender, receiver) = channel::<Vec<Envelope>>();
            let oracle = Arc::clone(&oracle);
            workers.push(std::thread::spawn(move || {
                drain(shard, &receiver, &*oracle)
            }));
            senders.push(sender);
            staging.push(Vec::new());
        }
        Self {
            router,
            senders,
            workers,
            staging,
            enqueued: 0,
            // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
            started: Instant::now(),
        }
    }

    /// The router assigning queries to shard queues.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shard queues.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Number of queries enqueued so far.
    #[must_use]
    pub fn enqueued(&self) -> usize {
        self.enqueued
    }

    /// Enqueues one query on its assigned shard's queue. Never blocks on
    /// mediation.
    ///
    /// # Panics
    /// Panics if the shard's mediation thread has died (a shard panic is a
    /// service bug, not a recoverable condition).
    pub fn enqueue(&mut self, query: sbqa_types::Query) {
        let shard = self.router.shard_of_query(query.id);
        let envelope = Envelope {
            query,
            // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
            enqueued: Instant::now(),
        };
        self.senders[shard]
            .send(vec![envelope])
            // sbqa-lint: allow(panic-hygiene, "mediation threads outlive the queue by construction; a dead shard is unrecoverable")
            .expect("shard mediation thread is alive");
        self.enqueued += 1;
    }

    /// Enqueues a batch: queries are split by assigned shard (preserving
    /// their relative order) and each shard receives its sub-batch as one
    /// queue message, so the whole chunk costs one channel send per involved
    /// shard. All queries of the batch share one enqueue timestamp.
    ///
    /// # Panics
    /// Panics if a shard's mediation thread has died.
    pub fn enqueue_batch(&mut self, queries: impl IntoIterator<Item = sbqa_types::Query>) {
        // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
        let enqueued = Instant::now();
        for query in queries {
            let shard = self.router.shard_of_query(query.id);
            self.staging[shard].push(Envelope { query, enqueued });
            self.enqueued += 1;
        }
        for (shard, staged) in self.staging.iter_mut().enumerate() {
            if !staged.is_empty() {
                self.senders[shard]
                    .send(std::mem::take(staged))
                    // sbqa-lint: allow(panic-hygiene, "mediation threads outlive the queue by construction; a dead shard is unrecoverable")
                    .expect("shard mediation thread is alive");
            }
        }
    }

    /// Closes the ingest queues, waits for every shard to drain dry, and
    /// merges the per-shard results — outcomes ordered by
    /// `(VirtualTime, QueryId)` — returning the shards alongside so a caller
    /// can keep mediating synchronously or respawn.
    ///
    /// # Panics
    /// Propagates a panic from any shard mediation thread.
    #[must_use]
    pub fn finish_with_shards(self) -> (ServiceReport, Vec<MediatorShard>) {
        // Dropping the senders closes every queue; each worker drains what
        // is left and returns.
        drop(self.senders);
        let mut shard_reports = Vec::with_capacity(self.workers.len());
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut outcomes = Vec::with_capacity(self.enqueued);
        for worker in self.workers {
            // sbqa-lint: allow(panic-hygiene, "propagates a shard thread panic at shutdown instead of silently dropping outcomes")
            let result = worker.join().expect("shard mediation thread panicked");
            shard_reports.push(result.shard.report_snapshot());
            outcomes.extend(result.outcomes);
            shards.push(result.shard);
        }
        let wall = self.started.elapsed();
        (ServiceReport::merge(shard_reports, outcomes, wall), shards)
    }

    /// [`MediationService::finish_with_shards`], discarding the shards.
    #[must_use]
    pub fn finish(self) -> ServiceReport {
        self.finish_with_shards().0
    }
}

impl std::fmt::Debug for MediationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediationService")
            .field("shards", &self.senders.len())
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

/// A shard thread's life: drain envelope chunks until the queue closes.
fn drain(
    mut shard: MediatorShard,
    receiver: &Receiver<Vec<Envelope>>,
    oracle: &dyn IntentionOracle,
) -> ShardResult {
    let mut outcomes = Vec::new();
    while let Ok(chunk) = receiver.recv() {
        // Chunk boundary = this front's batch boundary: one adaptation
        // round per received chunk (a no-op without a controller). With
        // adaptation enabled the ingest chunking therefore *is* the
        // adaptation cadence — producers that need decisions independent of
        // chunk size keep adaptation off.
        shard.mediator_mut().adapt_kn();
        for envelope in &chunk {
            let query = &envelope.query;
            let result = shard.submit_with_start(query, oracle, envelope.enqueued);
            let (selected, starved) = match result {
                Ok(decision) => (decision.selected.clone(), false),
                Err(_) => (Vec::new(), true),
            };
            outcomes.push(OutcomeRecord {
                shard: shard.index(),
                query: query.id,
                consumer: query.consumer,
                issued_at: query.issued_at,
                selected,
                starved,
            });
        }
    }
    ShardResult { shard, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::StaticIntentions;
    use sbqa_types::{
        Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
        VirtualTime,
    };

    fn build_service(shards: usize, providers: u64) -> ShardedMediator {
        let mut service =
            ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 42, shards).unwrap();
        for p in 0..providers {
            service.register_provider(
                ProviderId::new(p),
                CapabilitySet::singleton(Capability::new((p % 2) as u8)),
                1.0,
            );
        }
        service.register_consumer(ConsumerId::new(1));
        service
    }

    fn query(id: u64) -> Query {
        Query::builder(
            QueryId::new(id),
            ConsumerId::new(1),
            Capability::new((id % 2) as u8),
        )
        .issued_at(VirtualTime::new(id as f64))
        .build()
    }

    fn oracle() -> Arc<dyn IntentionOracle + Send + Sync> {
        Arc::new(StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6)))
    }

    #[test]
    fn service_drains_everything_and_merges_in_order() {
        let mut running = MediationService::spawn(build_service(3, 30), oracle());
        assert_eq!(running.shard_count(), 3);

        // A mix of single enqueues and chunked batches.
        for id in 0..10u64 {
            running.enqueue(query(id));
        }
        running.enqueue_batch((10..64).map(query));
        assert_eq!(running.enqueued(), 64);
        assert!(format!("{running:?}").contains("enqueued"));

        let report = running.finish();
        assert_eq!(report.total.submitted(), 64);
        assert_eq!(report.total.starved, 0);
        assert_eq!(report.outcomes.len(), 64);
        // Outcomes come back in (issued_at, id) order regardless of which
        // shard thread finished first.
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.query.raw()).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        // Every query has a latency sample somewhere.
        assert_eq!(report.aggregate_latency().count(), 64);
        assert!(report.throughput_per_sec() > 0.0);
        // Per-shard tallies add up to the total.
        let sum: usize = report.shards.iter().map(|s| s.report.submitted()).sum();
        assert_eq!(sum, 64);
    }

    #[test]
    fn starvation_is_reported_not_fatal() {
        // Providers only advertise class 0; odd queries (class 1) starve.
        let mut service =
            ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 7, 2).unwrap();
        for p in 0..10u64 {
            service.register_provider(
                ProviderId::new(p),
                CapabilitySet::singleton(Capability::new(0)),
                1.0,
            );
        }
        service.register_consumer(ConsumerId::new(1));
        let mut running = MediationService::spawn(service, oracle());
        running.enqueue_batch((0..20).map(query));
        let report = running.finish();
        assert_eq!(report.total.mediated, 10);
        assert_eq!(report.total.starved, 10);
        let starved: Vec<u64> = report
            .outcomes
            .iter()
            .filter(|o| o.starved)
            .map(|o| o.query.raw())
            .collect();
        assert_eq!(
            starved,
            (0..20).filter(|id| id % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn finish_with_shards_returns_reusable_mediators() {
        let mut running = MediationService::spawn(build_service(2, 20), oracle());
        running.enqueue_batch((0..16).map(query));
        let (report, mut shards) = running.finish_with_shards();
        assert_eq!(report.total.submitted(), 16);
        assert_eq!(shards.len(), 2);
        // The shards keep their registries and can mediate synchronously.
        let total_providers: usize = shards.iter().map(|s| s.mediator().providers().len()).sum();
        assert_eq!(total_providers, 20);
        let q = query(100);
        let static_oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6));
        let any_ok = shards
            .iter_mut()
            .any(|s| s.submit_timed(&q, &static_oracle).is_ok());
        assert!(any_ok);
    }
}
