//! The asynchronous ingest front.
//!
//! [`MediationService`] turns a [`ShardedMediator`] into a running service:
//! each shard moves into its own **mediation thread** behind a per-shard
//! **bounded ingest ring** ([`BoundedRing`] — no external runtime).
//! Producers enqueue queries (singly or in batches) and only block when a
//! shard's ring is full; each shard thread drains its ring in waves through
//! the shard's instrumented submit path and accumulates the outcome stream.
//! [`MediationService::finish`] closes the rings, joins the threads and
//! merges the per-shard results into a [`ServiceReport`].
//!
//! ## Back-pressure and the degradation ladder
//!
//! The seed's unbounded mpsc queues had defined behavior only below
//! saturation: a sustained overload step just grew the hot shard's queue
//! (7.9 s p99 at a 10× step) while every query still received full-quality
//! mediation, far too late to matter. [`IngestConfig`] replaces that with
//! two coupled mechanisms:
//!
//! * the **bounded ring** ([`IngestConfig::ring_capacity`]) bounds the
//!   physical queue, so wall-clock queue wait — and with it ingest-to-
//!   decision latency — is capped at roughly `capacity / drain-rate`;
//! * the **degradation ladder** ([`IngestConfig::degradation`], a
//!   [`DegradationLadder`](sbqa_core::DegradationLadder) per shard) decides
//!   *deterministically* what to sacrifice as modeled pressure rises:
//!   shrink the KnBest exploration width toward the floor, fall back to a
//!   capacity-based allocation, and finally shed — in stable
//!   `(VirtualTime, QueryId)` order, so the shed set is byte-reproducible
//!   per seed and independent of chunk sizes and thread timing.
//!
//! Without a degradation config the service behaves exactly like the seed
//! (the default ring is large enough that sub-saturation workloads never
//! block), and each shard admits everything at full quality.
//!
//! ## Latency semantics
//!
//! Every query is stamped with a wall-clock [`Instant`] *at enqueue time*,
//! before any blocking push; its latency sample spans enqueue → decision
//! (or enqueue → shed), so it includes both the time spent blocked on a
//! full ring and the time waiting inside it. Enqueueing in larger chunks
//! amortizes ring traffic — the batch-size/latency trade-off the `service`
//! bench sweeps.
//!
//! ## Determinism
//!
//! Per shard, queries are mediated in ring (FIFO) order. The producer sorts
//! every per-shard sub-batch by `(issued_at, id)` before it enters the ring
//! — this fixes the seed's chunking wart, where a chunk enqueued out of
//! issue order inverted arrival order at the queue boundary and made the
//! drain order (and any order-sensitive admission policy) depend on how the
//! producer happened to chunk. With a single producer the per-shard drain
//! streams — and the merged `(VirtualTime, QueryId)`-ordered outcome stream
//! — are therefore byte-stable across runs for a fixed seed, no matter how
//! the shard threads interleave in wall time, and the degradation ladder's
//! tier transitions and shed decisions inherit that stability because they
//! are driven by the stream's own virtual time, never the wall clock.
//! (Latency *samples* are wall-clock measurements and naturally vary;
//! determinism is about decisions.) With multiple racing producers the
//! per-shard arrival order itself becomes nondeterministic; byte-stability
//! then requires the producers to agree on an enqueue order.
//!
//! Adaptive-`kn` keeps its producer-defined cadence: each enqueued chunk's
//! first envelope carries a chunk marker and the shard thread runs one
//! adaptation round when it meets one, so the cadence is independent of how
//! ring waves happen to slice the stream.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sbqa_core::allocator::IntentionOracle;
use sbqa_core::{Admission, DegradationConfig};
use sbqa_types::SbqaResult;

use crate::report::{OutcomeRecord, ServiceReport};
use crate::ring::BoundedRing;
use crate::router::ShardRouter;
use crate::shard::MediatorShard;
use crate::sharded::ShardedMediator;

/// Configuration of the ingest front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Capacity of each shard's ingest ring. Producers block once a ring is
    /// full. The default (65 536) is effectively "never block" for
    /// sub-saturation workloads, preserving the seed's behavior.
    pub ring_capacity: usize,
    /// Arms every shard with a degradation ladder; `None` (the default)
    /// admits everything at full quality.
    pub degradation: Option<DegradationConfig>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 65_536,
            degradation: None,
        }
    }
}

/// A query travelling through an ingest ring with its enqueue timestamp.
struct Envelope {
    query: sbqa_types::Query,
    enqueued: Instant,
    /// `true` on the first envelope of a producer chunk: the shard thread
    /// runs one adaptive-`kn` round when it meets one, keeping the
    /// adaptation cadence producer-defined (and deterministic) even though
    /// the ring delivers envelopes in wall-clock-sized waves.
    chunk_start: bool,
}

/// What a shard thread hands back when its ring closes.
struct ShardResult {
    shard: MediatorShard,
    outcomes: Vec<OutcomeRecord>,
}

/// A running sharded mediation service: per-shard bounded ingest rings in
/// front of per-shard mediation threads.
pub struct MediationService {
    router: ShardRouter,
    rings: Vec<Arc<BoundedRing<Envelope>>>,
    workers: Vec<JoinHandle<ShardResult>>,
    /// Per-shard staging buffers reused by [`MediationService::enqueue_batch`].
    staging: Vec<Vec<Envelope>>,
    enqueued: usize,
    started: Instant,
}

impl MediationService {
    /// Spawns one mediation thread per shard of `service` with the default
    /// [`IngestConfig`]: a large ring, no degradation — the seed's behavior.
    #[must_use]
    pub fn spawn(service: ShardedMediator, oracle: Arc<dyn IntentionOracle + Send + Sync>) -> Self {
        Self::spawn_with(service, oracle, IngestConfig::default())
            // sbqa-lint: allow(panic-hygiene, "the default IngestConfig carries no degradation config, the only fallible part of spawn_with")
            .expect("default ingest configuration is valid")
    }

    /// Spawns one mediation thread per shard of `service`, each behind its
    /// own bounded ingest ring, optionally armed with a degradation ladder.
    /// The oracle is shared by all shards (in a real deployment it is the
    /// network asking participants for intentions; here it must be
    /// thread-safe).
    pub fn spawn_with(
        service: ShardedMediator,
        oracle: Arc<dyn IntentionOracle + Send + Sync>,
        config: IngestConfig,
    ) -> SbqaResult<Self> {
        if let Some(degradation) = &config.degradation {
            degradation.validate()?;
        }
        let (router, shards) = service.into_shards();
        let mut rings = Vec::with_capacity(shards.len());
        let mut workers = Vec::with_capacity(shards.len());
        let mut staging = Vec::with_capacity(shards.len());
        for mut shard in shards {
            if let Some(degradation) = config.degradation {
                shard.enable_degradation(degradation)?;
            }
            let ring = Arc::new(BoundedRing::new(config.ring_capacity));
            let worker_ring = Arc::clone(&ring);
            let oracle = Arc::clone(&oracle);
            workers.push(std::thread::spawn(move || {
                drain(shard, &worker_ring, &*oracle)
            }));
            rings.push(ring);
            staging.push(Vec::new());
        }
        Ok(Self {
            router,
            rings,
            workers,
            staging,
            enqueued: 0,
            // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
            started: Instant::now(),
        })
    }

    /// The router assigning queries to shard rings.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shard rings.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.rings.len()
    }

    /// Number of queries enqueued so far.
    #[must_use]
    pub fn enqueued(&self) -> usize {
        self.enqueued
    }

    /// Enqueues one query on its assigned shard's ring, blocking while the
    /// ring is full (bounded back-pressure, never unbounded growth).
    ///
    /// # Panics
    /// Panics if the shard's mediation thread has died (a shard panic is a
    /// service bug, not a recoverable condition).
    pub fn enqueue(&mut self, query: sbqa_types::Query) {
        let shard = self.router.shard_of_query(query.id);
        let envelope = Envelope {
            query,
            // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
            enqueued: Instant::now(),
            chunk_start: true,
        };
        self.rings[shard]
            .push(envelope)
            // sbqa-lint: allow(panic-hygiene, "mediation threads outlive the ring by construction; a closed ring here is unrecoverable")
            .unwrap_or_else(|_| panic!("shard mediation ring closed early"));
        self.enqueued += 1;
    }

    /// Enqueues a batch: queries are split by assigned shard, each shard's
    /// sub-batch is sorted into stable `(issued_at, id)` order, and the
    /// envelopes enter the shard's ring in that order. The sort is what
    /// keeps the per-shard drain order — and everything keyed on it, like
    /// degradation-ladder admission — independent of how the producer
    /// chunked the stream. All queries of the batch share one enqueue
    /// timestamp; the call blocks while a target ring is full.
    ///
    /// # Panics
    /// Panics if a shard's mediation thread has died.
    pub fn enqueue_batch(&mut self, queries: impl IntoIterator<Item = sbqa_types::Query>) {
        // sbqa-lint: allow(wall-clock, "latency instrumentation only; enqueue stamps never influence allocation results")
        let enqueued = Instant::now();
        for query in queries {
            let shard = self.router.shard_of_query(query.id);
            self.staging[shard].push(Envelope {
                query,
                enqueued,
                chunk_start: false,
            });
            self.enqueued += 1;
        }
        for (shard, staged) in self.staging.iter_mut().enumerate() {
            if staged.is_empty() {
                continue;
            }
            // Stable drain order inside the chunk: issue time, then id.
            staged.sort_by_key(|envelope| (envelope.query.issued_at, envelope.query.id));
            staged[0].chunk_start = true;
            for envelope in staged.drain(..) {
                self.rings[shard]
                    .push(envelope)
                    // sbqa-lint: allow(panic-hygiene, "mediation threads outlive the ring by construction; a closed ring here is unrecoverable")
                    .unwrap_or_else(|_| panic!("shard mediation ring closed early"));
            }
        }
    }

    /// Closes the ingest rings, waits for every shard to drain dry, and
    /// merges the per-shard results — outcomes ordered by
    /// `(VirtualTime, QueryId)` — returning the shards alongside so a caller
    /// can keep mediating synchronously or respawn.
    ///
    /// # Panics
    /// Propagates a panic from any shard mediation thread.
    #[must_use]
    pub fn finish_with_shards(self) -> (ServiceReport, Vec<MediatorShard>) {
        // Closing the rings lets each worker drain what is left and return.
        for ring in &self.rings {
            ring.close();
        }
        let mut shard_reports = Vec::with_capacity(self.workers.len());
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut outcomes = Vec::with_capacity(self.enqueued);
        for worker in self.workers {
            // sbqa-lint: allow(panic-hygiene, "propagates a shard thread panic at shutdown instead of silently dropping outcomes")
            let result = worker.join().expect("shard mediation thread panicked");
            shard_reports.push(result.shard.report_snapshot());
            outcomes.extend(result.outcomes);
            shards.push(result.shard);
        }
        let wall = self.started.elapsed();
        (ServiceReport::merge(shard_reports, outcomes, wall), shards)
    }

    /// [`MediationService::finish_with_shards`], discarding the shards.
    #[must_use]
    pub fn finish(self) -> ServiceReport {
        self.finish_with_shards().0
    }
}

impl std::fmt::Debug for MediationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediationService")
            .field("shards", &self.rings.len())
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

/// A shard thread's life: drain ring waves until the ring closes. Envelopes
/// arrive in producer order (the ring is FIFO), so degradation-ladder
/// admission — which must see arrivals in `(issued_at, id)` order — runs
/// right here, one verdict per envelope, before any mediation.
fn drain(
    mut shard: MediatorShard,
    ring: &BoundedRing<Envelope>,
    oracle: &dyn IntentionOracle,
) -> ShardResult {
    let mut outcomes = Vec::new();
    let mut wave = Vec::new();
    while ring.pop_wave(&mut wave) {
        for envelope in wave.drain(..) {
            // Chunk boundary = this front's batch boundary: one adaptation
            // round per producer chunk (a no-op without a controller),
            // regardless of how ring waves slice the stream.
            if envelope.chunk_start {
                shard.mediator_mut().adapt_kn();
            }
            let query = &envelope.query;
            match shard.admit(query.issued_at) {
                Admission::Shed => {
                    shard.record_shed(envelope.enqueued);
                    outcomes.push(OutcomeRecord {
                        shard: shard.index(),
                        query: query.id,
                        consumer: query.consumer,
                        issued_at: query.issued_at,
                        selected: Vec::new(),
                        starved: false,
                        shed: true,
                    });
                }
                Admission::Admit(_) => {
                    let result = shard.submit_with_start(query, oracle, envelope.enqueued);
                    let (selected, starved) = match result {
                        Ok(decision) => (decision.selected.clone(), false),
                        Err(_) => (Vec::new(), true),
                    };
                    outcomes.push(OutcomeRecord {
                        shard: shard.index(),
                        query: query.id,
                        consumer: query.consumer,
                        issued_at: query.issued_at,
                        selected,
                        starved,
                        shed: false,
                    });
                }
            }
        }
    }
    ShardResult { shard, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::StaticIntentions;
    use sbqa_types::{
        Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
        VirtualTime,
    };

    fn build_service(shards: usize, providers: u64) -> ShardedMediator {
        let mut service =
            ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 42, shards).unwrap();
        for p in 0..providers {
            service.register_provider(
                ProviderId::new(p),
                CapabilitySet::singleton(Capability::new((p % 2) as u8)),
                1.0,
            );
        }
        service.register_consumer(ConsumerId::new(1));
        service
    }

    fn query(id: u64) -> Query {
        Query::builder(
            QueryId::new(id),
            ConsumerId::new(1),
            Capability::new((id % 2) as u8),
        )
        .issued_at(VirtualTime::new(id as f64))
        .build()
    }

    fn oracle() -> Arc<dyn IntentionOracle + Send + Sync> {
        Arc::new(StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6)))
    }

    #[test]
    fn service_drains_everything_and_merges_in_order() {
        let mut running = MediationService::spawn(build_service(3, 30), oracle());
        assert_eq!(running.shard_count(), 3);

        // A mix of single enqueues and chunked batches.
        for id in 0..10u64 {
            running.enqueue(query(id));
        }
        running.enqueue_batch((10..64).map(query));
        assert_eq!(running.enqueued(), 64);
        assert!(format!("{running:?}").contains("enqueued"));

        let report = running.finish();
        assert_eq!(report.total.submitted(), 64);
        assert_eq!(report.total.starved, 0);
        assert_eq!(report.outcomes.len(), 64);
        assert_eq!(report.shed(), 0, "no ladder, nothing shed");
        // Outcomes come back in (issued_at, id) order regardless of which
        // shard thread finished first.
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.query.raw()).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        // Every query has a latency sample somewhere.
        assert_eq!(report.aggregate_latency().count(), 64);
        assert!(report.throughput_per_sec() > 0.0);
        // Per-shard tallies add up to the total.
        let sum: usize = report.shards.iter().map(|s| s.report.submitted()).sum();
        assert_eq!(sum, 64);
    }

    #[test]
    fn starvation_is_reported_not_fatal() {
        // Providers only advertise class 0; odd queries (class 1) starve.
        let mut service =
            ShardedMediator::sbqa(SystemConfig::default().with_knbest(10, 3), 7, 2).unwrap();
        for p in 0..10u64 {
            service.register_provider(
                ProviderId::new(p),
                CapabilitySet::singleton(Capability::new(0)),
                1.0,
            );
        }
        service.register_consumer(ConsumerId::new(1));
        let mut running = MediationService::spawn(service, oracle());
        running.enqueue_batch((0..20).map(query));
        let report = running.finish();
        assert_eq!(report.total.mediated, 10);
        assert_eq!(report.total.starved, 10);
        let starved: Vec<u64> = report
            .outcomes
            .iter()
            .filter(|o| o.starved)
            .map(|o| o.query.raw())
            .collect();
        assert_eq!(
            starved,
            (0..20).filter(|id| id % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn finish_with_shards_returns_reusable_mediators() {
        let mut running = MediationService::spawn(build_service(2, 20), oracle());
        running.enqueue_batch((0..16).map(query));
        let (report, mut shards) = running.finish_with_shards();
        assert_eq!(report.total.submitted(), 16);
        assert_eq!(shards.len(), 2);
        // The shards keep their registries and can mediate synchronously.
        let total_providers: usize = shards.iter().map(|s| s.mediator().providers().len()).sum();
        assert_eq!(total_providers, 20);
        let q = query(100);
        let static_oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6));
        let any_ok = shards
            .iter_mut()
            .any(|s| s.submit_timed(&q, &static_oracle).is_ok());
        assert!(any_ok);
    }

    #[test]
    fn spawn_with_rejects_an_invalid_degradation_config() {
        let config = IngestConfig {
            ring_capacity: 64,
            degradation: Some(DegradationConfig {
                capacity: 0,
                ..DegradationConfig::default()
            }),
        };
        assert!(MediationService::spawn_with(build_service(2, 10), oracle(), config).is_err());
    }

    #[test]
    fn overloaded_service_sheds_deterministically_and_conserves_queries() {
        // 400 queries issued in a burst (all inside 0.4 virtual seconds)
        // against a drain model of 100/s and a modeled capacity of 50: the
        // ladder must engage and shed a deterministic suffix-heavy subset.
        let config = IngestConfig {
            ring_capacity: 32,
            degradation: Some(DegradationConfig {
                capacity: 50,
                drain_rate: 100.0,
                ..DegradationConfig::default()
            }),
        };
        let run = |chunk: usize| {
            let mut running =
                MediationService::spawn_with(build_service(2, 20), oracle(), config).unwrap();
            let stream: Vec<Query> = (0..400u64)
                .map(|id| {
                    Query::builder(
                        QueryId::new(id),
                        ConsumerId::new(1),
                        Capability::new((id % 2) as u8),
                    )
                    .issued_at(VirtualTime::new(id as f64 * 0.001))
                    .build()
                })
                .collect();
            for batch in stream.chunks(chunk) {
                running.enqueue_batch(batch.iter().cloned());
            }
            running.finish()
        };
        let report = run(64);
        let degradation = report.degradation_stats().unwrap();
        assert!(degradation.shed > 0, "the burst must overflow the model");
        assert_eq!(
            degradation.admitted() as usize,
            report.total.submitted(),
            "every admitted query is tallied"
        );
        assert_eq!(
            degradation.observed() as usize,
            400,
            "conservation: admitted + shed = enqueued"
        );
        assert_eq!(report.outcomes.len(), 400, "sheds appear in the stream");

        // Byte-identical decisions and shed set across runs and chunkings.
        let shed_set = |r: &ServiceReport| -> Vec<u64> {
            r.outcomes
                .iter()
                .filter(|o| o.shed)
                .map(|o| o.query.raw())
                .collect()
        };
        let outcome_set = |r: &ServiceReport| -> Vec<(u64, Vec<u64>, bool, bool)> {
            r.outcomes
                .iter()
                .map(|o| {
                    (
                        o.query.raw(),
                        o.selected.iter().map(|p| p.raw()).collect(),
                        o.starved,
                        o.shed,
                    )
                })
                .collect()
        };
        let again = run(64);
        assert_eq!(outcome_set(&report), outcome_set(&again));
        let rechunked = run(17);
        assert_eq!(
            shed_set(&report),
            shed_set(&rechunked),
            "the shed set is chunk-size independent"
        );
        assert_eq!(outcome_set(&report), outcome_set(&rechunked));
    }

    #[test]
    fn producer_chunk_order_is_normalized_at_the_ring() {
        // Enqueue a chunk in *reverse* issue order: the drain (and therefore
        // the decision stream) must match the sorted enqueue byte for byte —
        // the chunking-note fix.
        let run = |reverse: bool| {
            // One shard so every query lands in the same ring.
            let mut running = MediationService::spawn(build_service(1, 20), oracle());
            let mut ids: Vec<u64> = (0..40).collect();
            if reverse {
                ids.reverse();
            }
            running.enqueue_batch(ids.into_iter().map(query));
            running.finish()
        };
        let sorted = run(false);
        let reversed = run(true);
        let decisions = |r: &ServiceReport| -> Vec<(u64, Vec<u64>)> {
            r.outcomes
                .iter()
                .map(|o| (o.query.raw(), o.selected.iter().map(|p| p.raw()).collect()))
                .collect()
        };
        assert_eq!(decisions(&sorted), decisions(&reversed));
    }
}
