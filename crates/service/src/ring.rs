//! A bounded MPSC ring buffer for the ingest front.
//!
//! The seed's unbounded `std::sync::mpsc` queues gave the service defined
//! behavior only *below* saturation: past it, a hot shard's queue simply
//! grew (we measured 7.9 s p99 under a sustained 10× arrival step) and every
//! query eventually got full-quality mediation seconds too late.
//! [`BoundedRing`] is the physical back-pressure half of the fix: a
//! fixed-capacity FIFO where producers block once the ring is full, which
//! bounds the wall-clock time any admitted query can spend waiting.
//!
//! The ring is deliberately *dumb*: it preserves FIFO order, enforces
//! capacity, and nothing else. All degradation decisions (shrink-kn,
//! baseline fallback, shedding) are made by the deterministic
//! [`DegradationLadder`](sbqa_core::DegradationLadder) on the consumer side,
//! in producer order — wall-clock raciness in *when* the ring fills must
//! never leak into *what* the service decides.
//!
//! Implementation: a `Mutex<VecDeque>` with two condvars (`not_full`,
//! `not_empty`). Lock poisoning is impossible to exploit here — both sides
//! only mutate the deque under the lock and never panic mid-mutation — so
//! poisoned locks are recovered with `PoisonError::into_inner` rather than
//! propagated.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A blocking bounded FIFO queue: multiple producers, one consumer.
#[derive(Debug)]
pub struct BoundedRing<T> {
    inner: Mutex<RingInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
struct RingInner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedRing<T> {
    /// Creates a ring holding at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RingInner {
                queue: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until the ring has room, then enqueues `item`. Returns
    /// `Err(item)` if the ring was closed while waiting.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        while inner.queue.len() >= inner.capacity && !inner.closed {
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            return Err(item);
        }
        inner.queue.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` only if the ring has room right now. Returns
    /// `Err(item)` when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.queue.len() >= inner.capacity {
            return Err(item);
        }
        inner.queue.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues one item if any is ready, without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Blocks until at least one item is available (or the ring is closed),
    /// then drains *everything* currently queued into `buf` (cleared first).
    /// Returns `false` once the ring is closed and empty — the consumer's
    /// termination signal.
    pub fn pop_wave(&self, buf: &mut Vec<T>) -> bool {
        buf.clear();
        let mut inner = self.lock();
        while inner.queue.is_empty() && !inner.closed {
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.queue.is_empty() {
            return false; // closed and dry
        }
        buf.extend(inner.queue.drain(..));
        drop(inner);
        // A full wave frees many slots: wake every blocked producer.
        self.not_full.notify_all();
        true
    }

    /// Closes the ring: blocked producers fail their push, and the consumer
    /// drains what is left before [`BoundedRing::pop_wave`] returns `false`.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// `true` once [`BoundedRing::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let ring = BoundedRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert!(ring.try_push(99).is_err(), "full ring rejects try_push");
        let mut wave = Vec::new();
        assert!(ring.pop_wave(&mut wave));
        assert_eq!(wave, vec![0, 1, 2, 3]);
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = BoundedRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.try_push(7).unwrap();
        assert!(ring.try_push(8).is_err());
        assert_eq!(ring.try_pop(), Some(7));
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn close_unblocks_both_sides() {
        let ring: Arc<BoundedRing<u32>> = Arc::new(BoundedRing::new(1));
        ring.try_push(1).unwrap();

        // A producer blocked on a full ring fails its push once closed.
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2))
        };
        // A consumer drains the remaining item, then sees termination.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        assert_eq!(producer.join().unwrap(), Err(2));

        let mut wave = Vec::new();
        assert!(ring.pop_wave(&mut wave), "closed ring still drains");
        assert_eq!(wave, vec![1]);
        assert!(!ring.pop_wave(&mut wave), "closed and dry terminates");
    }

    #[test]
    fn blocking_push_waits_for_room() {
        let ring: Arc<BoundedRing<u32>> = Arc::new(BoundedRing::new(2));
        ring.push(0).unwrap();
        ring.push(1).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 2..10u32 {
                    ring.push(i).unwrap();
                }
            })
        };
        let mut drained = Vec::new();
        let mut wave = Vec::new();
        while drained.len() < 10 {
            assert!(ring.pop_wave(&mut wave));
            assert!(wave.len() <= 2, "a wave never exceeds capacity");
            drained.append(&mut wave);
        }
        producer.join().unwrap();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }
}
