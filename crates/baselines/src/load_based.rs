//! Shortest-queue-first allocation.
//!
//! A pure load-based baseline that ranks by *absolute* backlog (queue length,
//! then utilization), ignoring provider capacity. Contrasting it with the
//! capacity baseline isolates the effect of capacity-awareness on response
//! times, and it is the natural "join the shortest queue" strawman for the
//! ablation benches.

use sbqa_core::allocator::{
    AllocationDecision, CandidateBlock, Candidates, IntentionOracle, QueryAllocator,
};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{Query, SbqaError, SbqaResult};

use crate::{fill_baseline_decision, DEFAULT_CONSIDERATION};

/// Shortest-queue-first allocator.
#[derive(Debug, Clone)]
pub struct LoadBasedAllocator {
    consideration: usize,
    /// Candidate positions in rank order, reused across queries.
    order: Vec<u32>,
    /// Dense gather of the candidate set's scoring columns; the backlog
    /// comparator reads these instead of resolving view positions per
    /// comparison.
    block: CandidateBlock,
}

impl Default for LoadBasedAllocator {
    fn default() -> Self {
        Self {
            consideration: DEFAULT_CONSIDERATION,
            order: Vec::new(),
            block: CandidateBlock::new(),
        }
    }
}

impl LoadBasedAllocator {
    /// Creates a shortest-queue-first allocator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides how many providers are reported as considered per mediation.
    #[must_use]
    pub fn with_consideration(mut self, consideration: usize) -> Self {
        self.consideration = consideration.max(1);
        self
    }
}

impl QueryAllocator for LoadBasedAllocator {
    fn name(&self) -> &'static str {
        "LoadBased"
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }
        candidates.gather_all_into(&mut self.block);
        let queue_length = self.block.queue_length();
        let utilization = self.block.utilization();
        let ids = self.block.ids();
        let by_backlog = |&x: &u32, &y: &u32| {
            let (a, b) = (x as usize, y as usize);
            queue_length[a]
                .cmp(&queue_length[b])
                .then_with(|| sbqa_types::f64_total_cmp(utilization[a], utilization[b]))
                .then_with(|| ids[a].cmp(&ids[b]))
        };
        let selected_count = query.replication.min(candidates.len());
        let considered_len = self.consideration.max(selected_count).min(candidates.len());

        crate::rank_considered_prefix(
            &mut self.order,
            candidates.len(),
            considered_len,
            by_backlog,
        );
        fill_baseline_decision(
            query,
            candidates,
            &self.order[..considered_len],
            selected_count,
            oracle,
            None,
            decision,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, QueryId};

    fn query(replication: usize) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn snapshot(id: u64, queue: usize, utilization: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0,
            utilization,
            queue_length: queue,
            online: true,
        }
    }

    #[test]
    fn shortest_queue_wins() {
        let mut alloc = LoadBasedAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates = vec![
            snapshot(1, 5, 5.0),
            snapshot(2, 0, 0.0),
            snapshot(3, 2, 2.0),
        ];
        let decision = alloc
            .allocate(
                &query(2),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(2), ProviderId::new(3)]
        );
    }

    #[test]
    fn utilization_breaks_queue_ties() {
        let mut alloc = LoadBasedAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates = vec![snapshot(1, 1, 9.0), snapshot(2, 1, 0.5)];
        let decision = alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected, vec![ProviderId::new(2)]);
    }

    #[test]
    fn consideration_bounds_proposals() {
        let mut alloc = LoadBasedAllocator::new().with_consideration(3);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates: Vec<ProviderSnapshot> =
            (0..10).map(|i| snapshot(i, i as usize, i as f64)).collect();
        let decision = alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.proposals.len(), 3);
    }

    #[test]
    fn empty_candidates_error_and_name() {
        let mut alloc = LoadBasedAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction
            )
            .is_err());
        assert_eq!(alloc.name(), "LoadBased");
    }
}
