//! Uniformly random allocation.
//!
//! Not a technique from the paper, but a useful sanity baseline: it ignores
//! both load and interests, so any technique worth its salt should beat it on
//! response time, and its satisfaction profile shows what "pure chance"
//! fairness looks like.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sbqa_core::allocator::{AllocationDecision, IntentionOracle, ProviderSnapshot, QueryAllocator};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{ProviderId, Query, SbqaError, SbqaResult};

use crate::baseline_decision;

/// Random allocator: `q.n` providers drawn uniformly without replacement.
#[derive(Debug, Clone)]
pub struct RandomAllocator {
    rng: ChaCha8Rng,
}

impl RandomAllocator {
    /// Creates a random allocator with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl QueryAllocator for RandomAllocator {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[ProviderSnapshot],
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
    ) -> SbqaResult<AllocationDecision> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }
        let mut pool: Vec<ProviderSnapshot> = candidates.to_vec();
        pool.shuffle(&mut self.rng);
        pool.truncate(query.replication.min(candidates.len()));
        let selected: Vec<ProviderId> = pool.iter().map(|s| s.id).collect();
        Ok(baseline_decision(query, &pool, &selected, oracle, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::StaticIntentions;
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, QueryId};

    fn query(replication: usize) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn candidates(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), CapabilitySet::ALL, 1.0))
            .collect()
    }

    #[test]
    fn selects_exactly_replication_distinct_providers() {
        let mut alloc = RandomAllocator::new(1);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(&query(3), &candidates(10), &oracle, &satisfaction)
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
        let mut ids: Vec<u64> = decision.selected.iter().map(|p| p.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn replication_larger_than_population_selects_everyone() {
        let mut alloc = RandomAllocator::new(1);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(&query(10), &candidates(3), &oracle, &satisfaction)
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
    }

    #[test]
    fn same_seed_reproduces_choices() {
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let run = |seed: u64| {
            let mut alloc = RandomAllocator::new(seed);
            (0..20)
                .map(|_| {
                    alloc
                        .allocate(&query(1), &candidates(10), &oracle, &satisfaction)
                        .unwrap()
                        .selected[0]
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn spreads_selections_over_the_population() {
        let mut alloc = RandomAllocator::new(9);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let d = alloc
                .allocate(&query(1), &candidates(10), &oracle, &satisfaction)
                .unwrap();
            seen.insert(d.selected[0].raw());
        }
        assert!(seen.len() >= 8);
    }

    #[test]
    fn empty_candidates_error_and_name() {
        let mut alloc = RandomAllocator::new(0);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(&query(1), &[], &oracle, &satisfaction)
            .is_err());
        assert_eq!(alloc.name(), "Random");
    }
}
