//! Uniformly random allocation.
//!
//! Not a technique from the paper, but a useful sanity baseline: it ignores
//! both load and interests, so any technique worth its salt should beat it on
//! response time, and its satisfaction profile shows what "pure chance"
//! fairness looks like.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sbqa_core::allocator::{AllocationDecision, Candidates, IntentionOracle, QueryAllocator};
use sbqa_core::knbest::IndexPool;
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{Query, SbqaError, SbqaResult};

use crate::fill_baseline_decision;

/// Random allocator: `q.n` providers drawn uniformly without replacement.
#[derive(Debug, Clone)]
pub struct RandomAllocator {
    rng: ChaCha8Rng,
    /// O(q.n) draw scratch, reused across queries.
    pool: IndexPool,
}

impl RandomAllocator {
    /// Creates a random allocator with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            pool: IndexPool::new(),
        }
    }
}

impl QueryAllocator for RandomAllocator {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }
        let drawn = self
            .pool
            .draw(candidates.len(), query.replication, &mut self.rng);
        fill_baseline_decision(
            query,
            candidates,
            drawn,
            drawn.len(),
            oracle,
            None,
            decision,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, QueryId};

    fn query(replication: usize) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn candidates(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), CapabilitySet::ALL, 1.0))
            .collect()
    }

    #[test]
    fn selects_exactly_replication_distinct_providers() {
        let mut alloc = RandomAllocator::new(1);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(
                &query(3),
                Candidates::from_slice(&candidates(10)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
        let mut ids: Vec<u64> = decision.selected.iter().map(|p| p.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn replication_larger_than_population_selects_everyone() {
        let mut alloc = RandomAllocator::new(1);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(
                &query(10),
                Candidates::from_slice(&candidates(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
    }

    #[test]
    fn same_seed_reproduces_choices() {
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let run = |seed: u64| {
            let mut alloc = RandomAllocator::new(seed);
            (0..20)
                .map(|_| {
                    alloc
                        .allocate(
                            &query(1),
                            Candidates::from_slice(&candidates(10)),
                            &oracle,
                            &satisfaction,
                        )
                        .unwrap()
                        .selected[0]
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn spreads_selections_over_the_population() {
        let mut alloc = RandomAllocator::new(9);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let d = alloc
                .allocate(
                    &query(1),
                    Candidates::from_slice(&candidates(10)),
                    &oracle,
                    &satisfaction,
                )
                .unwrap();
            seen.insert(d.selected[0].raw());
        }
        assert!(seen.len() >= 8);
    }

    #[test]
    fn empty_candidates_error_and_name() {
        let mut alloc = RandomAllocator::new(0);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction
            )
            .is_err());
        assert_eq!(alloc.name(), "Random");
    }
}
