//! Allocator factory.
//!
//! The scenario harnesses describe which technique to run with an
//! [`AllocationPolicyKind`]; this module turns that description into a boxed
//! [`QueryAllocator`], so the simulator never needs to know the concrete
//! types.

use sbqa_core::{QueryAllocator, SbqaAllocator};
use sbqa_types::{AllocationPolicyKind, SbqaResult, SystemConfig};

use crate::capacity::CapacityAllocator;
use crate::economic::EconomicAllocator;
use crate::load_based::LoadBasedAllocator;
use crate::random_alloc::RandomAllocator;
use crate::round_robin::RoundRobinAllocator;

/// Builds the allocator for a policy kind.
///
/// `config` is used by SbQA (KnBest parameters, ε, ω policy) and by the
/// baselines for their consideration-window size (kept equal to SbQA's `kn`
/// so the satisfaction accounting is comparable across techniques). `seed`
/// feeds the techniques that use randomness (SbQA's KnBest draw and the
/// random baseline).
pub fn build_allocator(
    kind: AllocationPolicyKind,
    config: &SystemConfig,
    seed: u64,
) -> SbqaResult<Box<dyn QueryAllocator>> {
    config.validate()?;
    let consideration = config.knbest_kn;
    Ok(match kind {
        AllocationPolicyKind::SbQA => Box::new(SbqaAllocator::new(config.clone(), seed)?),
        AllocationPolicyKind::Capacity => {
            Box::new(CapacityAllocator::new().with_consideration(consideration))
        }
        AllocationPolicyKind::Economic => {
            Box::new(EconomicAllocator::new().with_consideration(consideration))
        }
        AllocationPolicyKind::Random => Box::new(RandomAllocator::new(seed)),
        AllocationPolicyKind::RoundRobin => Box::new(RoundRobinAllocator::new()),
        AllocationPolicyKind::LoadBased => {
            Box::new(LoadBasedAllocator::new().with_consideration(consideration))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_kind_builds_and_reports_its_label() {
        let config = SystemConfig::default();
        for kind in AllocationPolicyKind::all() {
            let allocator = build_allocator(kind, &config, 42).unwrap();
            assert_eq!(allocator.name(), kind.label());
        }
    }

    #[test]
    fn invalid_configuration_is_rejected_for_every_kind() {
        let bad = SystemConfig {
            knbest_kn: 10,
            knbest_k: 2,
            ..SystemConfig::default()
        };
        for kind in AllocationPolicyKind::all() {
            assert!(build_allocator(kind, &bad, 0).is_err());
        }
    }
}
