//! The Capacity-based baseline (\[9\] in the paper).
//!
//! This is how the paper characterises BOINC's own dispatch, and more
//! generally classic load-balancing allocation: the mediator sends a query to
//! the capable providers that currently have the most spare capacity,
//! ignoring everybody's interests. It is excellent at balancing load and at
//! keeping response times low in captive environments, which is exactly why
//! the paper uses it as the performance yardstick — and it is oblivious to
//! participant satisfaction, which is why it sheds volunteers in autonomous
//! environments.
//!
//! Ranking criterion: ascending *relative* utilization (`utilization /
//! capacity`), so a powerful provider with some backlog can still beat a weak
//! idle one — this mirrors BOINC's preference for hosts with more spare
//! computing power.

use sbqa_core::allocator::{
    AllocationDecision, CandidateBlock, Candidates, IntentionOracle, QueryAllocator,
};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{Query, SbqaError, SbqaResult};

use crate::{fill_baseline_decision, DEFAULT_CONSIDERATION};

/// Capacity-based allocator: least relative utilization first.
#[derive(Debug, Clone)]
pub struct CapacityAllocator {
    /// Number of providers reported as "considered" for satisfaction
    /// accounting (the technique's analogue of `Kn`).
    consideration: usize,
    /// Candidate positions in rank order, reused across queries.
    order: Vec<u32>,
    /// Dense gather of the candidate set's scoring columns: the ranking
    /// comparator reads these instead of resolving view positions per
    /// comparison.
    block: CandidateBlock,
}

impl Default for CapacityAllocator {
    fn default() -> Self {
        Self {
            consideration: DEFAULT_CONSIDERATION,
            order: Vec::new(),
            block: CandidateBlock::new(),
        }
    }
}

impl CapacityAllocator {
    /// Creates a capacity-based allocator with the default consideration
    /// window.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides how many providers are reported as considered per mediation.
    #[must_use]
    pub fn with_consideration(mut self, consideration: usize) -> Self {
        self.consideration = consideration.max(1);
        self
    }

    fn relative_utilization(utilization: f64, capacity: f64) -> f64 {
        if capacity > 0.0 {
            utilization / capacity
        } else {
            f64::INFINITY
        }
    }
}

impl QueryAllocator for CapacityAllocator {
    fn name(&self) -> &'static str {
        "Capacity"
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }

        candidates.gather_all_into(&mut self.block);
        let utilization = self.block.utilization();
        let capacity = self.block.capacity();
        let ids = self.block.ids();
        let by_spare_capacity = |&a: &u32, &b: &u32| {
            let (a, b) = (a as usize, b as usize);
            sbqa_types::f64_total_cmp(
                Self::relative_utilization(utilization[a], capacity[a]),
                Self::relative_utilization(utilization[b], capacity[b]),
            )
            .then_with(|| ids[a].cmp(&ids[b]))
        };
        let selected_count = query.replication.min(candidates.len());
        let considered_len = self.consideration.max(selected_count).min(candidates.len());

        crate::rank_considered_prefix(
            &mut self.order,
            candidates.len(),
            considered_len,
            by_spare_capacity,
        );
        fill_baseline_decision(
            query,
            candidates,
            &self.order[..considered_len],
            selected_count,
            oracle,
            None,
            decision,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, QueryId};

    fn query(replication: usize) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn snapshot(id: u64, utilization: f64, capacity: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity,
            utilization,
            queue_length: 0,
            online: true,
        }
    }

    #[test]
    fn selects_least_relatively_utilized_providers() {
        let mut alloc = CapacityAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates = vec![
            snapshot(1, 8.0, 1.0),  // relative 8.0
            snapshot(2, 8.0, 10.0), // relative 0.8
            snapshot(3, 0.5, 1.0),  // relative 0.5
        ];
        let decision = alloc
            .allocate(
                &query(2),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(3), ProviderId::new(2)]
        );
    }

    #[test]
    fn powerful_busy_provider_beats_weak_idle_one_only_when_relative_load_is_lower() {
        let mut alloc = CapacityAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        // Provider 1: utilization 2 over capacity 10 -> 0.2.
        // Provider 2: utilization 1 over capacity 1  -> 1.0.
        let candidates = vec![snapshot(1, 2.0, 10.0), snapshot(2, 1.0, 1.0)];
        let decision = alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn consideration_window_bounds_proposals() {
        let mut alloc = CapacityAllocator::new().with_consideration(2);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates: Vec<ProviderSnapshot> =
            (0..10).map(|i| snapshot(i, i as f64, 1.0)).collect();
        let decision = alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.proposals.len(), 2);
        assert_eq!(decision.selected.len(), 1);

        // Replication larger than the consideration window still reports every
        // selected provider as considered.
        let decision = alloc
            .allocate(
                &query(5),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 5);
        assert_eq!(decision.proposals.len(), 5);
    }

    #[test]
    fn empty_candidates_error() {
        let mut alloc = CapacityAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(
                &query(1),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction
            )
            .is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(CapacityAllocator::new().name(), "Capacity");
    }
}
