//! Round-robin allocation.
//!
//! A deterministic sanity baseline: providers take turns in id order,
//! regardless of load or interests. Perfectly even in query *counts*, blind
//! to provider heterogeneity (a slow volunteer receives as much work as a
//! fast one), which makes it a useful contrast for the load-balance metrics.

use sbqa_core::allocator::{
    AllocationDecision, CandidateBlock, Candidates, IntentionOracle, QueryAllocator,
};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{Query, SbqaError, SbqaResult};

use crate::fill_baseline_decision;

/// Round-robin allocator: cycles through capable providers in id order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinAllocator {
    cursor: u64,
    /// Candidate positions in ascending-id order, reused across queries.
    order: Vec<u32>,
    /// The ring slice handed to this query, reused across queries.
    turn: Vec<u32>,
    /// Dense gather of the candidate ids used to build the ring order.
    block: CandidateBlock,
}

impl RoundRobinAllocator {
    /// Creates a round-robin allocator starting at the first provider.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl QueryAllocator for RoundRobinAllocator {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }
        candidates.gather_all_into(&mut self.block);
        let ids = self.block.ids();
        self.order.clear();
        self.order.extend(0..candidates.len() as u32);
        self.order.sort_unstable_by_key(|&pos| ids[pos as usize]);

        let count = query.replication.min(self.order.len());
        let start = (self.cursor as usize) % self.order.len();
        self.turn.clear();
        for offset in 0..count {
            self.turn
                .push(self.order[(start + offset) % self.order.len()]);
        }
        self.cursor = self.cursor.wrapping_add(count as u64);

        fill_baseline_decision(query, candidates, &self.turn, count, oracle, None, decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, QueryId};

    fn query(id: u64, replication: usize) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn candidates(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), CapabilitySet::ALL, 1.0))
            .collect()
    }

    #[test]
    fn cycles_through_providers_in_order() {
        let mut alloc = RoundRobinAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let picks: Vec<u64> = (0..6)
            .map(|i| {
                alloc
                    .allocate(
                        &query(i, 1),
                        Candidates::from_slice(&candidates(3)),
                        &oracle,
                        &satisfaction,
                    )
                    .unwrap()
                    .selected[0]
                    .raw()
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn replication_wraps_around_the_ring() {
        let mut alloc = RoundRobinAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(
                &query(1, 2),
                Candidates::from_slice(&candidates(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(0), ProviderId::new(1)]
        );
        let decision = alloc
            .allocate(
                &query(2, 2),
                Candidates::from_slice(&candidates(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(2), ProviderId::new(0)]
        );
    }

    #[test]
    fn over_replication_is_capped_at_population() {
        let mut alloc = RoundRobinAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let decision = alloc
            .allocate(
                &query(1, 9),
                Candidates::from_slice(&candidates(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
    }

    #[test]
    fn empty_candidates_error_and_name() {
        let mut alloc = RoundRobinAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction
            )
            .is_err());
        assert_eq!(alloc.name(), "RoundRobin");
    }
}
