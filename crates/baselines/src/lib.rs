//! # sbqa-baselines
//!
//! Baseline query-allocation techniques used by the paper's evaluation
//! scenarios, all implementing the same
//! [`QueryAllocator`](sbqa_core::QueryAllocator) trait as SbQA so that the
//! scenario harnesses can swap them freely:
//!
//! * [`CapacityAllocator`] — the paper's "Capacity based" baseline (\[9\]),
//!   equivalent to how BOINC dispatches work: queries go to the
//!   least-utilized capable providers; participants' interests are ignored.
//! * [`EconomicAllocator`] — the economic baseline (\[13\], Mariposa): each
//!   provider bids a price derived from its load and capacity, the lowest
//!   bids win.
//! * [`RandomAllocator`], [`RoundRobinAllocator`], [`LoadBasedAllocator`] —
//!   sanity baselines (uniform random, cyclic, shortest-queue-first) used by
//!   tests and ablations.
//!
//! Even though these techniques ignore intentions when *deciding*, they still
//! report, for every mediation, which providers they considered and what
//! everybody's intentions were — that is what lets the satisfaction model
//! analyse them (Scenario 1: "the proposed satisfaction model allows
//! analyzing different query allocation techniques no matter their query
//! allocation principle").

#![forbid(unsafe_code)]

pub mod capacity;
pub mod economic;
pub mod factory;
pub mod load_based;
pub mod random_alloc;
pub mod round_robin;

pub use capacity::CapacityAllocator;
pub use economic::EconomicAllocator;
pub use factory::build_allocator;
pub use load_based::LoadBasedAllocator;
pub use random_alloc::RandomAllocator;
pub use round_robin::RoundRobinAllocator;

use sbqa_core::allocator::{AllocationDecision, Candidates, IntentionOracle, ProposalRecord};
use sbqa_types::Query;

/// Fills an [`AllocationDecision`] for a baseline technique without
/// allocating (beyond growing the reused decision's buffers).
///
/// `considered` holds candidate positions in the technique's rank order —
/// its analogue of SbQA's `Kn` — and the first `selected_count` of them are
/// the winners. `scores`, when present, is aligned with `considered`. The
/// function resolves both sides' intentions through the oracle so that the
/// satisfaction model can judge the technique, even though the technique
/// itself ignored those intentions.
pub(crate) fn fill_baseline_decision(
    query: &Query,
    candidates: Candidates<'_>,
    considered: &[u32],
    selected_count: usize,
    oracle: &dyn IntentionOracle,
    scores: Option<&[f64]>,
    decision: &mut AllocationDecision,
) {
    decision.clear();
    for (rank, &pos) in considered.iter().enumerate() {
        let snapshot = candidates.get(pos as usize);
        let selected = rank < selected_count;
        if selected {
            decision.selected.push(snapshot.id);
        }
        decision.proposals.push(ProposalRecord {
            provider: snapshot.id,
            provider_intention: oracle.provider_intention(snapshot.id, query),
            consumer_intention: oracle.consumer_intention(query, snapshot.id),
            score: scores.map(|s| s[rank]),
            selected,
        });
    }
}

/// How many providers a baseline reports as "considered" for satisfaction
/// purposes when it does not have a natural candidate-shortlist size of its
/// own. Matches the default `kn` of SbQA so that proposal-driven
/// dissatisfaction is comparable across techniques.
pub(crate) const DEFAULT_CONSIDERATION: usize = 4;

/// Fills `order` with the positions `0..candidate_count` ranked by `compare`,
/// keeping only the `considered_len` best. Only the considered prefix is ever
/// read by the ranking baselines, so the prefix is partitioned out with
/// `select_nth_unstable_by` first and the full sort pays O(c·log c) on the
/// `c = considered_len` survivors, not O(n·log n) on the population. Shared
/// by the capacity, economic and load-based baselines so their ranking
/// mechanics cannot drift apart.
pub(crate) fn rank_considered_prefix(
    order: &mut Vec<u32>,
    candidate_count: usize,
    considered_len: usize,
    mut compare: impl FnMut(&u32, &u32) -> std::cmp::Ordering,
) {
    order.clear();
    order.extend(0..candidate_count as u32);
    if considered_len > 0 && considered_len < order.len() {
        order.select_nth_unstable_by(considered_len - 1, &mut compare);
        order.truncate(considered_len);
    }
    order.sort_unstable_by(compare);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, Intention, ProviderId, QueryId};

    #[test]
    fn fill_baseline_decision_resolves_intentions_for_all_considered() {
        let query = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0)).build();
        let pool: Vec<ProviderSnapshot> = (0..3)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), CapabilitySet::ALL, 1.0))
            .collect();
        let mut oracle = StaticIntentions::new();
        oracle.set_consumer_intention(ProviderId::new(1), Intention::new(0.7));
        oracle.set_provider_intention(ProviderId::new(2), Intention::new(-0.4));

        // Rank order 1, 2, 0 with the first as the single winner.
        let mut decision = AllocationDecision::default();
        fill_baseline_decision(
            &query,
            Candidates::from_slice(&pool),
            &[1, 2, 0],
            1,
            &oracle,
            Some(&[0.9, 0.4, 0.1]),
            &mut decision,
        );
        assert_eq!(decision.selected, vec![ProviderId::new(1)]);
        assert_eq!(decision.proposals.len(), 3);
        assert!(decision.omega.is_none());

        let p1 = decision
            .proposals
            .iter()
            .find(|p| p.provider == ProviderId::new(1))
            .unwrap();
        assert!(p1.selected);
        assert_eq!(p1.consumer_intention, Intention::new(0.7));
        assert_eq!(p1.score, Some(0.9));

        let p2 = decision
            .proposals
            .iter()
            .find(|p| p.provider == ProviderId::new(2))
            .unwrap();
        assert!(!p2.selected);
        assert_eq!(p2.provider_intention, Intention::new(-0.4));
        assert_eq!(p2.score, Some(0.4));

        // Refilling a used decision starts from a clean slate.
        fill_baseline_decision(
            &query,
            Candidates::from_slice(&pool),
            &[0],
            1,
            &oracle,
            None,
            &mut decision,
        );
        assert_eq!(decision.selected, vec![ProviderId::new(0)]);
        assert_eq!(decision.proposals.len(), 1);
        assert_eq!(decision.proposals[0].score, None);
    }
}
