//! The economic baseline (\[13\] in the paper — Mariposa-style bidding).
//!
//! In Mariposa, queries carry budgets and providers *bid* for the right to
//! execute query fragments; the broker buys the cheapest acceptable bids.
//! For query allocation purposes (which is how the SbQA paper uses it as a
//! baseline) the essential behaviour is:
//!
//! * each capable provider quotes a **price** for the query, increasing with
//!   the work the query represents on that provider *and* with the backlog
//!   the provider already has (busy providers are expensive providers);
//! * the mediator allocates the query to the `q.n` cheapest bids.
//!
//! Like the capacity baseline, the technique ignores participants' interests;
//! unlike it, the price signal favours *fast* providers (high capacity) even
//! when they already have some backlog, which concentrates work on
//! well-provisioned providers — the behaviour the satisfaction analysis of
//! Scenario 1 is designed to expose.

use sbqa_core::allocator::{
    AllocationDecision, CandidateBlock, Candidates, IntentionOracle, ProviderSnapshot,
    QueryAllocator,
};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{Query, SbqaError, SbqaResult};

use crate::{fill_baseline_decision, DEFAULT_CONSIDERATION};

/// Economic (bidding) allocator: cheapest bid wins.
#[derive(Debug, Clone)]
pub struct EconomicAllocator {
    /// Weight of the provider's existing backlog in its price. A provider's
    /// bid is `service_time + backlog_weight · current_backlog`.
    backlog_weight: f64,
    /// Number of providers reported as "considered" for satisfaction
    /// accounting.
    consideration: usize,
    /// Per-candidate bids, indexed by candidate position.
    bids: Vec<f64>,
    /// Candidate positions in ascending-bid order.
    order: Vec<u32>,
    /// Negated bids of the considered prefix (the reported scores).
    scores: Vec<f64>,
    /// Dense gather of the candidate set's scoring columns; bids and
    /// tie-breaks are computed from these in one linear pass.
    block: CandidateBlock,
}

impl Default for EconomicAllocator {
    fn default() -> Self {
        Self {
            backlog_weight: 1.0,
            consideration: DEFAULT_CONSIDERATION,
            bids: Vec::new(),
            order: Vec::new(),
            scores: Vec::new(),
            block: CandidateBlock::new(),
        }
    }
}

impl EconomicAllocator {
    /// Creates an economic allocator with default pricing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the weight of existing backlog in a provider's bid.
    #[must_use]
    pub fn with_backlog_weight(mut self, weight: f64) -> Self {
        self.backlog_weight = if weight.is_finite() && weight >= 0.0 {
            weight
        } else {
            1.0
        };
        self
    }

    /// Overrides how many providers are reported as considered per mediation.
    #[must_use]
    pub fn with_consideration(mut self, consideration: usize) -> Self {
        self.consideration = consideration.max(1);
        self
    }

    /// The bid a provider quotes for a query: the virtual time it would take
    /// to deliver the result (queueing plus service), which is also a natural
    /// monetary proxy in the Mariposa model.
    #[must_use]
    pub fn bid(&self, snapshot: &ProviderSnapshot, query: &Query) -> f64 {
        let service = query.service_time(snapshot.capacity).seconds();
        let backlog = snapshot.utilization.max(0.0);
        service + self.backlog_weight * backlog
    }
}

impl QueryAllocator for EconomicAllocator {
    fn name(&self) -> &'static str {
        "Economic"
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        _satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }

        candidates.gather_all_into(&mut self.block);
        self.bids.clear();
        for (&capacity, &utilization) in self
            .block
            .capacity()
            .iter()
            .zip(self.block.utilization().iter())
        {
            let service = query.service_time(capacity).seconds();
            self.bids
                .push(service + self.backlog_weight * utilization.max(0.0));
        }
        let bids = &self.bids;
        let ids = self.block.ids();
        let by_cheapest_bid = |&a: &u32, &b: &u32| {
            sbqa_types::f64_total_cmp(bids[a as usize], bids[b as usize])
                .then_with(|| ids[a as usize].cmp(&ids[b as usize]))
        };
        let selected_count = query.replication.min(candidates.len());
        let considered_len = self.consideration.max(selected_count).min(candidates.len());

        crate::rank_considered_prefix(
            &mut self.order,
            candidates.len(),
            considered_len,
            by_cheapest_bid,
        );
        // Report the (negated) bid as the technique's score so that higher
        // is better, consistent with the other techniques' score columns.
        self.scores.clear();
        self.scores.extend(
            self.order[..considered_len]
                .iter()
                .map(|&pos| -self.bids[pos as usize]),
        );

        fill_baseline_decision(
            query,
            candidates,
            &self.order[..considered_len],
            selected_count,
            oracle,
            Some(&self.scores),
            decision,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_core::allocator::StaticIntentions;
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, ProviderId, QueryId};

    fn query(replication: usize, work: f64) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .work_units(work)
            .build()
    }

    fn snapshot(id: u64, utilization: f64, capacity: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity,
            utilization,
            queue_length: 0,
            online: true,
        }
    }

    #[test]
    fn bid_combines_service_time_and_backlog() {
        let alloc = EconomicAllocator::new();
        let q = query(1, 10.0);
        // Capacity 2 -> service 5s, backlog 3s -> bid 8.
        assert!((alloc.bid(&snapshot(1, 3.0, 2.0), &q) - 8.0).abs() < 1e-12);
        // Zero backlog weight ignores backlog.
        let alloc = EconomicAllocator::new().with_backlog_weight(0.0);
        assert!((alloc.bid(&snapshot(1, 3.0, 2.0), &q) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cheapest_bids_win() {
        let mut alloc = EconomicAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates = vec![
            snapshot(1, 0.0, 1.0),  // bid 10
            snapshot(2, 0.0, 10.0), // bid 1
            snapshot(3, 0.5, 5.0),  // bid 2.5
        ];
        let decision = alloc
            .allocate(
                &query(2, 10.0),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(2), ProviderId::new(3)]
        );
        // Scores are negated bids: the winner has the highest score.
        let winner_score = decision
            .proposals
            .iter()
            .find(|p| p.provider == ProviderId::new(2))
            .unwrap()
            .score
            .unwrap();
        let loser_score = decision
            .proposals
            .iter()
            .find(|p| p.provider == ProviderId::new(1))
            .map(|p| p.score.unwrap_or(f64::NEG_INFINITY));
        if let Some(loser_score) = loser_score {
            assert!(winner_score > loser_score);
        }
    }

    #[test]
    fn fast_providers_attract_work_even_with_backlog() {
        // The crossover the satisfaction analysis cares about: a 10x-capacity
        // provider with a small backlog still underbids an idle slow one.
        let mut alloc = EconomicAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let candidates = vec![snapshot(1, 0.0, 1.0), snapshot(2, 0.5, 10.0)];
        let decision = alloc
            .allocate(
                &query(1, 10.0),
                Candidates::from_slice(&candidates),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected, vec![ProviderId::new(2)]);
    }

    #[test]
    fn degenerate_backlog_weight_is_sanitised() {
        let alloc = EconomicAllocator::new().with_backlog_weight(f64::NAN);
        let q = query(1, 1.0);
        assert!(alloc.bid(&snapshot(1, 1.0, 1.0), &q).is_finite());
    }

    #[test]
    fn empty_candidates_error_and_name() {
        let mut alloc = EconomicAllocator::new();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        assert!(alloc
            .allocate(
                &query(1, 1.0),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction
            )
            .is_err());
        assert_eq!(alloc.name(), "Economic");
    }
}
