//! The KnBest provider pre-selection strategy (DASFAA 2007, used as step 1 of
//! SbQA's mediation).
//!
//! From the set `Pq` of capable providers, KnBest
//!
//! 1. draws `k` providers uniformly at random (the set `K`), then
//! 2. keeps the `kn` *least utilized* providers of `K` (the set `Kn`).
//!
//! The random draw spreads opportunities across the whole provider
//! population (important for provider satisfaction and for discovering
//! under-used providers), while the utilization filter keeps the final
//! candidates from being overloaded. The paper's Scenario 6 adapts the query
//! allocation to the application by varying `kn`: a small `kn` behaves almost
//! like pure load balancing, a large `kn` gives the intention-based scoring
//! more freedom.
//!
//! ## Cost model
//!
//! The draw is a *partial* Fisher–Yates over a persistent identity
//! permutation ([`IndexPool`]): `k` swaps forward, `k` swaps undone, so one
//! selection costs O(k) — independent of `|Pq|` — and, once the pool has
//! grown to the population size, performs zero heap allocation. The
//! utilization filter is a `select_nth_unstable` partition of the `k` drawn
//! positions followed by a full sort of only the `kn` survivors.

use rand::Rng;

use sbqa_types::ProviderId;

use crate::allocator::{Candidates, ProviderSnapshot};

/// A persistent identity permutation used to draw `count` distinct positions
/// out of `0..population` uniformly at random in O(count) time.
///
/// The pool keeps a `Vec<u32>` that is always the identity permutation
/// between draws: a draw performs `count` Fisher–Yates swaps, copies the
/// drawn prefix out, then undoes the swaps in reverse. Growing to a larger
/// population extends the identity lazily, so steady-state draws allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct IndexPool {
    identity: Vec<u32>,
    swaps: Vec<u32>,
    drawn: Vec<u32>,
}

impl IndexPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws `min(count, population)` distinct positions from
    /// `0..population`, uniformly at random, returning them in draw order.
    /// The returned slice is valid until the next call.
    pub fn draw<R: Rng>(&mut self, population: usize, count: usize, rng: &mut R) -> &[u32] {
        let count = count.min(population);
        if self.identity.len() < population {
            let start = self.identity.len() as u32;
            self.identity.extend(start..population as u32);
        }
        self.swaps.clear();
        self.drawn.clear();
        for i in 0..count {
            let j = rng.gen_range(i..population);
            self.identity.swap(i, j);
            self.swaps.push(j as u32);
        }
        self.drawn.extend_from_slice(&self.identity[..count]);
        // Restore the identity so the next draw starts from a clean pool.
        for i in (0..count).rev() {
            self.identity.swap(i, self.swaps[i] as usize);
        }
        &self.drawn
    }
}

/// Reusable working memory for [`KnBestSelector::select_into`] /
/// [`KnBestSelector::select_block`]. One scratch per allocator instance
/// keeps steady-state selection allocation-free.
#[derive(Debug, Clone, Default)]
pub struct KnBestScratch {
    pool: IndexPool,
    /// `(utilization, raw id, position)` ranking keys of the drawn set K —
    /// gathered once from the candidate columns so the partition and sort
    /// compare dense tuples instead of re-reading the view per comparison
    /// (which, for bitmap-backed views, would rank-select every time).
    keys: Vec<(f64, u64, u32)>,
    /// Output columns of the selection, parallel and in ranking order.
    positions: Vec<u32>,
    ids: Vec<ProviderId>,
    utilization: Vec<f64>,
}

impl KnBestScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The set `Kn` as dense parallel columns borrowed from the scratch:
/// positions into the candidate view, provider ids and utilizations, all in
/// ranking order (ascending utilization, id tie-break). Step 2 of SbQA reads
/// ids and utilizations straight from here instead of re-resolving each
/// position against the view.
#[derive(Debug, Clone, Copy)]
pub struct KnSelection<'s> {
    /// Positions into the candidate view, in ranking order.
    pub positions: &'s [u32],
    /// Provider ids, parallel to `positions`.
    pub ids: &'s [ProviderId],
    /// Utilizations, parallel to `positions`.
    pub utilization: &'s [f64],
}

impl KnSelection<'_> {
    /// Number of selected providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if nothing was selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Configurable KnBest selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnBestSelector {
    /// Number of providers drawn at random (`k`).
    pub k: usize,
    /// Number of least-utilized providers retained (`kn`).
    pub kn: usize,
}

impl KnBestSelector {
    /// Creates a selector. `kn` is capped at `k` and both are raised to at
    /// least 1, so the selector is always usable.
    #[must_use]
    pub fn new(k: usize, kn: usize) -> Self {
        let k = k.max(1);
        Self {
            k,
            kn: kn.clamp(1, k),
        }
    }

    /// Applies KnBest to the candidate view, returning the positions (into
    /// `candidates`) of the set `Kn`, sorted by ascending utilization with
    /// provider id as the tie-breaker — deterministic for a given RNG stream
    /// and candidate order.
    ///
    /// Costs O(k + kn·log kn) regardless of `|Pq|` and performs no heap
    /// allocation once `scratch` has warmed up to the population size.
    pub fn select_into<'s, R: Rng>(
        &self,
        candidates: Candidates<'_>,
        rng: &mut R,
        scratch: &'s mut KnBestScratch,
    ) -> &'s [u32] {
        self.select_block(candidates, rng, scratch).positions
    }

    /// Applies KnBest to the candidate view, returning the set `Kn` as dense
    /// parallel columns (positions, ids, utilizations) in ranking order —
    /// ascending utilization with provider id as the tie-breaker,
    /// deterministic for a given RNG stream and candidate order.
    ///
    /// The ranking keys of the drawn set K are gathered from the view
    /// *once*; the partition and sort then run over dense tuples, so a
    /// bitmap-backed view pays `k` rank-selects total instead of one per
    /// comparison. Costs O(k + kn·log kn) regardless of `|Pq|` and performs
    /// no heap allocation once `scratch` has warmed up.
    pub fn select_block<'s, R: Rng>(
        &self,
        candidates: Candidates<'_>,
        rng: &mut R,
        scratch: &'s mut KnBestScratch,
    ) -> KnSelection<'s> {
        scratch.keys.clear();
        scratch.positions.clear();
        scratch.ids.clear();
        scratch.utilization.clear();
        let n = candidates.len();
        if n > 0 {
            // Step 1: the random subset K of size min(k, |Pq|), as
            // positions, with each position's ranking key gathered once.
            let drawn = scratch.pool.draw(n, self.k, rng);
            for &pos in drawn {
                let (utilization, id) = candidates.load_key(pos as usize);
                scratch.keys.push((utilization, id.raw(), pos));
            }

            // Step 2: the kn least-utilized providers of K. Partition first
            // so only the kn survivors pay for a full (deterministic) sort.
            let by_load = |a: &(f64, u64, u32), b: &(f64, u64, u32)| {
                sbqa_types::f64_total_cmp(a.0, b.0).then_with(|| a.1.cmp(&b.1))
            };
            let kn = self.kn.min(scratch.keys.len());
            if kn < scratch.keys.len() {
                scratch.keys.select_nth_unstable_by(kn - 1, by_load);
                scratch.keys.truncate(kn);
            }
            scratch.keys.sort_unstable_by(by_load);
            for &(utilization, id, pos) in &scratch.keys {
                scratch.positions.push(pos);
                scratch.ids.push(ProviderId::new(id));
                scratch.utilization.push(utilization);
            }
        }
        KnSelection {
            positions: &scratch.positions,
            ids: &scratch.ids,
            utilization: &scratch.utilization,
        }
    }

    /// Applies KnBest to a candidate slice, returning the snapshots of the
    /// set `Kn` — an allocating convenience wrapper over
    /// [`KnBestSelector::select_into`] for tests and one-off callers.
    #[must_use]
    pub fn select<R: Rng>(
        &self,
        candidates: &[ProviderSnapshot],
        rng: &mut R,
    ) -> Vec<ProviderSnapshot> {
        let mut scratch = KnBestScratch::new();
        self.select_into(Candidates::from_slice(candidates), rng, &mut scratch)
            .iter()
            .map(|&pos| candidates[pos as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sbqa_types::{CapabilitySet, ProviderId};

    fn snapshot(id: u64, utilization: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0,
            utilization,
            queue_length: 0,
            online: true,
        }
    }

    #[test]
    fn index_pool_draws_distinct_positions_and_restores_identity() {
        let mut pool = IndexPool::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let drawn: Vec<u32> = pool.draw(20, 7, &mut rng).to_vec();
            assert_eq!(drawn.len(), 7);
            let mut sorted = drawn.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicates in {drawn:?}");
            assert!(drawn.iter().all(|&p| p < 20));
        }
        // The identity invariant must hold between draws.
        assert!(pool
            .identity
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn index_pool_caps_count_at_population_and_grows() {
        let mut pool = IndexPool::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut all: Vec<u32> = pool.draw(4, 99, &mut rng).to_vec();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Growing to a larger population works on the same pool.
        let drawn = pool.draw(100, 5, &mut rng);
        assert_eq!(drawn.len(), 5);
        assert!(drawn.iter().all(|&p| p < 100));
    }

    #[test]
    fn select_into_returns_positions_into_the_view() {
        let candidates: Vec<ProviderSnapshot> = vec![
            snapshot(10, 5.0),
            snapshot(11, 0.5),
            snapshot(12, 3.0),
            snapshot(13, 0.1),
        ];
        let sel = KnBestSelector::new(10, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut scratch = KnBestScratch::new();
        let positions =
            sel.select_into(Candidates::from_slice(&candidates), &mut rng, &mut scratch);
        let ids: Vec<u64> = positions
            .iter()
            .map(|&p| candidates[p as usize].id.raw())
            .collect();
        assert_eq!(ids, vec![13, 11]);
    }

    #[test]
    fn select_block_columns_are_parallel_and_ranked() {
        let candidates: Vec<ProviderSnapshot> = vec![
            snapshot(10, 5.0),
            snapshot(11, 0.5),
            snapshot(12, 3.0),
            snapshot(13, 0.1),
        ];
        let sel = KnBestSelector::new(10, 3);
        let mut rng = StdRng::seed_from_u64(42);
        let mut scratch = KnBestScratch::new();
        let kn = sel.select_block(Candidates::from_slice(&candidates), &mut rng, &mut scratch);
        assert_eq!(kn.len(), 3);
        assert!(!kn.is_empty());
        // The columns agree with one another and with the view.
        for i in 0..kn.len() {
            let row = candidates[kn.positions[i] as usize];
            assert_eq!(kn.ids[i], row.id);
            assert_eq!(kn.utilization[i], row.utilization);
        }
        // Ranking order: ascending utilization.
        assert!(kn.utilization.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn select_into_on_empty_view_is_empty() {
        let sel = KnBestSelector::new(5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = KnBestScratch::new();
        assert!(sel
            .select_into(Candidates::from_slice(&[]), &mut rng, &mut scratch)
            .is_empty());
    }

    #[test]
    fn parameters_are_sanitised() {
        let sel = KnBestSelector::new(0, 0);
        assert_eq!(sel.k, 1);
        assert_eq!(sel.kn, 1);
        let sel = KnBestSelector::new(4, 10);
        assert_eq!(sel.kn, 4);
    }

    #[test]
    fn empty_candidates_give_empty_selection() {
        let sel = KnBestSelector::new(5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sel.select(&[], &mut rng).is_empty());
    }

    #[test]
    fn selection_never_exceeds_kn_or_population() {
        let candidates: Vec<ProviderSnapshot> = (0..10).map(|i| snapshot(i, i as f64)).collect();
        let mut rng = StdRng::seed_from_u64(7);

        let sel = KnBestSelector::new(6, 3);
        assert_eq!(sel.select(&candidates, &mut rng).len(), 3);

        // When the population is smaller than kn, everything is returned.
        let sel = KnBestSelector::new(50, 20);
        assert_eq!(sel.select(&candidates[..2], &mut rng).len(), 2);
    }

    #[test]
    fn when_k_covers_everything_the_least_utilized_win() {
        // With k >= |Pq| the random step is a no-op and the kn least utilized
        // providers must be selected deterministically.
        let candidates: Vec<ProviderSnapshot> = vec![
            snapshot(1, 5.0),
            snapshot(2, 0.5),
            snapshot(3, 3.0),
            snapshot(4, 0.1),
        ];
        let sel = KnBestSelector::new(10, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let kn = sel.select(&candidates, &mut rng);
        let ids: Vec<u64> = kn.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![4, 2]);
    }

    #[test]
    fn same_seed_gives_same_selection() {
        let candidates: Vec<ProviderSnapshot> =
            (0..50).map(|i| snapshot(i, (i % 7) as f64)).collect();
        let sel = KnBestSelector::new(10, 4);
        let a = sel.select(&candidates, &mut StdRng::seed_from_u64(99));
        let b = sel.select(&candidates, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn random_step_spreads_opportunities() {
        // Provider 0 is the single least-utilized provider; with k = 1 the
        // random draw decides alone, so over many mediations other providers
        // must get selected too.
        let candidates: Vec<ProviderSnapshot> = (0..10)
            .map(|i| snapshot(i, if i == 0 { 0.0 } else { 1.0 }))
            .collect();
        let sel = KnBestSelector::new(1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut selected_ids = std::collections::HashSet::new();
        for _ in 0..200 {
            let kn = sel.select(&candidates, &mut rng);
            selected_ids.insert(kn[0].id.raw());
        }
        assert!(
            selected_ids.len() > 5,
            "random step should spread selections"
        );
    }

    proptest! {
        #[test]
        fn prop_selected_are_subset_of_candidates(
            utilizations in proptest::collection::vec(0.0f64..100.0, 1..40),
            k in 1usize..20,
            kn in 1usize..20,
            seed in 0u64..1000,
        ) {
            let candidates: Vec<ProviderSnapshot> = utilizations
                .iter()
                .enumerate()
                .map(|(i, u)| snapshot(i as u64, *u))
                .collect();
            let sel = KnBestSelector::new(k, kn);
            let mut rng = StdRng::seed_from_u64(seed);
            let selection = sel.select(&candidates, &mut rng);
            prop_assert!(selection.len() <= sel.kn.min(candidates.len()));
            for s in &selection {
                prop_assert!(candidates.iter().any(|c| c.id == s.id));
            }
            // No duplicates.
            let mut ids: Vec<u64> = selection.iter().map(|s| s.id.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), selection.len());
        }

        #[test]
        fn prop_selection_sorted_by_utilization(
            utilizations in proptest::collection::vec(0.0f64..100.0, 1..40),
            seed in 0u64..1000,
        ) {
            let candidates: Vec<ProviderSnapshot> = utilizations
                .iter()
                .enumerate()
                .map(|(i, u)| snapshot(i as u64, *u))
                .collect();
            let sel = KnBestSelector::new(8, 4);
            let mut rng = StdRng::seed_from_u64(seed);
            let selection = sel.select(&candidates, &mut rng);
            for pair in selection.windows(2) {
                prop_assert!(pair[0].utilization <= pair[1].utilization);
            }
        }
    }
}
