//! The KnBest provider pre-selection strategy (DASFAA 2007, used as step 1 of
//! SbQA's mediation).
//!
//! From the set `Pq` of capable providers, KnBest
//!
//! 1. draws `k` providers uniformly at random (the set `K`), then
//! 2. keeps the `kn` *least utilized* providers of `K` (the set `Kn`).
//!
//! The random draw spreads opportunities across the whole provider
//! population (important for provider satisfaction and for discovering
//! under-used providers), while the utilization filter keeps the final
//! candidates from being overloaded. The paper's Scenario 6 adapts the query
//! allocation to the application by varying `kn`: a small `kn` behaves almost
//! like pure load balancing, a large `kn` gives the intention-based scoring
//! more freedom.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::allocator::ProviderSnapshot;

/// Configurable KnBest selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnBestSelector {
    /// Number of providers drawn at random (`k`).
    pub k: usize,
    /// Number of least-utilized providers retained (`kn`).
    pub kn: usize,
}

impl KnBestSelector {
    /// Creates a selector. `kn` is capped at `k` and both are raised to at
    /// least 1, so the selector is always usable.
    #[must_use]
    pub fn new(k: usize, kn: usize) -> Self {
        let k = k.max(1);
        Self {
            k,
            kn: kn.clamp(1, k),
        }
    }

    /// Applies KnBest to the candidate set, returning the set `Kn`.
    ///
    /// The result preserves no particular order except that it is sorted by
    /// ascending utilization with provider id as the tie-breaker, which keeps
    /// the selection deterministic for a given RNG stream.
    #[must_use]
    pub fn select<R: Rng + ?Sized>(
        &self,
        candidates: &[ProviderSnapshot],
        rng: &mut R,
    ) -> Vec<ProviderSnapshot> {
        if candidates.is_empty() {
            return Vec::new();
        }

        // Step 1: the random subset K of size min(k, |Pq|).
        let mut pool: Vec<ProviderSnapshot> = candidates.to_vec();
        pool.shuffle(rng);
        pool.truncate(self.k);

        // Step 2: the kn least-utilized providers of K.
        pool.sort_by(|a, b| {
            a.utilization
                .partial_cmp(&b.utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        pool.truncate(self.kn);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sbqa_types::{CapabilitySet, ProviderId};

    fn snapshot(id: u64, utilization: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0,
            utilization,
            queue_length: 0,
            online: true,
        }
    }

    #[test]
    fn parameters_are_sanitised() {
        let sel = KnBestSelector::new(0, 0);
        assert_eq!(sel.k, 1);
        assert_eq!(sel.kn, 1);
        let sel = KnBestSelector::new(4, 10);
        assert_eq!(sel.kn, 4);
    }

    #[test]
    fn empty_candidates_give_empty_selection() {
        let sel = KnBestSelector::new(5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sel.select(&[], &mut rng).is_empty());
    }

    #[test]
    fn selection_never_exceeds_kn_or_population() {
        let candidates: Vec<ProviderSnapshot> = (0..10).map(|i| snapshot(i, i as f64)).collect();
        let mut rng = StdRng::seed_from_u64(7);

        let sel = KnBestSelector::new(6, 3);
        assert_eq!(sel.select(&candidates, &mut rng).len(), 3);

        // When the population is smaller than kn, everything is returned.
        let sel = KnBestSelector::new(50, 20);
        assert_eq!(sel.select(&candidates[..2], &mut rng).len(), 2);
    }

    #[test]
    fn when_k_covers_everything_the_least_utilized_win() {
        // With k >= |Pq| the random step is a no-op and the kn least utilized
        // providers must be selected deterministically.
        let candidates: Vec<ProviderSnapshot> = vec![
            snapshot(1, 5.0),
            snapshot(2, 0.5),
            snapshot(3, 3.0),
            snapshot(4, 0.1),
        ];
        let sel = KnBestSelector::new(10, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let kn = sel.select(&candidates, &mut rng);
        let ids: Vec<u64> = kn.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![4, 2]);
    }

    #[test]
    fn same_seed_gives_same_selection() {
        let candidates: Vec<ProviderSnapshot> =
            (0..50).map(|i| snapshot(i, (i % 7) as f64)).collect();
        let sel = KnBestSelector::new(10, 4);
        let a = sel.select(&candidates, &mut StdRng::seed_from_u64(99));
        let b = sel.select(&candidates, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn random_step_spreads_opportunities() {
        // Provider 0 is the single least-utilized provider; with k = 1 the
        // random draw decides alone, so over many mediations other providers
        // must get selected too.
        let candidates: Vec<ProviderSnapshot> = (0..10)
            .map(|i| snapshot(i, if i == 0 { 0.0 } else { 1.0 }))
            .collect();
        let sel = KnBestSelector::new(1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut selected_ids = std::collections::HashSet::new();
        for _ in 0..200 {
            let kn = sel.select(&candidates, &mut rng);
            selected_ids.insert(kn[0].id.raw());
        }
        assert!(
            selected_ids.len() > 5,
            "random step should spread selections"
        );
    }

    proptest! {
        #[test]
        fn prop_selected_are_subset_of_candidates(
            utilizations in proptest::collection::vec(0.0f64..100.0, 1..40),
            k in 1usize..20,
            kn in 1usize..20,
            seed in 0u64..1000,
        ) {
            let candidates: Vec<ProviderSnapshot> = utilizations
                .iter()
                .enumerate()
                .map(|(i, u)| snapshot(i as u64, *u))
                .collect();
            let sel = KnBestSelector::new(k, kn);
            let mut rng = StdRng::seed_from_u64(seed);
            let selection = sel.select(&candidates, &mut rng);
            prop_assert!(selection.len() <= sel.kn.min(candidates.len()));
            for s in &selection {
                prop_assert!(candidates.iter().any(|c| c.id == s.id));
            }
            // No duplicates.
            let mut ids: Vec<u64> = selection.iter().map(|s| s.id.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), selection.len());
        }

        #[test]
        fn prop_selection_sorted_by_utilization(
            utilizations in proptest::collection::vec(0.0f64..100.0, 1..40),
            seed in 0u64..1000,
        ) {
            let candidates: Vec<ProviderSnapshot> = utilizations
                .iter()
                .enumerate()
                .map(|(i, u)| snapshot(i as u64, *u))
                .collect();
            let sel = KnBestSelector::new(8, 4);
            let mut rng = StdRng::seed_from_u64(seed);
            let selection = sel.select(&candidates, &mut rng);
            for pair in selection.windows(2) {
                prop_assert!(pair[0].utilization <= pair[1].utilization);
            }
        }
    }
}
