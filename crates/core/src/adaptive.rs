//! Adaptive `kn`: self-tuning the KnBest exploration width from the
//! observed satisfaction gap.
//!
//! The paper's Scenario 6 shows that `kn` adapts SbQA to the application: a
//! small `kn` behaves like load balancing (KnBest's utilization filter
//! decides), a large `kn` gives the intention-based SQLB scoring more
//! freedom (better-matched allocations, but more consulted-and-rejected
//! providers). The paper sweeps `kn` statically; the headline claim —
//! *self-adaptation* — wants the mediator to move `kn` at runtime from what
//! it observes.
//!
//! [`KnController`] closes that loop. Per **capability class** it keeps a
//! sliding [`GapWindow`] of per-mediation [`GapSample`]s (the satisfaction
//! of the issuing consumer vs the mean satisfaction of the consulted
//! providers — values SbQA already reads to resolve ω, so sampling is free)
//! and an **EWMA** of the windowed gap. At every batch boundary the mediator
//! calls [`KnController::adapt`]; classes whose EWMA leaves the hysteresis
//! band `target_gap ± deadband` get their `kn` stepped down (gap above the
//! band: providers are falling behind — shrink exploration, reject fewer,
//! let the utilization filter spread load) or up (gap below the band: there
//! is headroom — widen exploration so scoring can chase better-matched
//! providers), clamped to `[min_kn, max_kn]`.
//!
//! ## Determinism
//!
//! The controller is a pure function of the observed sample stream: no
//! clocks, no randomness, no dependence on hash iteration order (classes are
//! stored densely and visited in index order). Re-sizing `kn` does **not**
//! change the RNG consumption of the KnBest draw (the draw always performs
//! `k` swaps; `kn` only truncates the survivors), so enabling adaptation
//! alters *decisions*, never the RNG stream alignment — and with the
//! controller disabled (the default) the mediator is byte-identical to a
//! controller-free build, which keeps every golden seed stable.
//!
//! ## End-to-end example
//!
//! A mediator whose providers keep performing queries they hate: their
//! satisfaction collapses, the gap EWMA rises above the band, and the
//! controller pulls `kn` down from its initial width towards `min_kn`.
//!
//! ```
//! use sbqa_core::{KnControllerConfig, Mediator, StaticIntentions};
//! use sbqa_types::{
//!     Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
//! };
//!
//! // Build a registry of six capability-0 providers behind an SbQA mediator.
//! let config = SystemConfig::default().with_knbest(6, 4);
//! let mut mediator = Mediator::sbqa(config, 42).unwrap();
//! for p in 0..6u64 {
//!     mediator.register_provider(
//!         ProviderId::new(p),
//!         CapabilitySet::singleton(Capability::new(0)),
//!         1.0,
//!     );
//! }
//! mediator.register_consumer(ConsumerId::new(1));
//!
//! // Enable adaptation: start at kn = 4, allow [2, 6], react quickly.
//! mediator.enable_adaptive_kn(KnControllerConfig {
//!     initial_kn: 4,
//!     min_kn: 2,
//!     max_kn: 6,
//!     alpha: 0.5,
//!     ..KnControllerConfig::default()
//! });
//!
//! // The consumer loves every allocation (+0.8) while providers hate the
//! // work (-0.8): provider satisfaction collapses, the gap EWMA rises.
//! let oracle = StaticIntentions::new()
//!     .with_defaults(Intention::new(0.8), Intention::new(-0.8));
//! let batch: Vec<Query> = (0..16u64)
//!     .map(|q| Query::builder(QueryId::new(q), ConsumerId::new(1), Capability::new(0)).build())
//!     .collect();
//! for _ in 0..8 {
//!     mediator.submit_batch(&batch, &oracle, |_, _, _| {});
//! }
//!
//! // The controller reacted: kn moved down from 4 to the configured floor.
//! let controller = mediator.adaptive_kn().unwrap();
//! assert_eq!(controller.current_kn(0), Some(2));
//! assert!(!controller.trail().is_empty(), "adjustments were recorded");
//! ```

use serde::{Deserialize, Serialize};

use sbqa_satisfaction::{GapSample, GapWindow};
use sbqa_types::{Query, SbqaError, SbqaResult, MAX_CAPABILITY_CLASSES};

/// The class bucket used for queries that mention no capability class at all
/// (an `All{}` wildcard requirement).
pub const WILDCARD_CLASS: u8 = MAX_CAPABILITY_CLASSES;

/// Upper bound on the retained [`KnController::trail`]: when reached, the
/// oldest half is discarded. Generous for experiment runs (the full
/// `scenario_adaptive` preset records well under a hundred adjustments)
/// while keeping a permanently-oscillating long-lived service at a few
/// hundred KiB of trajectory, not an unbounded leak.
pub const TRAIL_CAPACITY: usize = 8_192;

/// Knobs of the adaptive-`kn` controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnControllerConfig {
    /// Exploration width every class starts from.
    pub initial_kn: usize,
    /// Lower clamp of the adapted width (≥ 1).
    pub min_kn: usize,
    /// Upper clamp of the adapted width. The effective width is additionally
    /// capped by the allocator's `k` at apply time.
    pub max_kn: usize,
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest windowed
    /// gap mean. `1` disables smoothing.
    pub alpha: f64,
    /// The gap the controller steers towards. The gap is signed
    /// (`consumer − provider`), and in proposal-based satisfaction models a
    /// healthy steady state sits slightly above zero.
    pub target_gap: f64,
    /// Half-width of the hysteresis band around [`target_gap`]: the EWMA
    /// must leave `target_gap ± deadband` before `kn` moves, preventing
    /// oscillation on noise.
    ///
    /// [`target_gap`]: KnControllerConfig::target_gap
    pub deadband: f64,
    /// How many steps `kn` moves per adaptation round (≥ 1).
    pub step: usize,
    /// Capacity of the per-class sliding sample window.
    pub window: usize,
}

impl Default for KnControllerConfig {
    fn default() -> Self {
        Self {
            initial_kn: 4,
            min_kn: 2,
            max_kn: 16,
            alpha: 0.3,
            target_gap: 0.15,
            deadband: 0.1,
            step: 1,
            window: 64,
        }
    }
}

impl KnControllerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> SbqaResult<()> {
        if self.min_kn == 0 {
            return Err(SbqaError::invalid_config("adaptive kn: min_kn must be ≥ 1"));
        }
        if self.min_kn > self.max_kn {
            return Err(SbqaError::invalid_config(format!(
                "adaptive kn: min_kn ({}) cannot exceed max_kn ({})",
                self.min_kn, self.max_kn
            )));
        }
        if self.initial_kn < self.min_kn || self.initial_kn > self.max_kn {
            return Err(SbqaError::invalid_config(format!(
                "adaptive kn: initial_kn ({}) must lie in [{}, {}]",
                self.initial_kn, self.min_kn, self.max_kn
            )));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha > 1.0 {
            return Err(SbqaError::invalid_config(format!(
                "adaptive kn: alpha must lie in (0, 1], got {}",
                self.alpha
            )));
        }
        if !self.target_gap.is_finite() || !self.deadband.is_finite() || self.deadband < 0.0 {
            return Err(SbqaError::invalid_config(
                "adaptive kn: target_gap must be finite and deadband finite and ≥ 0",
            ));
        }
        if self.step == 0 {
            return Err(SbqaError::invalid_config("adaptive kn: step must be ≥ 1"));
        }
        if self.window == 0 {
            return Err(SbqaError::invalid_config("adaptive kn: window must be ≥ 1"));
        }
        Ok(())
    }
}

/// One recorded `kn` change — an entry of the controller's trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnAdjustment {
    /// Adaptation round (batch boundary) at which the change happened,
    /// counted from 1.
    pub round: u64,
    /// Capability class the change applies to ([`WILDCARD_CLASS`] for the
    /// class-less bucket).
    pub class: u8,
    /// The new exploration width.
    pub kn: usize,
    /// The gap EWMA that triggered the change.
    pub gap_ewma: f64,
}

/// Per-class controller state.
#[derive(Debug, Clone)]
struct ClassState {
    window: GapWindow,
    ewma: Option<f64>,
    kn: usize,
    /// Samples observed since the last adaptation round; classes with no
    /// fresh evidence do not adapt.
    fresh: usize,
}

impl ClassState {
    fn new(config: &KnControllerConfig) -> Self {
        Self {
            window: GapWindow::new(config.window),
            ewma: None,
            kn: config.initial_kn,
            fresh: 0,
        }
    }
}

/// Self-tuning exploration-width controller: one EWMA'd gap signal and one
/// `kn` per capability class.
///
/// See the [module documentation](self) for the control law and an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct KnController {
    config: KnControllerConfig,
    /// Dense per-class states, indexed by class (entry 64 is the wildcard
    /// bucket). Lazily populated on first contact, visited in index order —
    /// no hash-iteration nondeterminism.
    states: Vec<Option<ClassState>>,
    rounds: u64,
    trail: Vec<KnAdjustment>,
}

impl KnController {
    /// Creates a controller. Fails on an invalid configuration.
    pub fn new(config: KnControllerConfig) -> SbqaResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            states: vec![None; usize::from(MAX_CAPABILITY_CLASSES) + 1],
            rounds: 0,
            trail: Vec::new(),
        })
    }

    /// The configuration the controller runs with.
    #[must_use]
    pub fn config(&self) -> &KnControllerConfig {
        &self.config
    }

    /// Number of adaptation rounds performed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The controller class of a query: the lowest capability class its
    /// requirement mentions, or [`WILDCARD_CLASS`] for class-less wildcard
    /// requirements. Multi-capability queries share the bucket of their
    /// lowest mentioned class.
    #[must_use]
    pub fn class_of(query: &Query) -> u8 {
        query
            .required
            .classes()
            .iter()
            .next()
            .map_or(WILDCARD_CLASS, sbqa_types::Capability::class)
    }

    /// The dense bucket a class maps to: out-of-range classes (there are
    /// only [`MAX_CAPABILITY_CLASSES`]) share the wildcard bucket, on reads
    /// and writes alike.
    fn bucket(class: u8) -> usize {
        usize::from(class).min(usize::from(WILDCARD_CLASS))
    }

    fn state_mut(&mut self, class: u8) -> &mut ClassState {
        self.states[Self::bucket(class)].get_or_insert_with(|| ClassState::new(&self.config))
    }

    /// The exploration width the given query should be drawn with.
    #[must_use]
    pub fn kn_for_query(&mut self, query: &Query) -> usize {
        self.state_mut(Self::class_of(query)).kn
    }

    /// Records one mediation's gap sample under the query's class.
    pub fn observe_query(&mut self, query: &Query, sample: GapSample) {
        self.observe(Self::class_of(query), sample);
    }

    /// Records one gap sample under an explicit class.
    pub fn observe(&mut self, class: u8, sample: GapSample) {
        let state = self.state_mut(class);
        state.window.record(sample);
        state.fresh += 1;
    }

    /// Runs one adaptation round — the mediator calls this at every batch
    /// boundary. Every class that observed at least one sample since the
    /// previous round folds its windowed gap mean into its EWMA and, if the
    /// EWMA sits outside the hysteresis band, steps `kn` towards the band.
    /// Returns the number of classes whose `kn` changed.
    pub fn adapt(&mut self) -> usize {
        self.rounds += 1;
        let config = self.config;
        let mut changed = 0;
        for (idx, slot) in self.states.iter_mut().enumerate() {
            let Some(state) = slot else { continue };
            if state.fresh == 0 {
                continue;
            }
            state.fresh = 0;
            let windowed = state.window.gap();
            let ewma = match state.ewma {
                Some(prev) => config.alpha * windowed + (1.0 - config.alpha) * prev,
                None => windowed,
            };
            state.ewma = Some(ewma);

            let kn = if ewma > config.target_gap + config.deadband {
                state.kn.saturating_sub(config.step).max(config.min_kn)
            } else if ewma < config.target_gap - config.deadband {
                (state.kn + config.step).min(config.max_kn)
            } else {
                state.kn
            };
            if kn != state.kn {
                state.kn = kn;
                changed += 1;
                // Bounded trajectory: once the trail hits its cap, the
                // oldest half is dropped in one amortized-O(1) drain, so a
                // long-lived service whose load oscillates across the band
                // keeps the most recent ≤ TRAIL_CAPACITY adjustments
                // instead of leaking memory forever.
                if self.trail.len() >= TRAIL_CAPACITY {
                    self.trail.drain(..TRAIL_CAPACITY / 2);
                }
                self.trail.push(KnAdjustment {
                    round: self.rounds,
                    class: idx as u8,
                    kn,
                    gap_ewma: ewma,
                });
            }
        }
        changed
    }

    /// The current width of a class, if the class has been contacted.
    /// Out-of-range classes read the wildcard bucket, mirroring where
    /// [`KnController::observe`] routes their writes.
    #[must_use]
    pub fn current_kn(&self, class: u8) -> Option<usize> {
        self.states[Self::bucket(class)].as_ref().map(|s| s.kn)
    }

    /// The current gap EWMA of a class, once one adaptation round has seen
    /// samples for it. Out-of-range classes read the wildcard bucket.
    #[must_use]
    pub fn gap_ewma(&self, class: u8) -> Option<f64> {
        self.states[Self::bucket(class)]
            .as_ref()
            .and_then(|s| s.ewma)
    }

    /// Mean current `kn` across every contacted class — the scalar the
    /// kn-over-time series plot.
    #[must_use]
    pub fn mean_kn(&self) -> f64 {
        let mut sum = 0usize;
        let mut count = 0usize;
        for state in self.states.iter().flatten() {
            sum += state.kn;
            count += 1;
        }
        if count == 0 {
            return self.config.initial_kn as f64;
        }
        sum as f64 / count as f64
    }

    /// The recorded `kn` changes, in adaptation order. Bounded: only the
    /// most recent [`TRAIL_CAPACITY`] adjustments are retained, so
    /// long-lived controllers do not grow without limit.
    #[must_use]
    pub fn trail(&self) -> &[KnAdjustment] {
        &self.trail
    }

    /// Iterates over `(class, current kn)` for every contacted class, in
    /// class order.
    pub fn class_widths(&self) -> impl Iterator<Item = (u8, usize)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|state| (idx as u8, state.kn)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, CapabilityRequirement, CapabilitySet, ConsumerId, QueryId};

    fn sample(consumer: f64, provider: f64) -> GapSample {
        GapSample::new(consumer, provider)
    }

    fn config() -> KnControllerConfig {
        KnControllerConfig {
            initial_kn: 4,
            min_kn: 2,
            max_kn: 8,
            alpha: 1.0, // no smoothing: tests see the windowed mean directly
            target_gap: 0.0,
            deadband: 0.1,
            step: 1,
            window: 16,
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        KnControllerConfig::default().validate().unwrap();
        let bad = |f: fn(&mut KnControllerConfig)| {
            let mut c = KnControllerConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(bad(|c| c.min_kn = 0).is_err());
        assert!(bad(|c| c.min_kn = 20).is_err());
        assert!(bad(|c| c.initial_kn = 1).is_err());
        assert!(bad(|c| c.alpha = 0.0).is_err());
        assert!(bad(|c| c.alpha = 1.5).is_err());
        assert!(bad(|c| c.alpha = f64::NAN).is_err());
        assert!(bad(|c| c.target_gap = f64::INFINITY).is_err());
        assert!(bad(|c| c.deadband = -0.1).is_err());
        assert!(bad(|c| c.step = 0).is_err());
        assert!(bad(|c| c.window = 0).is_err());
    }

    #[test]
    fn gap_above_band_shrinks_kn_to_the_floor() {
        let mut controller = KnController::new(config()).unwrap();
        for round in 0..5 {
            controller.observe(3, sample(0.9, 0.1));
            controller.adapt();
            let expected = (4usize.saturating_sub(round + 1)).max(2);
            assert_eq!(controller.current_kn(3), Some(expected), "round {round}");
        }
        // Clamped at min_kn, no further trail entries accumulate.
        assert_eq!(controller.current_kn(3), Some(2));
        assert_eq!(controller.trail().len(), 2);
        assert!(controller.gap_ewma(3).unwrap() > 0.7);
    }

    #[test]
    fn gap_below_band_widens_kn_to_the_ceiling() {
        let mut controller = KnController::new(config()).unwrap();
        for _ in 0..10 {
            controller.observe(0, sample(0.1, 0.9));
            controller.adapt();
        }
        assert_eq!(controller.current_kn(0), Some(8));
        let trail = controller.trail();
        assert_eq!(trail.len(), 4, "4 → 5 → 6 → 7 → 8");
        assert!(trail.windows(2).all(|w| w[0].round < w[1].round));
        assert!(trail.iter().all(|a| a.class == 0));
    }

    #[test]
    fn deadband_holds_kn_steady() {
        let mut controller = KnController::new(config()).unwrap();
        for _ in 0..10 {
            controller.observe(1, sample(0.55, 0.5)); // gap 0.05, inside ±0.1
            controller.adapt();
        }
        assert_eq!(controller.current_kn(1), Some(4));
        assert!(controller.trail().is_empty());
    }

    #[test]
    fn classes_adapt_independently() {
        let mut controller = KnController::new(config()).unwrap();
        for _ in 0..6 {
            controller.observe(0, sample(1.0, 0.0)); // shrink
            controller.observe(7, sample(0.0, 1.0)); // widen
            controller.adapt();
        }
        assert_eq!(controller.current_kn(0), Some(2));
        assert_eq!(controller.current_kn(7), Some(8));
        assert_eq!(controller.current_kn(5), None, "uncontacted class");
        let widths: Vec<(u8, usize)> = controller.class_widths().collect();
        assert_eq!(widths, vec![(0, 2), (7, 8)]);
        assert!((controller.mean_kn() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stale_classes_do_not_adapt_without_fresh_samples() {
        let mut controller = KnController::new(config()).unwrap();
        controller.observe(2, sample(1.0, 0.0));
        controller.adapt();
        assert_eq!(controller.current_kn(2), Some(3));
        // No new samples: ten rounds later the width is unchanged even
        // though the window still holds the old dissatisfied samples.
        for _ in 0..10 {
            controller.adapt();
        }
        assert_eq!(controller.current_kn(2), Some(3));
        assert_eq!(controller.rounds(), 11);
    }

    #[test]
    fn ewma_smooths_single_round_spikes() {
        let mut controller = KnController::new(KnControllerConfig {
            alpha: 0.2,
            ..config()
        })
        .unwrap();
        // Long calm history first.
        for _ in 0..5 {
            controller.observe(0, sample(0.5, 0.5));
            controller.adapt();
        }
        assert_eq!(controller.current_kn(0), Some(4));
        // One violent spike moves the EWMA by only alpha · window-mean — the
        // window itself also dilutes the spike, so kn must hold.
        controller.observe(0, sample(1.0, 0.0));
        controller.adapt();
        assert_eq!(controller.current_kn(0), Some(4));
    }

    #[test]
    fn controller_is_a_pure_function_of_the_sample_stream() {
        let run = || {
            let mut controller = KnController::new(KnControllerConfig::default()).unwrap();
            for i in 0..200u32 {
                let c = f64::from(i % 17) / 16.0;
                let p = f64::from(i % 5) / 8.0;
                controller.observe((i % 3) as u8, sample(c, p));
                if i % 10 == 9 {
                    controller.adapt();
                }
            }
            (
                controller.trail().to_vec(),
                controller.current_kn(0),
                controller.current_kn(1),
                controller.current_kn(2),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn class_of_picks_lowest_mentioned_class() {
        let q = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(9)).build();
        assert_eq!(KnController::class_of(&q), 9);

        let multi = Query::requiring(
            QueryId::new(2),
            ConsumerId::new(1),
            CapabilityRequirement::Any(CapabilitySet::from_capabilities([
                Capability::new(12),
                Capability::new(5),
            ])),
        )
        .build();
        assert_eq!(KnController::class_of(&multi), 5);

        let wildcard = Query::requiring(
            QueryId::new(3),
            ConsumerId::new(1),
            CapabilityRequirement::All(CapabilitySet::EMPTY),
        )
        .build();
        assert_eq!(KnController::class_of(&wildcard), WILDCARD_CLASS);
    }

    #[test]
    fn out_of_range_classes_read_and_write_the_wildcard_bucket() {
        let mut controller = KnController::new(config()).unwrap();
        controller.observe(200, sample(1.0, 0.0));
        controller.adapt();
        // The write landed in the wildcard bucket, and reads under the
        // foreign key see the same state — no silent asymmetry.
        assert_eq!(controller.current_kn(200), Some(3));
        assert_eq!(controller.current_kn(WILDCARD_CLASS), Some(3));
        assert_eq!(
            controller.gap_ewma(200),
            controller.gap_ewma(WILDCARD_CLASS)
        );
    }

    #[test]
    fn trail_is_bounded() {
        // Window of 1 so each round's mean is the last sample: alternating
        // extreme samples flip the width across the band every round,
        // recording one adjustment per round. The trail must stay capped.
        let mut controller = KnController::new(KnControllerConfig {
            window: 1,
            ..config()
        })
        .unwrap();
        for round in 0..(TRAIL_CAPACITY * 2) {
            let s = if round % 2 == 0 {
                sample(1.0, 0.0) // shrink
            } else {
                sample(0.0, 1.0) // widen
            };
            controller.observe(0, s);
            controller.adapt();
        }
        let trail = controller.trail();
        assert!(trail.len() <= TRAIL_CAPACITY);
        assert!(trail.len() >= TRAIL_CAPACITY / 2, "recent half retained");
        // The retained suffix is the most recent one.
        assert_eq!(trail.last().unwrap().round, controller.rounds());
    }

    #[test]
    fn step_size_scales_the_reaction() {
        let mut controller = KnController::new(KnControllerConfig {
            step: 3,
            ..config()
        })
        .unwrap();
        controller.observe(0, sample(0.0, 1.0));
        controller.adapt();
        assert_eq!(controller.current_kn(0), Some(7));
        controller.observe(0, sample(0.0, 1.0));
        controller.adapt();
        assert_eq!(controller.current_kn(0), Some(8), "clamped at max_kn");
    }
}
