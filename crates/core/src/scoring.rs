//! SQLB provider scoring (Definition 3) and the ω balance (Equation 2).
//!
//! The mediator scores a provider `p` for a query `q` by balancing the
//! provider's intention `PIq[p]` to perform `q` against the consumer's
//! intention `CIq[p]` to have `q` performed by `p`:
//!
//! ```text
//!             |  PIq[p]^ω · CIq[p]^(1−ω)                        if PIq[p] > 0 ∧ CIq[p] > 0
//! scrq(p) =   |
//!             | −( (1 − PIq[p] + ε)^ω · (1 − CIq[p] + ε)^(1−ω) ) otherwise
//! ```
//!
//! * In the **both-positive** branch the score is a weighted geometric mean
//!   in `(0, 1]`: larger intentions on the side with more weight pull the
//!   score up.
//! * In the **otherwise** branch at least one side does not want the
//!   interaction, so the score is negative; its magnitude grows with how much
//!   the weighted side *dislikes* the interaction, so "less disliked"
//!   providers still rank above "more disliked" ones. The ε > 0 term (the
//!   paper sets it to 1) keeps the magnitude strictly positive even when an
//!   intention equals 1, so the ranking never collapses to ties at zero.
//! * ω ∈ [0, 1] decides whose intention matters more. SbQA computes it from
//!   the satisfaction gap (Equation 2): `ω = ((δs(c) − δs(p)) + 1) / 2`, i.e.
//!   the *less satisfied* side gets more weight. Applications may fix ω
//!   instead (Scenario 6).

use sbqa_types::{Intention, OmegaPolicy, Satisfaction};

/// The inputs of one score evaluation, mostly useful for ablation benches
/// that sweep them independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreInputs {
    /// The provider's intention to perform the query (`PIq[p]`).
    pub provider_intention: Intention,
    /// The consumer's intention towards the provider (`CIq[p]`).
    pub consumer_intention: Intention,
    /// The balance ω ∈ [0, 1].
    pub omega: f64,
    /// The ε > 0 of Definition 3.
    pub epsilon: f64,
}

impl ScoreInputs {
    /// Evaluates Definition 3 on these inputs.
    #[must_use]
    pub fn score(&self) -> f64 {
        provider_score(
            self.provider_intention,
            self.consumer_intention,
            self.omega,
            self.epsilon,
        )
    }
}

/// Computes the provider score of Definition 3.
///
/// `omega` is clamped to `[0, 1]` and `epsilon` to a small positive minimum,
/// so the function is total and never returns NaN.
#[must_use]
pub fn provider_score(
    provider_intention: Intention,
    consumer_intention: Intention,
    omega: f64,
    epsilon: f64,
) -> f64 {
    let omega = if omega.is_finite() {
        omega.clamp(0.0, 1.0)
    } else {
        0.5
    };
    let epsilon = if epsilon.is_finite() && epsilon > 0.0 {
        epsilon
    } else {
        1.0
    };
    let pi = provider_intention.value();
    let ci = consumer_intention.value();

    if pi > 0.0 && ci > 0.0 {
        // Weighted geometric mean of two values in (0, 1]: always in (0, 1].
        pi.powf(omega) * ci.powf(1.0 - omega)
    } else {
        // Both factors are >= epsilon > 0, so the magnitude is positive and
        // the branch is strictly negative: any mutually-wanted pairing beats
        // any pairing one side dislikes.
        -((1.0 - pi + epsilon).powf(omega) * (1.0 - ci + epsilon).powf(1.0 - omega))
    }
}

/// Resolves the ω to use for a mediation, given the policy and the current
/// satisfaction of the consumer and the provider (Equation 2 for the
/// adaptive policy).
#[must_use]
pub fn resolve_omega(
    policy: OmegaPolicy,
    consumer_satisfaction: Satisfaction,
    provider_satisfaction: Satisfaction,
) -> f64 {
    match policy {
        OmegaPolicy::Adaptive => consumer_satisfaction.omega_against(provider_satisfaction),
        OmegaPolicy::Fixed(w) => {
            if w.is_finite() {
                w.clamp(0.0, 1.0)
            } else {
                0.5
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn i(v: f64) -> Intention {
        Intention::new(v)
    }

    #[test]
    fn positive_branch_is_weighted_geometric_mean() {
        // ω = 0.5: plain geometric mean.
        let s = provider_score(i(0.64), i(0.25), 0.5, 1.0);
        assert!((s - (0.64f64 * 0.25).sqrt()).abs() < 1e-12);

        // ω = 1: only the provider's intention matters.
        let s = provider_score(i(0.3), i(0.9), 1.0, 1.0);
        assert!((s - 0.3).abs() < 1e-12);

        // ω = 0: only the consumer's intention matters.
        let s = provider_score(i(0.3), i(0.9), 0.0, 1.0);
        assert!((s - 0.9).abs() < 1e-12);
    }

    #[test]
    fn negative_branch_triggers_when_either_side_is_non_positive() {
        assert!(provider_score(i(-0.5), i(0.9), 0.5, 1.0) < 0.0);
        assert!(provider_score(i(0.9), i(-0.5), 0.5, 1.0) < 0.0);
        assert!(provider_score(i(0.0), i(0.9), 0.5, 1.0) < 0.0);
        assert!(provider_score(i(-1.0), i(-1.0), 0.5, 1.0) < 0.0);
    }

    #[test]
    fn any_mutual_positive_beats_any_negative_branch_score() {
        let best_negative = provider_score(i(0.0), i(1.0), 0.5, 1.0);
        let worst_positive = provider_score(i(0.001), i(0.001), 0.5, 1.0);
        assert!(worst_positive > best_negative);
    }

    #[test]
    fn negative_branch_still_ranks_less_disliked_higher() {
        // Provider A is disliked (-0.9) by the consumer; provider B only
        // mildly (-0.1). B must score higher (less negative).
        let a = provider_score(i(0.8), i(-0.9), 0.5, 1.0);
        let b = provider_score(i(0.8), i(-0.1), 0.5, 1.0);
        assert!(b > a);
    }

    #[test]
    fn epsilon_prevents_zero_scores_at_full_intention() {
        // PIq[p] = 1 in the negative branch: without ε the factor (1 - 1)
        // would collapse the magnitude to zero regardless of the other side.
        let s = provider_score(i(1.0), i(-1.0), 0.5, 1.0);
        assert!(s < 0.0);
        assert!(s.abs() > 0.0);
    }

    #[test]
    fn omega_weighting_shifts_the_balance() {
        // Provider loves the query, consumer dislikes the provider.
        let provider_favoured = provider_score(i(0.9), i(-0.3), 1.0, 1.0);
        let consumer_favoured = provider_score(i(0.9), i(-0.3), 0.0, 1.0);
        // With all the weight on the provider (ω = 1) the score is less
        // negative than with all the weight on the unhappy consumer.
        assert!(provider_favoured > consumer_favoured);
    }

    #[test]
    fn degenerate_omega_and_epsilon_are_sanitised() {
        let s = provider_score(i(0.5), i(0.5), f64::NAN, f64::NAN);
        assert!(s.is_finite());
        let s = provider_score(i(0.5), i(0.5), 7.0, -3.0);
        // omega clamps to 1 and epsilon falls back to 1: score = 0.5^1 * 0.5^0.
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resolve_omega_follows_policy() {
        // Adaptive: Equation 2.
        let w = resolve_omega(
            OmegaPolicy::Adaptive,
            Satisfaction::new(0.9),
            Satisfaction::new(0.1),
        );
        assert!((w - 0.9).abs() < 1e-12);
        // Fixed values are clamped.
        assert_eq!(
            resolve_omega(
                OmegaPolicy::Fixed(0.25),
                Satisfaction::MAX,
                Satisfaction::MIN
            ),
            0.25
        );
        assert_eq!(
            resolve_omega(
                OmegaPolicy::Fixed(3.0),
                Satisfaction::MAX,
                Satisfaction::MIN
            ),
            1.0
        );
        assert_eq!(
            resolve_omega(
                OmegaPolicy::Fixed(f64::NAN),
                Satisfaction::MAX,
                Satisfaction::MIN
            ),
            0.5
        );
    }

    #[test]
    fn score_inputs_struct_matches_free_function() {
        let inputs = ScoreInputs {
            provider_intention: i(0.4),
            consumer_intention: i(0.6),
            omega: 0.3,
            epsilon: 1.0,
        };
        assert_eq!(inputs.score(), provider_score(i(0.4), i(0.6), 0.3, 1.0));
    }

    proptest! {
        #[test]
        fn prop_score_is_finite(
            pi in -1.0f64..=1.0,
            ci in -1.0f64..=1.0,
            omega in 0.0f64..=1.0,
            eps in 0.001f64..=2.0,
        ) {
            let s = provider_score(i(pi), i(ci), omega, eps);
            prop_assert!(s.is_finite());
        }

        #[test]
        fn prop_sign_matches_definition(
            pi in -1.0f64..=1.0,
            ci in -1.0f64..=1.0,
            omega in 0.0f64..=1.0,
        ) {
            let s = provider_score(i(pi), i(ci), omega, 1.0);
            if pi > 0.0 && ci > 0.0 {
                prop_assert!(s > 0.0);
            } else {
                prop_assert!(s < 0.0);
            }
        }

        #[test]
        fn prop_positive_branch_monotone_in_provider_intention(
            lo in 0.01f64..=1.0,
            hi in 0.01f64..=1.0,
            ci in 0.01f64..=1.0,
            omega in 0.01f64..=1.0,
        ) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let s_lo = provider_score(i(lo), i(ci), omega, 1.0);
            let s_hi = provider_score(i(hi), i(ci), omega, 1.0);
            prop_assert!(s_hi >= s_lo - 1e-12);
        }

        #[test]
        fn prop_positive_branch_bounded_by_unit(
            pi in 0.001f64..=1.0,
            ci in 0.001f64..=1.0,
            omega in 0.0f64..=1.0,
        ) {
            let s = provider_score(i(pi), i(ci), omega, 1.0);
            prop_assert!(s <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_adaptive_omega_in_unit_interval(c in 0.0f64..=1.0, p in 0.0f64..=1.0) {
            let w = resolve_omega(
                OmegaPolicy::Adaptive,
                Satisfaction::new(c),
                Satisfaction::new(p),
            );
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }
}
