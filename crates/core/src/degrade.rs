//! The three-tier degradation ladder: deterministic admission control for
//! the regime *past* saturation.
//!
//! SbQA's premise is that the mediator keeps both market sides satisfied
//! under load it does not control — which includes load it cannot absorb.
//! This module defines what the system does when the ingest queue grows
//! faster than mediation drains it, as an explicit, deterministic ladder:
//!
//! 1. **ShrinkKn** — clamp the KnBest exploration width toward a floor. The
//!    allocation stays intention-aware (SQLB scoring over a narrower `Kn`),
//!    it just explores less. Cheapest quality concession first.
//! 2. **Baseline** — fall back to a capacity-based allocation
//!    ([`baseline_allocate_into`]): no random pre-selection, no scoring over
//!    `kn` candidates, intentions gathered for the winners only.
//! 3. **Shed** — reject the query before mediation, in stable
//!    `(VirtualTime, QueryId)` arrival order, so the shed *set* is a pure
//!    function of `(seed, stream)`.
//!
//! ## Why the ladder is deterministic
//!
//! Physical queue depth is wall-clock-racy: it depends on thread scheduling,
//! so tier decisions keyed on it would differ run to run. The ladder instead
//! tracks a *modeled* depth — a leaky bucket over the stream's own virtual
//! time: every admitted query deepens the bucket by one, and the bucket
//! leaks [`DegradationConfig::drain_rate`] queries per virtual second of
//! `issued_at` progress. Queries are observed in `(VirtualTime, QueryId)`
//! order per shard, so the modeled depth — and with it every tier
//! transition and every shed decision — is byte-reproducible per seed and
//! independent of ingest chunk sizes and thread timing. The bounded ring in
//! `sbqa-service` bounds the *physical* queue; this ladder decides
//! *degradation*, and only the ladder's decisions reach the outcome stream.
//!
//! Hysteresis keeps the ladder from flapping at a threshold: a tier is
//! entered at `threshold × capacity` and left only once the modeled depth
//! falls below `(threshold − hysteresis) × capacity`.

use serde::{Deserialize, Serialize};

use sbqa_types::{f64_total_cmp, ProviderId, Query, SbqaError, SbqaResult, VirtualTime};

use crate::allocator::{AllocationDecision, Candidates, IntentionOracle, ProposalRecord};

/// How many candidates the capacity fallback considers, counted from the
/// front of the candidate view. Bounds the fallback's per-query cost on huge
/// capability classes while keeping the choice deterministic (the view's
/// position order is registry order, which is replicated state).
pub const BASELINE_CONSIDERATION: usize = 64;

/// The degradation tier a query is mediated under. Ordered by severity:
/// `Normal < ShrinkKn < Baseline < Shed`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum DegradationTier {
    /// Full SbQA mediation at the controller-chosen exploration width.
    #[default]
    Normal,
    /// SbQA mediation with `kn` clamped to the configured floor.
    ShrinkKn,
    /// Capacity-based fallback allocation; no KnBest draw, no SQLB scoring.
    Baseline,
    /// Admission control rejects queries before mediation.
    Shed,
}

impl DegradationTier {
    /// Short stable label, for tables and digests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DegradationTier::Normal => "normal",
            DegradationTier::ShrinkKn => "shrink-kn",
            DegradationTier::Baseline => "baseline",
            DegradationTier::Shed => "shed",
        }
    }
}

/// The ladder's verdict on one arriving query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Mediate the query under the given tier (never [`DegradationTier::Shed`]).
    Admit(DegradationTier),
    /// Reject the query before mediation.
    Shed,
}

/// What happened to a query, as recorded in the replication journal: the
/// standby must replay mediated queries under the same tier the primary used
/// and skip shed ones, or promotion would fork the decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryDisposition {
    /// The query was mediated under this tier.
    Mediated(DegradationTier),
    /// The query was shed by admission control.
    Shed,
}

/// Configuration of the [`DegradationLadder`].
///
/// Thresholds are fractions of `capacity`; the defaults put most of the
/// overload region in the ShrinkKn band (quality degrades gently first) and
/// keep the Baseline band thin, with shedding as the last resort.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Capacity of the modeled queue, in queries. Also the capacity the
    /// service layer gives its physical ingest ring.
    pub capacity: usize,
    /// Queries the modeled queue drains per virtual second. Set this to the
    /// arrival rate the deployment is provisioned for: a 1× stream then
    /// stays at depth ≈ 0 and a 10× step builds pressure at 9× that rate.
    pub drain_rate: f64,
    /// Enter [`DegradationTier::ShrinkKn`] at `shrink_threshold × capacity`.
    pub shrink_threshold: f64,
    /// Enter [`DegradationTier::Baseline`] at `baseline_threshold × capacity`.
    pub baseline_threshold: f64,
    /// Enter [`DegradationTier::Shed`] at `shed_threshold × capacity`.
    pub shed_threshold: f64,
    /// A tier is left only once depth falls `hysteresis × capacity` below
    /// its entry threshold.
    pub hysteresis: f64,
    /// The exploration-width floor ShrinkKn clamps `kn` to.
    pub floor_kn: usize,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            drain_rate: 1000.0,
            shrink_threshold: 0.25,
            baseline_threshold: 0.85,
            shed_threshold: 0.90,
            hysteresis: 0.05,
            floor_kn: 2,
        }
    }
}

impl DegradationConfig {
    /// Checks every field against its legal domain.
    pub fn validate(&self) -> SbqaResult<()> {
        if self.capacity == 0 {
            return Err(SbqaError::invalid_config(
                "degradation capacity must be ≥ 1",
            ));
        }
        if !(self.drain_rate.is_finite() && self.drain_rate > 0.0) {
            return Err(SbqaError::invalid_config(
                "degradation drain_rate must be finite and positive",
            ));
        }
        let ordered = 0.0 < self.shrink_threshold
            && self.shrink_threshold <= self.baseline_threshold
            && self.baseline_threshold <= self.shed_threshold
            && self.shed_threshold <= 1.0;
        if !ordered {
            return Err(SbqaError::invalid_config(
                "degradation thresholds must satisfy 0 < shrink ≤ baseline ≤ shed ≤ 1",
            ));
        }
        if !(self.hysteresis.is_finite()
            && self.hysteresis >= 0.0
            && self.hysteresis < self.shrink_threshold)
        {
            return Err(SbqaError::invalid_config(
                "degradation hysteresis must be in [0, shrink_threshold)",
            ));
        }
        if self.floor_kn == 0 {
            return Err(SbqaError::invalid_config(
                "degradation floor_kn must be ≥ 1",
            ));
        }
        Ok(())
    }
}

/// Per-tier admission counters, surfaced through `ShardReport` /
/// `ServiceReport` like the cache and replication stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Queries admitted at full mediation quality.
    pub normal: u64,
    /// Queries admitted with the exploration width clamped to the floor.
    pub shrink_kn: u64,
    /// Queries admitted under the capacity-based fallback.
    pub baseline: u64,
    /// Queries rejected by admission control.
    pub shed: u64,
    /// Tier transitions the ladder performed.
    pub transitions: u64,
}

impl DegradationStats {
    /// Queries that were admitted (all tiers below Shed).
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.normal + self.shrink_kn + self.baseline
    }

    /// Every query the ladder observed, admitted or shed.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.admitted() + self.shed
    }

    /// `true` if any query was admitted below full quality or shed.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.shrink_kn + self.baseline + self.shed > 0
    }

    /// Folds another ladder's counters into this one (used when merging
    /// shard reports into a service report).
    pub fn merge(&mut self, other: &DegradationStats) {
        self.normal += other.normal;
        self.shrink_kn += other.shrink_kn;
        self.baseline += other.baseline;
        self.shed += other.shed;
        self.transitions += other.transitions;
    }
}

/// The deterministic leaky-bucket ladder itself.
///
/// Feed it every arriving query's `issued_at` in `(VirtualTime, QueryId)`
/// order via [`DegradationLadder::observe_arrival`]; it answers with the
/// tier to mediate under, or [`Admission::Shed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationLadder {
    config: DegradationConfig,
    /// Modeled queue depth, in queries.
    depth: f64,
    /// Virtual time of the last observed arrival (the leak's clock).
    last: VirtualTime,
    tier: DegradationTier,
    stats: DegradationStats,
}

impl DegradationLadder {
    /// Builds a ladder from a validated configuration.
    pub fn new(config: DegradationConfig) -> SbqaResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            depth: 0.0,
            last: VirtualTime::ZERO,
            tier: DegradationTier::Normal,
            stats: DegradationStats::default(),
        })
    }

    /// Observes one arriving query and decides its admission. Must be called
    /// in `(issued_at, id)` order per shard; `issued_at` regressions are
    /// treated as simultaneous arrivals (no negative leak).
    pub fn observe_arrival(&mut self, at: VirtualTime) -> Admission {
        let elapsed = at.since(self.last).seconds();
        if elapsed > 0.0 {
            self.depth = (self.depth - self.config.drain_rate * elapsed).max(0.0);
            self.last = at;
        }
        self.adjust_tier();
        if self.tier == DegradationTier::Shed {
            self.stats.shed += 1;
            return Admission::Shed;
        }
        self.depth += 1.0;
        match self.tier {
            DegradationTier::Normal => self.stats.normal += 1,
            DegradationTier::ShrinkKn => self.stats.shrink_kn += 1,
            DegradationTier::Baseline => self.stats.baseline += 1,
            DegradationTier::Shed => {}
        }
        Admission::Admit(self.tier)
    }

    /// Moves the tier with hysteresis: escalate as soon as an entry
    /// threshold is crossed, relax only once depth is a full hysteresis band
    /// below it.
    fn adjust_tier(&mut self) {
        let cap = self.config.capacity as f64;
        let hyst = self.config.hysteresis * cap;
        let entry = |threshold: f64| threshold * cap;
        let escalate = if self.depth >= entry(self.config.shed_threshold) {
            DegradationTier::Shed
        } else if self.depth >= entry(self.config.baseline_threshold) {
            DegradationTier::Baseline
        } else if self.depth >= entry(self.config.shrink_threshold) {
            DegradationTier::ShrinkKn
        } else {
            DegradationTier::Normal
        };
        let relax = if self.depth >= entry(self.config.shed_threshold) - hyst {
            DegradationTier::Shed
        } else if self.depth >= entry(self.config.baseline_threshold) - hyst {
            DegradationTier::Baseline
        } else if self.depth >= entry(self.config.shrink_threshold) - hyst {
            DegradationTier::ShrinkKn
        } else {
            DegradationTier::Normal
        };
        let next = if escalate > self.tier {
            escalate
        } else if relax < self.tier {
            relax
        } else {
            self.tier
        };
        if next != self.tier {
            self.tier = next;
            self.stats.transitions += 1;
        }
    }

    /// The tier the ladder currently sits in.
    #[must_use]
    pub fn tier(&self) -> DegradationTier {
        self.tier
    }

    /// The current modeled queue depth.
    #[must_use]
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// The ladder's admission counters so far.
    #[must_use]
    pub fn stats(&self) -> DegradationStats {
        self.stats
    }

    /// The configuration the ladder runs with.
    #[must_use]
    pub fn config(&self) -> &DegradationConfig {
        &self.config
    }
}

/// The Baseline-tier allocation: a deterministic capacity-based fallback.
///
/// Considers the first [`BASELINE_CONSIDERATION`] candidates of the view (in
/// registry order), ranks them by `(utilization / capacity, id)` ascending
/// and selects the `min(q.n, considered)` least-loaded. No RNG is consumed,
/// no scoring over `kn` runs; intentions are gathered for the winners only,
/// so the satisfaction registry keeps tracking — at proposal breadth zero —
/// while the system rides out the overload.
pub fn baseline_allocate_into(
    query: &Query,
    candidates: Candidates<'_>,
    oracle: &dyn IntentionOracle,
    decision: &mut AllocationDecision,
) -> SbqaResult<()> {
    if candidates.is_empty() {
        return Err(SbqaError::NoProviderOnline { query: query.id });
    }
    decision.clear();

    let considered = candidates.len().min(BASELINE_CONSIDERATION);
    // (relative load, id) keys of the consideration prefix; small and
    // stack-friendly at the cap of 64.
    let mut keys: Vec<(f64, ProviderId)> = Vec::with_capacity(considered);
    for pos in 0..considered {
        let snapshot = candidates.get(pos);
        let load = if snapshot.capacity > 0.0 {
            snapshot.utilization / snapshot.capacity
        } else {
            f64::INFINITY
        };
        keys.push((load, snapshot.id));
    }
    keys.sort_unstable_by(|a, b| f64_total_cmp(a.0, b.0).then_with(|| a.1.cmp(&b.1)));

    let winner_count = query.replication.min(considered);
    for &(_, provider) in keys.iter().take(winner_count) {
        let consumer_intention = oracle.consumer_intention(query, provider);
        let provider_intention = oracle.provider_intention(provider, query);
        decision.proposals.push(ProposalRecord {
            provider,
            provider_intention,
            consumer_intention,
            score: None,
            selected: true,
        });
        decision.selected.push(provider);
    }
    decision.omega = None;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::StaticIntentions;
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, Intention, ProviderSnapshot, QueryId};

    fn config() -> DegradationConfig {
        DegradationConfig {
            capacity: 100,
            drain_rate: 10.0,
            ..DegradationConfig::default()
        }
    }

    #[test]
    fn tiers_are_ordered_by_severity() {
        assert!(DegradationTier::Normal < DegradationTier::ShrinkKn);
        assert!(DegradationTier::ShrinkKn < DegradationTier::Baseline);
        assert!(DegradationTier::Baseline < DegradationTier::Shed);
        assert_eq!(DegradationTier::default(), DegradationTier::Normal);
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        assert!(config().validate().is_ok());
        let bad = DegradationConfig {
            capacity: 0,
            ..config()
        };
        assert!(bad.validate().is_err());
        let bad = DegradationConfig {
            drain_rate: 0.0,
            ..config()
        };
        assert!(bad.validate().is_err());
        let bad = DegradationConfig {
            shrink_threshold: 0.95,
            ..config()
        };
        assert!(bad.validate().is_err(), "shrink above baseline");
        let bad = DegradationConfig {
            hysteresis: 0.5,
            ..config()
        };
        assert!(bad.validate().is_err(), "hysteresis swallows shrink band");
        let bad = DegradationConfig {
            floor_kn: 0,
            ..config()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sustainable_arrivals_stay_normal() {
        // 1 query per 0.2 virtual seconds against a drain of 10/s: the
        // bucket never accumulates.
        let mut ladder = DegradationLadder::new(config()).unwrap();
        for i in 0..500u64 {
            let admission = ladder.observe_arrival(VirtualTime::new(i as f64 * 0.2));
            assert_eq!(admission, Admission::Admit(DegradationTier::Normal));
        }
        assert_eq!(ladder.tier(), DegradationTier::Normal);
        assert_eq!(ladder.stats().transitions, 0);
        assert_eq!(ladder.stats().admitted(), 500);
    }

    #[test]
    fn sustained_overload_climbs_the_ladder_in_order() {
        // 100 arrivals per virtual second against a drain of 10/s: depth
        // grows ~90/s and must walk Normal → ShrinkKn → Baseline → Shed.
        let mut ladder = DegradationLadder::new(config()).unwrap();
        let mut tiers = Vec::new();
        for i in 0..300u64 {
            let at = VirtualTime::new(i as f64 * 0.01);
            match ladder.observe_arrival(at) {
                Admission::Admit(tier) => {
                    if tiers.last() != Some(&tier) {
                        tiers.push(tier);
                    }
                }
                Admission::Shed => {
                    if tiers.last() != Some(&DegradationTier::Shed) {
                        tiers.push(DegradationTier::Shed);
                    }
                }
            }
        }
        assert_eq!(
            tiers[..4],
            [
                DegradationTier::Normal,
                DegradationTier::ShrinkKn,
                DegradationTier::Baseline,
                DegradationTier::Shed,
            ],
            "tiers engage strictly in severity order"
        );
        // At saturation the ladder oscillates between Shed (which lets the
        // bucket leak) and Baseline (which refills it) — by design, the
        // system serves what it can at the cheapest quality and sheds the
        // rest, never dropping below Baseline while pressure persists.
        assert!(
            tiers[3..].iter().all(|&t| t >= DegradationTier::Baseline),
            "steady overload stays in the Baseline/Shed band: {tiers:?}"
        );
        let stats = ladder.stats();
        assert!(stats.shed > 0);
        assert!(stats.degraded());
        assert_eq!(stats.observed(), 300);
        assert!(stats.transitions >= 3);
    }

    #[test]
    fn shed_queries_do_not_deepen_the_bucket() {
        let mut ladder = DegradationLadder::new(config()).unwrap();
        // Simultaneous arrivals push straight past every threshold.
        for _ in 0..95 {
            ladder.observe_arrival(VirtualTime::ZERO);
        }
        assert_eq!(ladder.tier(), DegradationTier::Shed);
        let depth = ladder.depth();
        for _ in 0..50 {
            assert_eq!(ladder.observe_arrival(VirtualTime::ZERO), Admission::Shed);
        }
        assert_eq!(
            ladder.depth(),
            depth,
            "shed arrivals leave the modeled depth unchanged"
        );
    }

    #[test]
    fn hysteresis_holds_the_tier_through_small_dips() {
        let mut ladder = DegradationLadder::new(config()).unwrap();
        // Push depth to 30 (ShrinkKn enters at 25).
        for _ in 0..30 {
            ladder.observe_arrival(VirtualTime::ZERO);
        }
        assert_eq!(ladder.tier(), DegradationTier::ShrinkKn);
        // Leak down to ~21: inside the hysteresis band (exit below 20).
        let admission = ladder.observe_arrival(VirtualTime::new(1.0));
        assert_eq!(admission, Admission::Admit(DegradationTier::ShrinkKn));
        // Leak well below the band: the ladder relaxes.
        let admission = ladder.observe_arrival(VirtualTime::new(2.0));
        assert_eq!(admission, Admission::Admit(DegradationTier::Normal));
        assert_eq!(ladder.stats().transitions, 2);
    }

    #[test]
    fn ladder_is_a_pure_function_of_the_arrival_stream() {
        let arrivals: Vec<f64> = (0..400).map(|i| (i as f64) * 0.013).collect();
        let run = || {
            let mut ladder = DegradationLadder::new(config()).unwrap();
            let decisions: Vec<Admission> = arrivals
                .iter()
                .map(|&at| ladder.observe_arrival(VirtualTime::new(at)))
                .collect();
            (decisions, ladder.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_merge_is_field_wise_addition() {
        let mut a = DegradationStats {
            normal: 1,
            shrink_kn: 2,
            baseline: 3,
            shed: 4,
            transitions: 5,
        };
        let b = DegradationStats {
            normal: 10,
            shrink_kn: 20,
            baseline: 30,
            shed: 40,
            transitions: 50,
        };
        a.merge(&b);
        assert_eq!(a.normal, 11);
        assert_eq!(a.shrink_kn, 22);
        assert_eq!(a.baseline, 33);
        assert_eq!(a.shed, 44);
        assert_eq!(a.transitions, 55);
        assert_eq!(a.admitted(), 66);
        assert_eq!(a.observed(), 110);
    }

    fn snapshots(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| {
                let mut s = ProviderSnapshot::idle(
                    ProviderId::new(i),
                    CapabilitySet::singleton(Capability::new(0)),
                    1.0 + (i % 3) as f64,
                );
                s.utilization = (i % 7) as f64;
                s
            })
            .collect()
    }

    fn query(id: u64, replication: usize) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    #[test]
    fn baseline_fallback_picks_least_relative_load_with_id_tiebreak() {
        let providers = snapshots(10);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        let mut decision = AllocationDecision::default();
        baseline_allocate_into(
            &query(1, 2),
            Candidates::from_slice(&providers),
            &oracle,
            &mut decision,
        )
        .unwrap();
        // Providers 0 and 7 have utilization 0 (relative load 0): lowest id
        // first.
        assert_eq!(
            decision.selected,
            vec![ProviderId::new(0), ProviderId::new(7)]
        );
        assert_eq!(decision.proposals.len(), 2, "winners only, no Kn breadth");
        assert!(decision.proposals.iter().all(|p| p.score.is_none()));
        assert!(decision.omega.is_none());
    }

    #[test]
    fn baseline_fallback_bounds_consideration_and_is_deterministic() {
        let providers = snapshots(500);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.2), Intention::new(0.1));
        let run = || {
            let mut decision = AllocationDecision::default();
            baseline_allocate_into(
                &query(9, 3),
                Candidates::from_slice(&providers),
                &oracle,
                &mut decision,
            )
            .unwrap();
            decision
        };
        let first = run();
        assert_eq!(first, run());
        // Every winner sits inside the consideration prefix.
        assert!(first
            .selected
            .iter()
            .all(|p| p.raw() < BASELINE_CONSIDERATION as u64));
    }

    #[test]
    fn baseline_fallback_starves_on_empty_candidates() {
        let oracle = StaticIntentions::new();
        let mut decision = AllocationDecision::default();
        let err = baseline_allocate_into(
            &query(1, 1),
            Candidates::from_slice(&[]),
            &oracle,
            &mut decision,
        )
        .unwrap_err();
        assert!(err.is_starvation());
    }
}
