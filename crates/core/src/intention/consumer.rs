//! Consumer-side intention strategies.
//!
//! A consumer's intention `CIq[p]` expresses how much it wants its query `q`
//! to be performed by provider `p`. The paper's examples are preferences
//! based on reputation or expected quality of service; Scenario 5 switches
//! consumers to caring only about response times.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sbqa_types::{Intention, ProviderId};

use super::load_to_intention;
use crate::allocator::ProviderSnapshot;

/// How a consumer derives its intention towards a provider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ConsumerIntentionStrategy {
    /// Intention is the consumer's static preference for the provider
    /// (reputation, trust, past experience). This is the default behaviour
    /// in the BOINC scenarios.
    #[default]
    Preference,
    /// Intention depends only on the provider's current load: the less
    /// utilized the provider, the sooner the results, the higher the
    /// intention (Scenario 5 consumers).
    ResponseTimeDriven {
        /// Backlog (in virtual seconds) the consumer considers acceptable.
        acceptable_backlog: f64,
    },
    /// Blend of preference and expected response time.
    /// `preference_weight = 1` degenerates to [`Self::Preference`],
    /// `0` to pure response-time-driven behaviour.
    Hybrid {
        /// Weight of the static preference in `[0, 1]`.
        preference_weight: f64,
        /// Backlog (in virtual seconds) the consumer considers acceptable.
        acceptable_backlog: f64,
    },
}

/// A consumer's intention-producing profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerProfile {
    /// The strategy used to combine the signals below.
    pub strategy: ConsumerIntentionStrategy,
    preferences: BTreeMap<ProviderId, Intention>,
    default_preference: Intention,
}

impl Default for ConsumerProfile {
    fn default() -> Self {
        Self::new(ConsumerIntentionStrategy::Preference, Intention::NEUTRAL)
    }
}

impl ConsumerProfile {
    /// Creates a profile with the given strategy and default preference for
    /// providers that have no explicit entry.
    #[must_use]
    pub fn new(strategy: ConsumerIntentionStrategy, default_preference: Intention) -> Self {
        Self {
            strategy,
            preferences: BTreeMap::new(),
            default_preference,
        }
    }

    /// Sets the static preference towards one provider.
    pub fn set_preference(&mut self, provider: ProviderId, preference: Intention) {
        self.preferences.insert(provider, preference);
    }

    /// Builder-style version of [`ConsumerProfile::set_preference`].
    #[must_use]
    pub fn with_preference(mut self, provider: ProviderId, preference: Intention) -> Self {
        self.set_preference(provider, preference);
        self
    }

    /// The static preference towards a provider (falling back to the default).
    #[must_use]
    pub fn preference_for(&self, provider: ProviderId) -> Intention {
        self.preferences
            .get(&provider)
            .copied()
            .unwrap_or(self.default_preference)
    }

    /// Number of providers with an explicit preference.
    #[must_use]
    pub fn explicit_preferences(&self) -> usize {
        self.preferences.len()
    }

    /// Computes the intention `CIq[p]` towards the provider described by
    /// `snapshot`, given the chosen strategy.
    #[must_use]
    pub fn intention_for(&self, snapshot: &ProviderSnapshot) -> Intention {
        let preference = self.preference_for(snapshot.id);
        match self.strategy {
            ConsumerIntentionStrategy::Preference => preference,
            ConsumerIntentionStrategy::ResponseTimeDriven { acceptable_backlog } => {
                load_to_intention(snapshot.utilization, acceptable_backlog)
            }
            ConsumerIntentionStrategy::Hybrid {
                preference_weight,
                acceptable_backlog,
            } => {
                let load = load_to_intention(snapshot.utilization, acceptable_backlog);
                // blend(a, b, t) returns a when t = 0, so t is the weight of
                // the *load* signal.
                preference.blend(load, 1.0 - preference_weight.clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::CapabilitySet;

    fn snapshot(id: u64, utilization: f64) -> ProviderSnapshot {
        ProviderSnapshot {
            id: ProviderId::new(id),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0,
            utilization,
            queue_length: 0,
            online: true,
        }
    }

    #[test]
    fn preference_strategy_reads_the_preference_map() {
        let profile =
            ConsumerProfile::new(ConsumerIntentionStrategy::Preference, Intention::new(-0.2))
                .with_preference(ProviderId::new(1), Intention::new(0.9));

        assert_eq!(
            profile.intention_for(&snapshot(1, 100.0)),
            Intention::new(0.9),
            "preference-driven consumers ignore load"
        );
        assert_eq!(
            profile.intention_for(&snapshot(2, 0.0)),
            Intention::new(-0.2),
            "unknown providers get the default preference"
        );
        assert_eq!(profile.explicit_preferences(), 1);
    }

    #[test]
    fn response_time_strategy_prefers_idle_providers() {
        let profile = ConsumerProfile::new(
            ConsumerIntentionStrategy::ResponseTimeDriven {
                acceptable_backlog: 2.0,
            },
            Intention::new(0.9),
        );
        let idle = profile.intention_for(&snapshot(1, 0.0));
        let busy = profile.intention_for(&snapshot(1, 10.0));
        assert_eq!(idle, Intention::MAX);
        assert!(busy < idle);
        assert!(busy.value() < 0.0);
    }

    #[test]
    fn hybrid_strategy_interpolates_between_signals() {
        let mut profile = ConsumerProfile::new(
            ConsumerIntentionStrategy::Hybrid {
                preference_weight: 0.5,
                acceptable_backlog: 1.0,
            },
            Intention::NEUTRAL,
        );
        profile.set_preference(ProviderId::new(1), Intention::new(1.0));

        // Idle provider: both signals are +1.
        assert_eq!(profile.intention_for(&snapshot(1, 0.0)), Intention::MAX);
        // Heavily loaded provider: load signal ≈ -1, preference = +1, blend ≈ 0.
        let loaded = profile.intention_for(&snapshot(1, 1e9));
        assert!(loaded.value().abs() < 0.01);

        // preference_weight = 1 behaves exactly like Preference.
        let pure = ConsumerProfile::new(
            ConsumerIntentionStrategy::Hybrid {
                preference_weight: 1.0,
                acceptable_backlog: 1.0,
            },
            Intention::new(0.4),
        );
        assert_eq!(pure.intention_for(&snapshot(3, 1e9)), Intention::new(0.4));
    }

    #[test]
    fn default_profile_is_neutral_preference() {
        let profile = ConsumerProfile::default();
        assert_eq!(profile.intention_for(&snapshot(1, 0.0)), Intention::NEUTRAL);
    }
}
