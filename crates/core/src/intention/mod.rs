//! Intention computation strategies.
//!
//! SbQA never dictates *how* a participant computes its intentions — that is
//! precisely the autonomy the framework preserves. The demo paper, however,
//! relies on a handful of concrete behaviours for its scenarios:
//!
//! * **preference-driven** participants whose intentions come from static
//!   likes/dislikes (a volunteer that loves SETI@home, a project that trusts
//!   reputable volunteers);
//! * **performance-driven** participants (Scenario 5): consumers that only
//!   care about response time and providers that only care about their own
//!   load;
//! * **hybrid** participants that trade one for the other, which is the
//!   flexibility the SQLB framework advertises (consumers trading their
//!   preferences for providers' reputation, providers trading their
//!   preferences for their utilization).
//!
//! [`ConsumerProfile`] and [`ProviderProfile`] package those behaviours so
//! the simulator (and the interactive example) can mix participant kinds
//! freely.

pub mod consumer;
pub mod provider;

pub use consumer::{ConsumerIntentionStrategy, ConsumerProfile};
pub use provider::{ProviderIntentionStrategy, ProviderProfile};

/// Maps a non-negative utilization (virtual seconds of queued work) onto a
/// load-based intention in `[-1, 1]`.
///
/// The mapping `1 − 2·u/(u + scale)` is monotone decreasing: an idle
/// participant answers `+1`, a participant whose backlog equals `scale`
/// answers `0`, and an overloaded participant tends to `-1`. `scale` is the
/// backlog (in virtual seconds) a participant considers "acceptable".
#[must_use]
pub fn load_to_intention(utilization: f64, scale: f64) -> sbqa_types::Intention {
    let u = if utilization.is_finite() && utilization > 0.0 {
        utilization
    } else {
        0.0
    };
    let scale = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0
    };
    sbqa_types::Intention::new(1.0 - 2.0 * (u / (u + scale)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_participant_is_fully_willing() {
        assert_eq!(load_to_intention(0.0, 5.0).value(), 1.0);
    }

    #[test]
    fn backlog_at_scale_is_neutral() {
        assert!((load_to_intention(5.0, 5.0).value()).abs() < 1e-12);
    }

    #[test]
    fn overload_tends_to_refusal() {
        let i = load_to_intention(1e9, 1.0);
        assert!(i.value() < -0.99);
    }

    #[test]
    fn mapping_is_monotone_decreasing() {
        let a = load_to_intention(1.0, 5.0);
        let b = load_to_intention(2.0, 5.0);
        let c = load_to_intention(10.0, 5.0);
        assert!(a > b);
        assert!(b > c);
    }

    #[test]
    fn degenerate_inputs_are_sanitised() {
        assert_eq!(load_to_intention(f64::NAN, 5.0).value(), 1.0);
        assert_eq!(load_to_intention(-3.0, 5.0).value(), 1.0);
        // A non-positive scale falls back to 1.0 rather than dividing by zero.
        assert!(load_to_intention(1.0, 0.0).value().is_finite());
    }
}
