//! Provider-side intention strategies.
//!
//! A provider's intention `PIq[p]` expresses how much it wants to perform a
//! query. The paper's running example is a volunteer that prefers some
//! projects over others (the BOINC resource shares); Scenario 5 switches
//! providers to caring only about their own load, and the SQLB framework more
//! generally lets a provider *trade its preferences for its utilization*.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sbqa_types::{ConsumerId, Intention, Query, QueryClass};

use super::load_to_intention;

/// How a provider derives its intention towards a query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProviderIntentionStrategy {
    /// Intention is the provider's static preference for the issuing
    /// consumer (and, secondarily, the query class).
    #[default]
    Preference,
    /// Intention depends only on the provider's own current load
    /// (Scenario 5 providers): idle providers want work, overloaded
    /// providers refuse it.
    LoadDriven {
        /// Backlog (in virtual seconds) the provider considers acceptable.
        acceptable_backlog: f64,
    },
    /// Blend of preference and load — the provider "trades its preferences
    /// for its utilization". `preference_weight = 1` is pure preference,
    /// `0` pure load.
    Hybrid {
        /// Weight of the static preference in `[0, 1]`.
        preference_weight: f64,
        /// Backlog (in virtual seconds) the provider considers acceptable.
        acceptable_backlog: f64,
    },
}

/// A provider's intention-producing profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderProfile {
    /// The strategy used to combine the signals below.
    pub strategy: ProviderIntentionStrategy,
    consumer_preferences: BTreeMap<ConsumerId, Intention>,
    class_preferences: BTreeMap<QueryClass, Intention>,
    default_preference: Intention,
}

impl Default for ProviderProfile {
    fn default() -> Self {
        Self::new(ProviderIntentionStrategy::Preference, Intention::NEUTRAL)
    }
}

impl ProviderProfile {
    /// Creates a profile with the given strategy and default preference for
    /// consumers without an explicit entry.
    #[must_use]
    pub fn new(strategy: ProviderIntentionStrategy, default_preference: Intention) -> Self {
        Self {
            strategy,
            consumer_preferences: BTreeMap::new(),
            class_preferences: BTreeMap::new(),
            default_preference,
        }
    }

    /// Sets the preference towards queries issued by one consumer.
    pub fn set_consumer_preference(&mut self, consumer: ConsumerId, preference: Intention) {
        self.consumer_preferences.insert(consumer, preference);
    }

    /// Builder-style version of [`ProviderProfile::set_consumer_preference`].
    #[must_use]
    pub fn with_consumer_preference(mut self, consumer: ConsumerId, preference: Intention) -> Self {
        self.set_consumer_preference(consumer, preference);
        self
    }

    /// Sets an additional preference for a class of queries (e.g. a volunteer
    /// that dislikes long work units). Class preferences are averaged with the
    /// consumer preference when present.
    pub fn set_class_preference(&mut self, class: QueryClass, preference: Intention) {
        self.class_preferences.insert(class, preference);
    }

    /// Builder-style version of [`ProviderProfile::set_class_preference`].
    #[must_use]
    pub fn with_class_preference(mut self, class: QueryClass, preference: Intention) -> Self {
        self.set_class_preference(class, preference);
        self
    }

    /// The static preference component for a query.
    #[must_use]
    pub fn preference_for(&self, query: &Query) -> Intention {
        let consumer_pref = self
            .consumer_preferences
            .get(&query.consumer)
            .copied()
            .unwrap_or(self.default_preference);
        match self.class_preferences.get(&query.class) {
            Some(class_pref) => Intention::mean(&[consumer_pref, *class_pref]),
            None => consumer_pref,
        }
    }

    /// Number of consumers with an explicit preference.
    #[must_use]
    pub fn explicit_preferences(&self) -> usize {
        self.consumer_preferences.len()
    }

    /// Computes the intention `PIq[p]` towards `query`, given the provider's
    /// current utilization (virtual seconds of queued work).
    #[must_use]
    pub fn intention_for(&self, query: &Query, utilization: f64) -> Intention {
        let preference = self.preference_for(query);
        match self.strategy {
            ProviderIntentionStrategy::Preference => preference,
            ProviderIntentionStrategy::LoadDriven { acceptable_backlog } => {
                load_to_intention(utilization, acceptable_backlog)
            }
            ProviderIntentionStrategy::Hybrid {
                preference_weight,
                acceptable_backlog,
            } => {
                let load = load_to_intention(utilization, acceptable_backlog);
                preference.blend(load, 1.0 - preference_weight.clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, QueryId};

    fn query(consumer: u64, class: QueryClass) -> Query {
        Query::builder(
            QueryId::new(1),
            ConsumerId::new(consumer),
            Capability::new(0),
        )
        .class(class)
        .build()
    }

    #[test]
    fn preference_strategy_uses_consumer_preferences() {
        let profile =
            ProviderProfile::new(ProviderIntentionStrategy::Preference, Intention::new(-0.3))
                .with_consumer_preference(ConsumerId::new(1), Intention::new(0.8));

        assert_eq!(
            profile.intention_for(&query(1, QueryClass::Medium), 1e9),
            Intention::new(0.8),
            "pure preference ignores load"
        );
        assert_eq!(
            profile.intention_for(&query(9, QueryClass::Medium), 0.0),
            Intention::new(-0.3)
        );
        assert_eq!(profile.explicit_preferences(), 1);
    }

    #[test]
    fn class_preference_is_averaged_in() {
        let profile = ProviderProfile::new(ProviderIntentionStrategy::Preference, Intention::MAX)
            .with_class_preference(QueryClass::Long, Intention::MIN);
        // Consumer preference +1, long-query preference -1: averaged to 0.
        assert_eq!(
            profile.intention_for(&query(1, QueryClass::Long), 0.0),
            Intention::NEUTRAL
        );
        // Classes without an entry keep the plain consumer preference.
        assert_eq!(
            profile.intention_for(&query(1, QueryClass::Short), 0.0),
            Intention::MAX
        );
    }

    #[test]
    fn load_driven_strategy_refuses_when_overloaded() {
        let profile = ProviderProfile::new(
            ProviderIntentionStrategy::LoadDriven {
                acceptable_backlog: 2.0,
            },
            Intention::MAX,
        );
        let q = query(1, QueryClass::Medium);
        assert_eq!(profile.intention_for(&q, 0.0), Intention::MAX);
        assert!(profile.intention_for(&q, 50.0).value() < -0.8);
    }

    #[test]
    fn hybrid_strategy_trades_preference_for_utilization() {
        let profile = ProviderProfile::new(
            ProviderIntentionStrategy::Hybrid {
                preference_weight: 0.5,
                acceptable_backlog: 1.0,
            },
            Intention::MAX,
        );
        let q = query(1, QueryClass::Medium);
        let idle = profile.intention_for(&q, 0.0);
        let busy = profile.intention_for(&q, 1e9);
        assert_eq!(idle, Intention::MAX);
        // Preference +1 and load ≈ -1 blend to ≈ 0: still more willing than a
        // provider that hates the consumer, less than an idle one.
        assert!(busy < idle);
        assert!(busy.value().abs() < 0.01);
    }

    #[test]
    fn default_profile_is_neutral() {
        let profile = ProviderProfile::default();
        assert_eq!(
            profile.intention_for(&query(1, QueryClass::Medium), 0.0),
            Intention::NEUTRAL
        );
    }
}
