//! Registry mutation deltas: the unit of replication.
//!
//! Every state change a [`ProviderRegistry`]
//! can undergo is describable by one of four [`RegistryDelta`] records. A
//! registry with a [`DeltaSink`] attached emits one record per *effective*
//! mutation — the emission rule mirrors the mutation-stamp rule exactly, so a
//! replica that replays the stream performs the same stamp bumps as the
//! primary:
//!
//! * `register` always mutates (it inserts or replaces) → always emits;
//! * `unregister` emits only when the provider existed;
//! * `set_online` emits only when the flag actually toggled (the no-op
//!   early-return emits nothing);
//! * `update_load` emits only on success (unknown provider → error, no
//!   emission).
//!
//! Records carry the *arguments* of the mutation, not a diff of the result:
//! replaying a record through the identically-named public mutator on any
//! registry that has seen the same prefix reproduces the same state,
//! including the slab layout, postings membership and mutation stamp. The
//! records derive serde, so a delta stream survives serialization unchanged
//! (the replication crate's log round-trip tests pin this).
//!
//! The hook is zero-cost when disabled: an unattached registry pays one
//! `Option` null check per mutation, no allocation, no dynamic dispatch.

use serde::{Deserialize, Serialize};

use sbqa_types::{CapabilitySet, ProviderId, SbqaError, SbqaResult};

use crate::registry::ProviderRegistry;

/// One effective mutation of a [`ProviderRegistry`], carrying the arguments
/// of the public mutator that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegistryDelta {
    /// A provider registered (or re-registered, replacing its previous
    /// state) with the given capabilities and capacity, initially online and
    /// idle.
    Register {
        /// The provider's id.
        id: ProviderId,
        /// The advertised capability classes.
        capabilities: CapabilitySet,
        /// The advertised capacity (queries per virtual second).
        capacity: f64,
    },
    /// A provider left the system for good.
    Unregister {
        /// The departed provider's id.
        id: ProviderId,
    },
    /// A provider's online flag actually toggled.
    SetOnline {
        /// The provider's id.
        id: ProviderId,
        /// The new online state.
        online: bool,
    },
    /// A provider's load state changed.
    UpdateLoad {
        /// The provider's id.
        id: ProviderId,
        /// Utilization in virtual seconds of queued work.
        utilization: f64,
        /// Queue length in queries.
        queue_length: usize,
    },
}

impl RegistryDelta {
    /// The provider this delta concerns.
    #[must_use]
    pub fn provider(&self) -> ProviderId {
        match *self {
            RegistryDelta::Register { id, .. }
            | RegistryDelta::Unregister { id }
            | RegistryDelta::SetOnline { id, .. }
            | RegistryDelta::UpdateLoad { id, .. } => id,
        }
    }

    /// Replays this delta through the corresponding public mutator of
    /// `registry`.
    ///
    /// Because the log records only *effective* mutations, a replica that
    /// has applied the same prefix can never hit the no-op or error paths:
    /// any failure here means the stream is being applied to a registry that
    /// did not see the prefix (a corrupt or misrouted log).
    ///
    /// # Errors
    ///
    /// [`SbqaError::UnknownProvider`] when the delta addresses a provider
    /// the target registry does not know — the out-of-sync signal above.
    pub fn apply(&self, registry: &mut ProviderRegistry) -> SbqaResult<()> {
        match *self {
            RegistryDelta::Register {
                id,
                capabilities,
                capacity,
            } => {
                registry.register(id, capabilities, capacity);
                Ok(())
            }
            RegistryDelta::Unregister { id } => {
                if registry.unregister(id) {
                    Ok(())
                } else {
                    Err(SbqaError::UnknownProvider { provider: id })
                }
            }
            RegistryDelta::SetOnline { id, online } => registry.set_online(id, online),
            RegistryDelta::UpdateLoad {
                id,
                utilization,
                queue_length,
            } => registry.update_load(id, utilization, queue_length),
        }
    }
}

/// A consumer of the registry's delta stream.
///
/// Attached via
/// [`ProviderRegistry::set_delta_sink`](crate::registry::ProviderRegistry::set_delta_sink),
/// the sink observes every effective mutation in commit order, synchronously,
/// from inside the mutating call. Implementations must not call back into the
/// registry (the registry is `&mut`-borrowed for the duration) and should be
/// cheap: the hot path pays the full cost of `record`.
///
/// Registry *clones* never inherit the sink — a clone is a state fork (a
/// checkpoint, a replica), and two registries feeding one log would corrupt
/// its sequencing.
pub trait DeltaSink: std::fmt::Debug + Send {
    /// Observes one effective mutation, after it has been applied.
    fn record(&mut self, delta: &RegistryDelta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::Capability;
    use std::sync::{Arc, Mutex};

    /// Sink that collects every record into a shared tape, so the test keeps
    /// a reading handle while the registry owns the erased sink.
    #[derive(Debug, Default, Clone)]
    struct Tape(Arc<Mutex<Vec<RegistryDelta>>>);

    impl Tape {
        fn records(&self) -> Vec<RegistryDelta> {
            self.0.lock().expect("test tape lock").clone()
        }
    }

    impl DeltaSink for Tape {
        fn record(&mut self, delta: &RegistryDelta) {
            self.0.lock().expect("test tape lock").push(*delta);
        }
    }

    fn caps(class: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(class))
    }

    #[test]
    fn emission_mirrors_effective_mutations() {
        let tape = Tape::default();
        let mut registry = ProviderRegistry::new();
        registry.set_delta_sink(Box::new(tape.clone()));
        let id = ProviderId::new(7);

        registry.register(id, caps(1), 2.0);
        // No-op toggle: already online, nothing emitted.
        registry.set_online(id, true).unwrap();
        registry.set_online(id, false).unwrap();
        registry.update_load(id, 1.5, 3).unwrap();
        // Errors emit nothing.
        assert!(registry.update_load(ProviderId::new(99), 1.0, 1).is_err());
        assert!(!registry.unregister(ProviderId::new(99)));
        assert!(registry.unregister(id));

        assert_eq!(
            tape.records(),
            vec![
                RegistryDelta::Register {
                    id,
                    capabilities: caps(1),
                    capacity: 2.0
                },
                RegistryDelta::SetOnline { id, online: false },
                RegistryDelta::UpdateLoad {
                    id,
                    utilization: 1.5,
                    queue_length: 3
                },
                RegistryDelta::Unregister { id },
            ]
        );
    }

    #[test]
    fn replay_reproduces_state() {
        let tape = Tape::default();
        let mut primary = ProviderRegistry::new();
        primary.set_delta_sink(Box::new(tape.clone()));
        for raw in 0..8u64 {
            primary.register(
                ProviderId::new(raw),
                caps((raw % 3) as u8),
                1.0 + raw as f64,
            );
        }
        primary.set_online(ProviderId::new(2), false).unwrap();
        primary.update_load(ProviderId::new(3), 4.0, 9).unwrap();
        primary.unregister(ProviderId::new(5));

        let mut replica = ProviderRegistry::new();
        for delta in &tape.records() {
            delta.apply(&mut replica).expect("replay over same prefix");
        }

        assert_eq!(replica.len(), primary.len());
        assert_eq!(replica.online_count(), primary.online_count());
        let lhs: Vec<_> = primary.iter().collect();
        let rhs: Vec<_> = replica.iter().collect();
        assert_eq!(lhs, rhs, "slab layout must replay byte-identically");
    }

    #[test]
    fn clones_do_not_inherit_the_sink() {
        let mut registry = ProviderRegistry::new();
        registry.set_delta_sink(Box::new(Tape::default()));
        assert!(registry.delta_sink_attached());
        let fork = registry.clone();
        assert!(!fork.delta_sink_attached());
        assert!(registry.delta_sink_attached());
    }

    #[test]
    fn records_round_trip_through_serde() {
        let deltas = [
            RegistryDelta::Register {
                id: ProviderId::new(1),
                capabilities: caps(2),
                capacity: 3.5,
            },
            RegistryDelta::Unregister {
                id: ProviderId::new(1),
            },
            RegistryDelta::SetOnline {
                id: ProviderId::new(1),
                online: false,
            },
            RegistryDelta::UpdateLoad {
                id: ProviderId::new(1),
                utilization: 0.25,
                queue_length: 4,
            },
        ];
        for delta in deltas {
            let value = delta.to_value();
            let back = RegistryDelta::from_value(&value).expect("deserialize");
            assert_eq!(delta, back);
        }
    }
}
