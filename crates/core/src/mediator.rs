//! The SbQA allocator and the mediator that hosts it.
//!
//! [`SbqaAllocator`] is the paper's allocation technique proper: KnBest
//! pre-selection, intention gathering, SQLB scoring with a per-pair ω, and
//! ranking. It implements the same [`QueryAllocator`] trait as the baselines.
//!
//! [`Mediator`] is the component in the middle of Figure 1: it owns the
//! provider registry, the satisfaction registry and an allocator, receives
//! queries, computes the set `Pq`, invokes the allocator and sends the
//! mediation result back to the consumer and all consulted providers (which,
//! in this in-process reproduction, means updating the satisfaction registry
//! and reporting the decision to the caller).
//!
//! ## Steady-state cost
//!
//! The hot path is allocation-free once warmed up: `Pq` is a borrowed
//! [`Candidates`] view into the registry slab, the KnBest draw works in the
//! allocator's [`KnBestScratch`], the decision and the satisfaction views are
//! reused buffers in the mediator's [`MediationScratch`]. Use
//! [`Mediator::submit_in_place`] (or [`Mediator::submit_batch`] to drain a
//! queue) for the zero-allocation path; [`Mediator::submit`] clones the
//! decision into an owned [`MediationOutcome`] for callers that want one.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use sbqa_satisfaction::{GapSample, SatisfactionRegistry};
use sbqa_types::{
    CapabilitySet, Intention, ProviderId, Query, SbqaError, SbqaResult, SystemConfig,
};

use crate::adaptive::{KnController, KnControllerConfig};
use crate::allocator::{
    AllocationDecision, Candidates, IntentionOracle, ProposalRecord, QueryAllocator,
};
use crate::degrade::{baseline_allocate_into, DegradationTier};
use crate::knbest::{KnBestScratch, KnBestSelector};
use crate::ranking::rank_indices_by_score;
use crate::registry::{PlanCacheStats, PlanHandle, PlanKey, ProviderRegistry};
use crate::scoring::{provider_score, resolve_omega};

/// The Satisfaction-based Query Allocation technique (KnBest + SQLB).
#[derive(Debug)]
pub struct SbqaAllocator {
    config: SystemConfig,
    selector: KnBestSelector,
    rng: ChaCha8Rng,
    /// Working memory for the KnBest draw, reused across queries.
    knbest: KnBestScratch,
    /// Scores aligned with the proposals of the current decision.
    scores: Vec<f64>,
    /// Proposal indices in ranking order (the vector `R`).
    ranking: Vec<u32>,
    /// Gap sample of the most recent allocation: the *instantaneous*
    /// per-mediation satisfaction of both sides (Definition 1 for the
    /// consumer, the per-proposal Definition-2 value averaged over `Kn` for
    /// the providers), computed from the decision the allocator just built —
    /// no registry reads. Unlike the registry's long-run values, this signal
    /// cannot be censored by dissatisfied participants departing, and it is
    /// sharply `kn`-sensitive (every consulted-but-rejected provider
    /// contributes a zero), which is what makes it a usable control input.
    last_signal: Option<GapSample>,
}

impl SbqaAllocator {
    /// Creates an SbQA allocator from a validated configuration and a seed
    /// for the KnBest random pre-selection.
    pub fn new(config: SystemConfig, seed: u64) -> SbqaResult<Self> {
        config.validate()?;
        let selector = KnBestSelector::new(config.knbest_k, config.knbest_kn);
        Ok(Self {
            config,
            selector,
            rng: ChaCha8Rng::seed_from_u64(seed),
            knbest: KnBestScratch::new(),
            scores: Vec::new(),
            ranking: Vec::new(),
            last_signal: None,
        })
    }

    /// Creates an allocator with the default configuration.
    #[must_use]
    pub fn with_defaults(seed: u64) -> Self {
        // sbqa-lint: allow(panic-hygiene, "SystemConfig::default() is validated by construction and covered by tests")
        Self::new(SystemConfig::default(), seed).expect("default configuration is valid")
    }

    /// The configuration this allocator runs with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

impl QueryAllocator for SbqaAllocator {
    fn name(&self) -> &'static str {
        "SbQA"
    }

    fn fork(&self) -> Option<Box<dyn QueryAllocator>> {
        // Decision state is (config, selector, RNG position, last signal);
        // the scratch buffers are rebuilt empty — they never outlive one
        // allocation, so a fresh fork reproduces the decision stream exactly.
        Some(Box::new(Self {
            config: self.config.clone(),
            selector: self.selector,
            rng: self.rng.clone(),
            knbest: KnBestScratch::new(),
            scores: Vec::new(),
            ranking: Vec::new(),
            last_signal: self.last_signal,
        }))
    }

    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()> {
        if candidates.is_empty() {
            return Err(SbqaError::NoProviderOnline { query: query.id });
        }
        decision.clear();

        // Step 1 — KnBest: the kn least-utilized of k random capable
        // providers, returned as dense columns (ids included) so step 2
        // never resolves a position against the view again.
        let kn = self
            .selector
            .select_block(candidates, &mut self.rng, &mut self.knbest);

        // Step 2 — gather intentions from the consumer and the Kn providers,
        // and score each pair with a per-pair ω (Equation 2 compares the
        // consumer's satisfaction with *that provider's* satisfaction).
        let consumer_sat = satisfaction.consumer_satisfaction(query.consumer);
        self.scores.clear();
        let mut omega_sum = 0.0;

        for &provider in kn.ids {
            let consumer_intention = oracle.consumer_intention(query, provider);
            let provider_intention = oracle.provider_intention(provider, query);
            let provider_sat = satisfaction.provider_satisfaction(provider);
            let omega = resolve_omega(self.config.omega, consumer_sat, provider_sat);
            let score = provider_score(
                provider_intention,
                consumer_intention,
                omega,
                self.config.epsilon,
            );
            omega_sum += omega;
            self.scores.push(score);
            decision.proposals.push(ProposalRecord {
                provider,
                provider_intention,
                consumer_intention,
                score: Some(score),
                selected: false,
            });
        }

        // Step 3 — ranking vector R and allocation to the min(q.n, kn) best.
        // Winners are marked through their ranking indices, so the marking is
        // O(kn·log kn) overall instead of the O(kn²) a membership scan of
        // the winner list would cost.
        let proposals = &decision.proposals;
        rank_indices_by_score(&self.scores, |i| proposals[i].provider, &mut self.ranking);
        let winner_count = query.replication.min(kn.len());
        for &idx in self.ranking.iter().take(winner_count) {
            decision.proposals[idx as usize].selected = true;
            decision
                .selected
                .push(decision.proposals[idx as usize].provider);
        }

        decision.omega = if kn.is_empty() {
            None
        } else {
            Some(omega_sum / kn.len() as f64)
        };
        // The per-mediation gap sample, straight off the decision:
        // Definition 1 for the consumer (missing results count 0),
        // per-proposal Definition 2 averaged over Kn for the providers
        // (rejected proposals count 0).
        self.last_signal = if kn.is_empty() {
            None
        } else {
            let mut consumer_gain = 0.0;
            let mut provider_gain = 0.0;
            for proposal in &decision.proposals {
                if proposal.selected {
                    consumer_gain += proposal.consumer_intention.to_unit().value();
                    provider_gain += proposal.provider_intention.to_unit().value();
                }
            }
            Some(GapSample::from_sums(
                consumer_gain,
                query.replication,
                provider_gain,
                kn.len(),
            ))
        };
        Ok(())
    }

    fn set_exploration_width(&mut self, kn: usize) {
        self.selector.kn = kn.clamp(1, self.selector.k);
    }

    fn exploration_width(&self) -> Option<usize> {
        Some(self.selector.kn)
    }

    fn satisfaction_signal(&self) -> Option<GapSample> {
        self.last_signal
    }
}

/// The result of one mediation, as reported to the rest of the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediationOutcome {
    /// The mediated query.
    pub query: Query,
    /// The allocation decision (selected providers, proposals, ω).
    pub decision: AllocationDecision,
}

impl MediationOutcome {
    /// The providers the query was allocated to, best-ranked first.
    #[must_use]
    pub fn selected(&self) -> &[ProviderId] {
        &self.decision.selected
    }
}

/// Reusable per-mediator working memory: the decision buffer, the two
/// satisfaction views derived from it, and the batch-level plan memo. One
/// scratch per mediator makes steady-state mediation allocation-free.
#[derive(Debug, Default)]
pub struct MediationScratch {
    decision: AllocationDecision,
    consumer_view: Vec<(ProviderId, Intention)>,
    provider_view: Vec<(ProviderId, Intention, bool)>,
    memo: BatchMemo,
}

/// Upper bound on memoized requirement groups. Realistic traffic issues a
/// handful of distinct requirement sets; the bound keeps the linear-scan
/// lookup fast and the memory constant under adversarial diversity.
const BATCH_MEMO_LIMIT: usize = 64;

/// Requirement → cached-plan memo for batch-level query-plan deduplication.
///
/// A tiny linear-scan table (distinct requirements per drain are few, so a
/// scan beats hashing) from a requirement's [`PlanKey`] to the
/// [`PlanHandle`] its first resolution produced. Later same-requirement
/// queries re-enter the registry through
/// [`ProviderRegistry::cached_plan_view`] — no key hash, no per-class epoch
/// walk — after a [`ProviderRegistry::plan_is_current`] check, so a stale or
/// evicted handle degrades to a normal resolution instead of serving wrong
/// candidates. The handles stay sound across registry mutations for exactly
/// that reason, which is why the memo survives between
/// [`Mediator::submit_in_place`] calls and is only reset at
/// [`Mediator::submit_batch`] boundaries.
#[derive(Debug, Default)]
struct BatchMemo {
    entries: Vec<(PlanKey, PlanHandle)>,
}

impl BatchMemo {
    fn clear(&mut self) {
        self.entries.clear();
    }

    fn get(&self, key: PlanKey) -> Option<PlanHandle> {
        self.entries
            .iter()
            .find(|&&(memoized, _)| memoized == key)
            .map(|&(_, handle)| handle)
    }

    fn put(&mut self, key: PlanKey, handle: PlanHandle) {
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|&&mut (memoized, _)| memoized == key)
        {
            slot.1 = handle;
            return;
        }
        if self.entries.len() >= BATCH_MEMO_LIMIT {
            // Pathological requirement diversity: start over rather than
            // grow. The next occurrence of each dropped key re-resolves
            // once — correctness is untouched.
            self.entries.clear();
        }
        self.entries.push((key, handle));
    }
}

/// Tallies of one [`Mediator::submit_batch`] drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchReport {
    /// Queries successfully mediated.
    pub mediated: usize,
    /// Queries that starved (no capable provider online).
    pub starved: usize,
}

impl BatchReport {
    /// Total number of queries the batch contained.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.mediated + self.starved
    }

    /// Folds another drain's tallies into this report. The sharded mediation
    /// service merges the per-shard reports of one ingest wave this way; it
    /// is equally useful for accumulating tallies across successive batches
    /// of a single mediator.
    pub fn merge(&mut self, other: &BatchReport) {
        self.mediated += other.mediated;
        self.starved += other.starved;
    }
}

/// The mediator of Figure 1: provider registry + satisfaction registry + an
/// allocation technique.
pub struct Mediator {
    allocator: Box<dyn QueryAllocator>,
    providers: ProviderRegistry,
    satisfaction: SatisfactionRegistry,
    scratch: MediationScratch,
    /// Adaptive-`kn` controller; `None` (the default) leaves the hosted
    /// technique's static width untouched, byte-for-byte.
    kn_controller: Option<KnController>,
    /// Batch-level query-plan deduplication (on by default): same-requirement
    /// queries within a drain share one resolution through the
    /// [`BatchMemo`]. Per-query Kn selection still draws independently, so
    /// RNG consumption — and therefore the decision stream — is
    /// byte-identical with the memo on or off.
    batch_dedup: bool,
    /// The degradation tier the next mediation runs under; set per query by
    /// an overload-aware host (the service layer's
    /// [`DegradationLadder`](crate::degrade::DegradationLadder)). `Normal`
    /// (the default) leaves mediation byte-identical to a mediator without
    /// degradation support.
    degradation_tier: DegradationTier,
    /// The exploration-width floor the ShrinkKn tier clamps `kn` to.
    degraded_floor: usize,
}

impl Mediator {
    /// Creates a mediator around an allocation technique, with satisfaction
    /// windows of length `satisfaction_window`.
    #[must_use]
    pub fn new(allocator: Box<dyn QueryAllocator>, satisfaction_window: usize) -> Self {
        Self {
            allocator,
            providers: ProviderRegistry::new(),
            satisfaction: SatisfactionRegistry::new(satisfaction_window),
            scratch: MediationScratch::default(),
            kn_controller: None,
            batch_dedup: true,
            degradation_tier: DegradationTier::Normal,
            degraded_floor: 2,
        }
    }

    /// Convenience constructor for an SbQA mediator with the given
    /// configuration and seed.
    pub fn sbqa(config: SystemConfig, seed: u64) -> SbqaResult<Self> {
        let window = config.satisfaction_window;
        Ok(Self::new(
            Box::new(SbqaAllocator::new(config, seed)?),
            window,
        ))
    }

    /// Assembles a mediator from pre-built state: an allocation technique, a
    /// provider registry and a satisfaction registry.
    ///
    /// This is the handoff constructor the sharded mediation service uses: a
    /// shard can be torn down with [`Mediator::into_parts`], its registries
    /// repartitioned, and the slices reassembled into new shards without
    /// losing any satisfaction history or re-registering providers.
    #[must_use]
    pub fn from_parts(
        allocator: Box<dyn QueryAllocator>,
        providers: ProviderRegistry,
        satisfaction: SatisfactionRegistry,
    ) -> Self {
        Self {
            allocator,
            providers,
            satisfaction,
            scratch: MediationScratch::default(),
            kn_controller: None,
            batch_dedup: true,
            degradation_tier: DegradationTier::Normal,
            degraded_floor: 2,
        }
    }

    /// Decomposes the mediator into its owned state (allocation technique,
    /// provider registry, satisfaction registry), dropping the scratch and
    /// any adaptive-`kn` controller (hosts that repartition shards re-enable
    /// adaptation on the rebuilt mediators). The counterpart of
    /// [`Mediator::from_parts`].
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        Box<dyn QueryAllocator>,
        ProviderRegistry,
        SatisfactionRegistry,
    ) {
        (self.allocator, self.providers, self.satisfaction)
    }

    /// Name of the hosted allocation technique.
    #[must_use]
    pub fn technique(&self) -> &'static str {
        self.allocator.name()
    }

    /// Registers a provider with its capabilities and capacity.
    pub fn register_provider(
        &mut self,
        id: ProviderId,
        capabilities: CapabilitySet,
        capacity: f64,
    ) {
        self.providers.register(id, capabilities, capacity);
        self.satisfaction.register_provider(id);
    }

    /// Registers a consumer so its satisfaction is tracked from the start.
    pub fn register_consumer(&mut self, id: sbqa_types::ConsumerId) {
        self.satisfaction.register_consumer(id);
    }

    /// Marks a provider online or offline.
    pub fn set_provider_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        self.providers.set_online(id, online)
    }

    /// Updates a provider's load state.
    pub fn update_provider_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        self.providers.update_load(id, utilization, queue_length)
    }

    /// Removes a provider from the registry entirely. Returns `true` if the
    /// provider existed. Its satisfaction history is deliberately retained —
    /// a returning provider resumes its window — and hosts that model
    /// permanent departure remove it through
    /// [`Mediator::satisfaction_mut`].
    pub fn unregister_provider(&mut self, id: ProviderId) -> bool {
        self.providers.unregister(id)
    }

    /// Attaches a replication sink to the provider registry: every effective
    /// registry mutation from here on is emitted as a
    /// [`RegistryDelta`](crate::delta::RegistryDelta) in commit order.
    pub fn set_delta_sink(&mut self, sink: Box<dyn crate::delta::DeltaSink>) {
        self.providers.set_delta_sink(sink);
    }

    /// Detaches and returns the registry's replication sink, if any.
    pub fn take_delta_sink(&mut self) -> Option<Box<dyn crate::delta::DeltaSink>> {
        self.providers.take_delta_sink()
    }

    /// Forks the mediator's replicable state — allocation technique (RNG
    /// position included), provider registry and satisfaction registry —
    /// without tearing the live mediator down. The forked registry carries
    /// no delta sink (clones never inherit it), so the checkpoint is inert.
    ///
    /// Returns `None` when the hosted technique does not support
    /// [`QueryAllocator::fork`]. Like [`Mediator::into_parts`], the scratch
    /// and any adaptive-`kn` controller are not part of the fork.
    #[must_use]
    pub fn fork_state(
        &self,
    ) -> Option<(
        Box<dyn QueryAllocator>,
        ProviderRegistry,
        SatisfactionRegistry,
    )> {
        let allocator = self.allocator.fork()?;
        Some((allocator, self.providers.clone(), self.satisfaction.clone()))
    }

    /// Immutable access to the provider registry.
    #[must_use]
    pub fn providers(&self) -> &ProviderRegistry {
        &self.providers
    }

    /// Counters of the registry's candidate-plan cache (hits include
    /// batch-memo re-entries).
    #[must_use]
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.providers.plan_cache_stats()
    }

    /// Re-bounds the registry's candidate-plan cache; `0` disables caching
    /// (and with it batch-level plan deduplication, which requires stable
    /// cached storage to memoize).
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.providers.set_plan_cache_capacity(capacity);
        self.scratch.memo.clear();
    }

    /// Enables or disables batch-level query-plan deduplication (on by
    /// default). Purely a fast path: the decision stream is byte-identical
    /// either way.
    pub fn set_batch_dedup(&mut self, enabled: bool) {
        self.batch_dedup = enabled;
        if !enabled {
            self.scratch.memo.clear();
        }
    }

    /// `true` if same-requirement queries within a drain share one cached
    /// plan resolution.
    #[must_use]
    pub fn batch_dedup(&self) -> bool {
        self.batch_dedup
    }

    /// Immutable access to the satisfaction registry.
    #[must_use]
    pub fn satisfaction(&self) -> &SatisfactionRegistry {
        &self.satisfaction
    }

    /// Mutable access to the satisfaction registry, for hosts that manage
    /// participant churn themselves (e.g. the simulator's departure model).
    pub fn satisfaction_mut(&mut self) -> &mut SatisfactionRegistry {
        &mut self.satisfaction
    }

    /// Enables adaptive `kn`: the mediator consults the
    /// [`KnController`] before every KnBest draw (re-sizing the hosted
    /// technique's exploration width per capability class) and feeds it the
    /// per-mediation satisfaction-gap samples the technique reports. One
    /// adaptation round runs at the start of every [`Mediator::submit_batch`]
    /// (hosts with their own batching cadence call [`Mediator::adapt_kn`]).
    ///
    /// # Panics
    /// Panics on an invalid controller configuration — adaptation is enabled
    /// at setup time, where a loud failure beats a silently inert controller.
    pub fn enable_adaptive_kn(&mut self, config: KnControllerConfig) {
        self.kn_controller =
            // sbqa-lint: allow(panic-hygiene, "documented # Panics contract: loud failure at setup beats a silently inert controller")
            Some(KnController::new(config).expect("adaptive-kn configuration must be valid"));
    }

    /// Disables adaptive `kn`, freezing the hosted technique at whatever
    /// width it currently has.
    pub fn disable_adaptive_kn(&mut self) {
        self.kn_controller = None;
    }

    /// The adaptive-`kn` controller, if enabled.
    #[must_use]
    pub fn adaptive_kn(&self) -> Option<&KnController> {
        self.kn_controller.as_ref()
    }

    /// The current exploration width of a capability class, when adaptation
    /// is enabled and the class has been contacted.
    #[must_use]
    pub fn current_kn(&self, class: u8) -> Option<usize> {
        self.kn_controller
            .as_ref()
            .and_then(|controller| controller.current_kn(class))
    }

    /// Runs one adaptation round on the controller (a no-op without one).
    /// Returns the number of capability classes whose `kn` changed.
    /// [`Mediator::submit_batch`] calls this automatically at every batch
    /// boundary; service fronts with their own drain loops call it at theirs.
    pub fn adapt_kn(&mut self) -> usize {
        self.kn_controller.as_mut().map_or(0, KnController::adapt)
    }

    /// Sets the degradation tier the next mediations run under. Overload
    /// hosts call this per query with the
    /// [`DegradationLadder`](crate::degrade::DegradationLadder)'s admission
    /// tier; `Normal` restores full-quality mediation. A `Shed` tier is
    /// treated as `Baseline` — shedding happens *before* mediation, so a
    /// query that reaches the mediator is by definition admitted.
    pub fn set_degradation_tier(&mut self, tier: DegradationTier) {
        self.degradation_tier = tier;
    }

    /// The degradation tier currently in force.
    #[must_use]
    pub fn degradation_tier(&self) -> DegradationTier {
        self.degradation_tier
    }

    /// Sets the exploration-width floor the ShrinkKn tier clamps `kn` to
    /// (default 2). Values are used as-is; the allocator itself clamps to
    /// its legal `[1, k]` range.
    pub fn set_degraded_kn_floor(&mut self, floor: usize) {
        self.degraded_floor = floor.max(1);
    }

    /// The ShrinkKn exploration-width floor.
    #[must_use]
    pub fn degraded_kn_floor(&self) -> usize {
        self.degraded_floor
    }

    /// The shared mediation core: computes `Pq` as a borrowed view (through
    /// the plan memo when batch dedup applies), lets the allocation
    /// technique fill the scratch decision, and records the mediation result
    /// on both sides' satisfaction — all without allocating in steady state.
    fn mediate(&mut self, query: &Query, oracle: &dyn IntentionOracle) -> SbqaResult<()> {
        // Split the borrows by field: `candidates` may merge postings lists
        // into the registry's cache (hence `&mut providers`), while the
        // allocator, the satisfaction registry and the scratch memo are
        // borrowed alongside.
        let Self {
            allocator,
            providers,
            satisfaction,
            scratch,
            kn_controller,
            batch_dedup,
            degradation_tier,
            degraded_floor,
        } = self;
        let tier = *degradation_tier;
        if let Some(controller) = kn_controller {
            allocator.set_exploration_width(controller.kn_for_query(query));
        }
        let dedup =
            *batch_dedup && providers.plan_cache_enabled() && query.required.classes().len() >= 2;
        let candidates = if dedup {
            let key = PlanKey::of(query.required);
            match scratch.memo.get(key) {
                // The memoized plan is still the same tenant and none of its
                // postings epochs moved: serve it without touching the cache
                // index.
                Some(handle) if providers.plan_is_current(handle) => {
                    providers.cached_plan_view(handle)
                }
                // First occurrence in this drain (or the handle went stale /
                // was evicted): resolve normally and memoize the plan for
                // the rest of the group.
                _ => {
                    let (view, handle) = providers.resolve_with_handle(query);
                    if let Some(handle) = handle {
                        scratch.memo.put(key, handle);
                    }
                    view
                }
            }
        } else {
            providers.candidates(query)
        };
        if candidates.is_empty() {
            return Err(providers.starvation_error(query));
        }

        match tier {
            DegradationTier::Normal | DegradationTier::ShrinkKn => {
                // ShrinkKn clamps the exploration width to the floor for
                // this one draw and restores it afterwards, so the tier
                // leaves no width residue once pressure subsides. The KnBest
                // draw consumes RNG independently of the width, so the RNG
                // stream — and with it replay byte-identity — is unaffected
                // by when the clamp engages.
                let saved = if tier == DegradationTier::ShrinkKn {
                    let previous = allocator.exploration_width();
                    if let Some(previous) = previous {
                        allocator.set_exploration_width(previous.min(*degraded_floor));
                    }
                    previous
                } else {
                    None
                };
                let outcome = allocator.allocate_into(
                    query,
                    candidates,
                    oracle,
                    satisfaction,
                    &mut scratch.decision,
                );
                if let Some(previous) = saved {
                    allocator.set_exploration_width(previous);
                }
                outcome?;
                // The controller adapts only on evidence from widths it
                // chose itself: forced-floor samples would read as "small kn
                // is fine" exactly when the system is drowning.
                if tier == DegradationTier::Normal {
                    if let Some(controller) = kn_controller {
                        if let Some(sample) = allocator.satisfaction_signal() {
                            controller.observe_query(query, sample);
                        }
                    }
                }
            }
            DegradationTier::Baseline | DegradationTier::Shed => {
                // The capacity fallback: no KnBest draw, no SQLB scoring, no
                // RNG consumed. (A `Shed` tier reaching mediation means the
                // host admitted the query anyway; serve it at the cheapest
                // quality rather than inventing a starvation.)
                baseline_allocate_into(query, candidates, oracle, &mut scratch.decision)?;
            }
        }

        // "…sends the mediation result to the consumer and all providers in
        // set Kn": both sides update their satisfaction windows.
        let MediationScratch {
            decision,
            consumer_view,
            provider_view,
            ..
        } = &mut self.scratch;
        decision.consumer_view_into(consumer_view);
        decision.provider_view_into(provider_view);
        self.satisfaction.record_mediation(
            query.id,
            query.consumer,
            query.replication,
            consumer_view,
            provider_view,
        );
        Ok(())
    }

    /// Mediates one query: computes `Pq`, lets the allocation technique pick
    /// providers, records the mediation result on both sides' satisfaction
    /// and returns an owned outcome.
    pub fn submit(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
    ) -> SbqaResult<MediationOutcome> {
        self.mediate(query, oracle)?;
        Ok(MediationOutcome {
            query: query.clone(),
            decision: self.scratch.decision.clone(),
        })
    }

    /// Mediates one query without allocating: the returned decision borrows
    /// the mediator's scratch and is valid until the next mediation.
    pub fn submit_in_place(
        &mut self,
        query: &Query,
        oracle: &dyn IntentionOracle,
    ) -> SbqaResult<&AllocationDecision> {
        self.mediate(query, oracle)?;
        Ok(&self.scratch.decision)
    }

    /// Drains a batch of queries through the mediation pipeline, amortizing
    /// the scratch buffers and satisfaction-registry lookups over the whole
    /// drain. `on_result` is invoked once per query, in order, with the
    /// query's position in the batch and either the borrowed decision or the
    /// starvation error. Returns the batch tallies.
    pub fn submit_batch<F>(
        &mut self,
        queries: &[Query],
        oracle: &dyn IntentionOracle,
        mut on_result: F,
    ) -> BatchReport
    where
        F: FnMut(usize, &Query, SbqaResult<&AllocationDecision>),
    {
        // Batch boundary: one adaptation round before the drain, so every
        // query of the batch is drawn with the widths the previous batches'
        // evidence decided (a pure no-op when adaptation is disabled), and a
        // fresh plan memo so the drain's requirement groups are deduplicated
        // against this batch's resolutions.
        self.adapt_kn();
        self.scratch.memo.clear();
        let mut report = BatchReport::default();
        for (position, query) in queries.iter().enumerate() {
            match self.mediate(query, oracle) {
                Ok(()) => {
                    report.mediated += 1;
                    on_result(position, query, Ok(&self.scratch.decision));
                }
                Err(err) => {
                    report.starved += 1;
                    on_result(position, query, Err(err));
                }
            }
        }
        report
    }
}

impl std::fmt::Debug for Mediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mediator")
            .field("technique", &self.allocator.name())
            .field("providers", &self.providers.len())
            .field("consumers", &self.satisfaction.consumer_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{ProviderSnapshot, StaticIntentions};
    use sbqa_types::{
        Capability, CapabilityRequirement, ConsumerId, Intention, OmegaPolicy, QueryId,
        Satisfaction,
    };

    fn caps() -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(0))
    }

    fn query(id: u64, replication: usize) -> Query {
        Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
            .replication(replication)
            .build()
    }

    fn snapshots(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), caps(), 1.0))
            .collect()
    }

    #[test]
    fn allocator_selects_min_of_replication_and_kn() {
        let config = SystemConfig::default().with_knbest(10, 3);
        let mut alloc = SbqaAllocator::new(config, 42).unwrap();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        // Replication 2 with kn = 3: two providers selected.
        let decision = alloc
            .allocate(
                &query(1, 2),
                Candidates::from_slice(&snapshots(20)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 2);
        assert_eq!(decision.proposals.len(), 3);

        // Replication 5 with kn = 3: capped at 3.
        let decision = alloc
            .allocate(
                &query(2, 5),
                Candidates::from_slice(&snapshots(20)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected.len(), 3);
    }

    #[test]
    fn allocator_prefers_mutually_wanted_providers() {
        // kn covers the whole candidate set so the random step cannot hide
        // the preferred provider.
        let config = SystemConfig::default().with_knbest(10, 10);
        let mut alloc = SbqaAllocator::new(config, 7).unwrap();
        let satisfaction = SatisfactionRegistry::new(10);

        let mut oracle =
            StaticIntentions::new().with_defaults(Intention::new(-0.5), Intention::new(-0.5));
        oracle.set_consumer_intention(ProviderId::new(3), Intention::new(0.9));
        oracle.set_provider_intention(ProviderId::new(3), Intention::new(0.8));

        let decision = alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&snapshots(5)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert_eq!(decision.selected, vec![ProviderId::new(3)]);
        // The scores are recorded on the proposals.
        assert!(decision
            .proposals
            .iter()
            .all(|p| p.score.is_some() && p.score.unwrap().is_finite()));
    }

    #[test]
    fn empty_candidate_set_is_an_error() {
        let mut alloc = SbqaAllocator::with_defaults(1);
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle = StaticIntentions::new();
        let err = alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&[]),
                &oracle,
                &satisfaction,
            )
            .unwrap_err();
        assert!(err.is_starvation());
    }

    #[test]
    fn adaptive_omega_reacts_to_satisfaction_gap() {
        let config = SystemConfig::default()
            .with_knbest(10, 10)
            .with_omega(OmegaPolicy::Adaptive);
        let mut alloc = SbqaAllocator::new(config, 3).unwrap();
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        // A fresh registry: everyone fully satisfied, ω = 0.5.
        let satisfaction = SatisfactionRegistry::new(10);
        let decision = alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&snapshots(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert!((decision.omega.unwrap() - 0.5).abs() < 1e-9);

        // Make the consumer satisfied and the providers dissatisfied: ω must
        // rise above 0.5 (more attention to providers).
        let mut satisfaction = SatisfactionRegistry::new(10);
        for p in 0..3u64 {
            satisfaction.record_mediation(
                QueryId::new(100 + p),
                ConsumerId::new(1),
                1,
                &[(ProviderId::new(p), Intention::new(1.0))],
                &[(ProviderId::new(p), Intention::new(-1.0), true)],
            );
        }
        assert_eq!(
            satisfaction.consumer_satisfaction(ConsumerId::new(1)),
            Satisfaction::MAX
        );
        let decision = alloc
            .allocate(
                &query(2, 1),
                Candidates::from_slice(&snapshots(3)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert!(decision.omega.unwrap() > 0.9);
    }

    #[test]
    fn fixed_omega_is_used_verbatim() {
        let config = SystemConfig::default()
            .with_knbest(5, 5)
            .with_omega(OmegaPolicy::Fixed(0.25));
        let mut alloc = SbqaAllocator::new(config, 3).unwrap();
        let satisfaction = SatisfactionRegistry::new(10);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        let decision = alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&snapshots(4)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        assert!((decision.omega.unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let bad = SystemConfig::default().with_knbest(2, 5);
        assert!(SbqaAllocator::new(bad, 0).is_err());
    }

    #[test]
    fn mediator_end_to_end_updates_satisfaction() {
        let config = SystemConfig::default().with_knbest(10, 5);
        let mut mediator = Mediator::sbqa(config, 11).unwrap();
        assert_eq!(mediator.technique(), "SbQA");

        for p in 0..5u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));

        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.8), Intention::new(0.6));
        let outcome = mediator.submit(&query(1, 2), &oracle).unwrap();
        assert_eq!(outcome.selected().len(), 2);

        // The consumer got providers it liked (+0.8 -> 0.9 satisfaction per
        // result), so its satisfaction reflects the mediation.
        let consumer_sat = mediator
            .satisfaction()
            .consumer_satisfaction(ConsumerId::new(1));
        assert!((consumer_sat.value() - 0.9).abs() < 1e-9);

        // Every consulted provider has a recorded proposal.
        let proposed: usize = outcome.decision.proposals.len();
        assert!(proposed >= 2);
        assert_eq!(mediator.providers().len(), 5);
    }

    #[test]
    fn mediator_reports_starvation_kinds() {
        let mut mediator = Mediator::sbqa(SystemConfig::default(), 1).unwrap();
        let oracle = StaticIntentions::new();

        // No provider at all with the required capability.
        let err = mediator.submit(&query(1, 1), &oracle).unwrap_err();
        assert!(matches!(err, SbqaError::NoCapableProvider { .. }));

        // A capable provider exists but is offline.
        mediator.register_provider(ProviderId::new(1), caps(), 1.0);
        mediator
            .set_provider_online(ProviderId::new(1), false)
            .unwrap();
        let err = mediator.submit(&query(2, 1), &oracle).unwrap_err();
        assert!(matches!(err, SbqaError::NoProviderOnline { .. }));

        // Back online: mediation succeeds.
        mediator
            .set_provider_online(ProviderId::new(1), true)
            .unwrap();
        assert!(mediator.submit(&query(3, 1), &oracle).is_ok());
    }

    #[test]
    fn mediator_load_updates_flow_to_allocator() {
        // With kn = 1, the least-utilized provider of the random draw wins;
        // when k covers everything, that is the globally least utilized.
        let config = SystemConfig::default().with_knbest(10, 1);
        let mut mediator = Mediator::sbqa(config, 5).unwrap();
        for p in 0..3u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator
            .update_provider_load(ProviderId::new(0), 10.0, 10)
            .unwrap();
        mediator
            .update_provider_load(ProviderId::new(1), 5.0, 5)
            .unwrap();
        // Provider 2 stays idle.
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        let outcome = mediator.submit(&query(1, 1), &oracle).unwrap();
        assert_eq!(outcome.selected(), &[ProviderId::new(2)]);
    }

    #[test]
    fn mediator_honours_multi_capability_requirements() {
        use sbqa_types::CapabilityRequirement;

        let config = SystemConfig::default().with_knbest(10, 10);
        let mut mediator = Mediator::sbqa(config, 13).unwrap();
        let set = |classes: &[u8]| {
            CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
        };
        mediator.register_provider(ProviderId::new(1), set(&[0]), 1.0);
        mediator.register_provider(ProviderId::new(2), set(&[0, 1]), 1.0);
        mediator.register_provider(ProviderId::new(3), set(&[1, 2]), 1.0);
        mediator.register_consumer(ConsumerId::new(1));
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        // All{0,1}: only provider 2 qualifies.
        let q = Query::requiring(
            QueryId::new(1),
            ConsumerId::new(1),
            CapabilityRequirement::All(set(&[0, 1])),
        )
        .replication(3)
        .build();
        let outcome = mediator.submit(&q, &oracle).unwrap();
        assert_eq!(outcome.selected(), &[ProviderId::new(2)]);

        // Any{1,2}: providers 2 and 3 qualify; replication 2 selects both.
        let q = Query::requiring(
            QueryId::new(2),
            ConsumerId::new(1),
            CapabilityRequirement::Any(set(&[1, 2])),
        )
        .replication(2)
        .build();
        let outcome = mediator.submit(&q, &oracle).unwrap();
        let mut selected: Vec<u64> = outcome.selected().iter().map(|p| p.raw()).collect();
        selected.sort_unstable();
        assert_eq!(selected, vec![2, 3]);

        // All{0,2}: per-class counts are positive but no provider covers
        // both — the starvation is classified as "no capable provider".
        let q = Query::requiring(
            QueryId::new(3),
            ConsumerId::new(1),
            CapabilityRequirement::All(set(&[0, 2])),
        )
        .build();
        assert!(matches!(
            mediator.submit(&q, &oracle).unwrap_err(),
            SbqaError::NoCapableProvider { .. }
        ));
    }

    #[test]
    fn debug_impl_mentions_technique() {
        let mediator = Mediator::sbqa(SystemConfig::default(), 1).unwrap();
        let text = format!("{mediator:?}");
        assert!(text.contains("SbQA"));
    }

    #[test]
    fn submit_in_place_matches_submit() {
        let build = || {
            let config = SystemConfig::default().with_knbest(10, 5);
            let mut mediator = Mediator::sbqa(config, 21).unwrap();
            for p in 0..8u64 {
                mediator.register_provider(ProviderId::new(p), caps(), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));

        let mut owned = build();
        let mut in_place = build();
        for q in 0..50u64 {
            let query = query(q, 2);
            let outcome = owned.submit(&query, &oracle).unwrap();
            let decision = in_place.submit_in_place(&query, &oracle).unwrap();
            assert_eq!(&outcome.decision, decision, "query {q}");
        }
    }

    #[test]
    fn submit_batch_drains_a_queue_and_reports_tallies() {
        let config = SystemConfig::default().with_knbest(10, 4);
        let mut mediator = Mediator::sbqa(config, 9).unwrap();
        for p in 0..6u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        // Query 2 requires a capability nobody advertises: it starves, the
        // others mediate, and the callback sees every result in order.
        let queries = vec![
            query(1, 1),
            Query::builder(QueryId::new(2), ConsumerId::new(1), Capability::new(9)).build(),
            query(3, 2),
        ];
        let mut seen = Vec::new();
        let report = mediator.submit_batch(&queries, &oracle, |position, q, result| {
            seen.push((position, q.id, result.is_ok()));
            if let Ok(decision) = result {
                assert!(!decision.is_starved());
            }
        });
        assert_eq!(report.mediated, 2);
        assert_eq!(report.starved, 1);
        assert_eq!(report.submitted(), 3);
        assert_eq!(
            seen,
            vec![
                (0, QueryId::new(1), true),
                (1, QueryId::new(2), false),
                (2, QueryId::new(3), true),
            ]
        );
    }

    #[test]
    fn batch_report_merge_covers_empty_and_overlapping_cases() {
        // Empty ⊕ empty stays empty.
        let mut report = BatchReport::default();
        report.merge(&BatchReport::default());
        assert_eq!(report, BatchReport::default());
        assert_eq!(report.submitted(), 0);

        // Empty ⊕ populated adopts the other side's tallies.
        let drained = BatchReport {
            mediated: 5,
            starved: 2,
        };
        report.merge(&drained);
        assert_eq!(report, drained);

        // Populated ⊕ populated (both sides carry overlapping non-zero
        // tallies) adds field-wise, and `submitted` follows.
        report.merge(&BatchReport {
            mediated: 3,
            starved: 4,
        });
        assert_eq!(report.mediated, 8);
        assert_eq!(report.starved, 6);
        assert_eq!(report.submitted(), 14);

        // Merging a report into itself (via a copy) doubles it — the merge is
        // pure addition, with no dedup heuristics to get wrong.
        let copy = report;
        report.merge(&copy);
        assert_eq!(report.mediated, 16);
        assert_eq!(report.starved, 12);
    }

    #[test]
    fn mediator_parts_round_trip_preserves_state() {
        let config = SystemConfig::default().with_knbest(10, 3);
        let mut mediator = Mediator::sbqa(config, 17).unwrap();
        for p in 0..4u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.6), Intention::new(0.4));
        mediator.submit(&query(1, 1), &oracle).unwrap();
        let consumer_sat_before = mediator
            .satisfaction()
            .consumer_satisfaction(ConsumerId::new(1));

        // Tear down and reassemble: registries and allocator state carry
        // over, so the reassembled mediator continues the same trajectory as
        // an untouched clone would.
        let (allocator, providers, satisfaction) = mediator.into_parts();
        assert_eq!(providers.len(), 4);
        let mut rebuilt = Mediator::from_parts(allocator, providers, satisfaction);
        assert_eq!(rebuilt.technique(), "SbQA");
        assert_eq!(rebuilt.providers().len(), 4);
        assert_eq!(
            rebuilt
                .satisfaction()
                .consumer_satisfaction(ConsumerId::new(1)),
            consumer_sat_before
        );
        assert!(rebuilt.submit(&query(2, 1), &oracle).is_ok());
    }

    #[test]
    fn allocator_reports_a_gap_sample_and_resizes() {
        let config = SystemConfig::default().with_knbest(10, 3);
        let mut alloc = SbqaAllocator::new(config, 42).unwrap();
        assert_eq!(alloc.exploration_width(), Some(3));
        assert!(alloc.satisfaction_signal().is_none(), "no allocation yet");

        let satisfaction = SatisfactionRegistry::new(10);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));
        alloc
            .allocate(
                &query(1, 1),
                Candidates::from_slice(&snapshots(20)),
                &oracle,
                &satisfaction,
            )
            .unwrap();
        // Intentions 0.5 map to a 0.75 per-result gain: the one winner gives
        // the consumer 0.75 (q.n = 1) and the provider side 0.75 diluted
        // over the kn = 3 consulted providers.
        let sample = alloc.satisfaction_signal().unwrap();
        assert!((sample.consumer - 0.75).abs() < 1e-12);
        assert!((sample.provider - 0.25).abs() < 1e-12);

        // Re-sizing clamps to [1, k].
        alloc.set_exploration_width(7);
        assert_eq!(alloc.exploration_width(), Some(7));
        alloc.set_exploration_width(0);
        assert_eq!(alloc.exploration_width(), Some(1));
        alloc.set_exploration_width(99);
        assert_eq!(alloc.exploration_width(), Some(10), "capped at k");
    }

    #[test]
    fn adaptive_kn_moves_width_per_batch_and_disabling_freezes_it() {
        use crate::adaptive::KnControllerConfig;

        let config = SystemConfig::default().with_knbest(10, 4);
        let mut mediator = Mediator::sbqa(config, 31).unwrap();
        for p in 0..10u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        assert!(mediator.adaptive_kn().is_none());
        assert_eq!(mediator.adapt_kn(), 0, "no controller: adapt is a no-op");

        mediator.enable_adaptive_kn(KnControllerConfig {
            initial_kn: 4,
            min_kn: 2,
            max_kn: 8,
            alpha: 1.0,
            target_gap: 0.0,
            deadband: 0.1,
            step: 1,
            window: 32,
        });

        // Providers hate the work (-0.9): performed-query satisfaction
        // collapses while the consumer stays pleased — the gap rises and kn
        // must shrink batch over batch.
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.9), Intention::new(-0.9));
        let batch: Vec<Query> = (0..12u64).map(|q| query(q, 1)).collect();
        for _ in 0..6 {
            mediator.submit_batch(&batch, &oracle, |_, _, _| {});
        }
        assert_eq!(mediator.current_kn(0), Some(2), "width hit the floor");
        let controller = mediator.adaptive_kn().unwrap();
        assert!(controller.rounds() >= 6);
        assert!(!controller.trail().is_empty());

        // Disabling freezes the allocator at its adapted width.
        mediator.disable_adaptive_kn();
        assert!(mediator.adaptive_kn().is_none());
        assert_eq!(mediator.current_kn(0), None);
    }

    #[test]
    fn disabled_adaptation_is_byte_identical_to_a_plain_mediator() {
        let build = || {
            let config = SystemConfig::default().with_knbest(10, 4);
            let mut mediator = Mediator::sbqa(config, 99).unwrap();
            for p in 0..10u64 {
                mediator.register_provider(ProviderId::new(p), caps(), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
        let queries: Vec<Query> = (0..60u64).map(|q| query(q, 2)).collect();

        let mut plain = build();
        let mut toggled = build();
        // Enabling and immediately disabling before any mediation must leave
        // no trace on the decision stream.
        toggled.enable_adaptive_kn(crate::adaptive::KnControllerConfig::default());
        toggled.disable_adaptive_kn();

        for chunk in queries.chunks(15) {
            let mut expected = Vec::new();
            plain.submit_batch(chunk, &oracle, |_, _, result| {
                expected.push(result.unwrap().clone());
            });
            let mut got = Vec::new();
            toggled.submit_batch(chunk, &oracle, |_, _, result| {
                got.push(result.unwrap().clone());
            });
            assert_eq!(expected, got);
        }
    }

    #[test]
    fn submit_batch_matches_sequential_submits() {
        let build = || {
            let config = SystemConfig::default().with_knbest(8, 3);
            let mut mediator = Mediator::sbqa(config, 77).unwrap();
            for p in 0..10u64 {
                mediator.register_provider(ProviderId::new(p), caps(), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.3), Intention::new(0.6));
        let queries: Vec<Query> = (0..40u64).map(|q| query(q, 1)).collect();

        let mut sequential = build();
        let expected: Vec<Vec<ProviderId>> = queries
            .iter()
            .map(|q| sequential.submit(q, &oracle).unwrap().decision.selected)
            .collect();

        let mut batched = build();
        let mut got = Vec::new();
        batched.submit_batch(&queries, &oracle, |_, _, result| {
            got.push(result.unwrap().selected.clone());
        });
        assert_eq!(expected, got);
    }

    /// A multi-capability query cycling over overlapping class pairs.
    fn multi_query(id: u64) -> Query {
        let a = Capability::new((id % 3) as u8);
        let b = Capability::new(((id + 1) % 3) as u8);
        let set = CapabilitySet::from_capabilities([a, b]);
        let required = if id.is_multiple_of(2) {
            CapabilityRequirement::All(set)
        } else {
            CapabilityRequirement::Any(set)
        };
        Query::requiring(QueryId::new(id), ConsumerId::new(1), required)
            .replication(2)
            .build()
    }

    fn multi_mediator(seed: u64) -> Mediator {
        let config = SystemConfig::default().with_knbest(8, 3);
        let mut mediator = Mediator::sbqa(config, seed).unwrap();
        for p in 0..12u64 {
            let caps = CapabilitySet::from_capabilities([
                Capability::new((p % 3) as u8),
                Capability::new(((p + 1) % 3) as u8),
            ]);
            mediator.register_provider(ProviderId::new(p), caps, 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        mediator
    }

    #[test]
    fn batch_dedup_resolves_each_requirement_once_per_batch() {
        let mut mediator = multi_mediator(5);
        assert!(mediator.batch_dedup());
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));

        // 24 queries over 6 distinct requirements: the plan cache should see
        // one miss per requirement and the rest served (memo hits re-enter
        // the cache's hit counter through `cached_plan_view`).
        let batch: Vec<Query> = (0..24u64).map(multi_query).collect();
        let report = mediator.submit_batch(&batch, &oracle, |_, _, result| {
            assert!(result.is_ok());
        });
        assert_eq!(report.mediated, 24);
        let stats = mediator.plan_cache_stats();
        assert_eq!(stats.misses, 6, "one merge per distinct requirement");
        assert_eq!(stats.hits, 18, "every repetition rode the memo");
        assert_eq!(stats.stale_rebuilds, 0);

        // A second identical batch is all hits: the memo is cleared at the
        // batch boundary, but its first probe per requirement revalidates
        // against the (unchanged) cache.
        mediator.submit_batch(&batch, &oracle, |_, _, _| {});
        let stats = mediator.plan_cache_stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 42);
    }

    #[test]
    fn batch_dedup_off_and_disabled_cache_stay_byte_identical() {
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
        let batch: Vec<Query> = (0..30u64).map(multi_query).collect();

        let run = |mut mediator: Mediator| -> Vec<AllocationDecision> {
            let mut decisions = Vec::new();
            // Mid-run churn: offline/online flips between batches invalidate
            // plans without changing the candidate sets the queries see.
            for chunk in batch.chunks(10) {
                mediator.submit_batch(chunk, &oracle, |_, _, result| {
                    decisions.push(result.unwrap().clone());
                });
                mediator
                    .set_provider_online(ProviderId::new(11), false)
                    .unwrap();
                mediator
                    .set_provider_online(ProviderId::new(11), true)
                    .unwrap();
            }
            decisions
        };

        let expected = run(multi_mediator(5));
        let mut no_dedup = multi_mediator(5);
        no_dedup.set_batch_dedup(false);
        assert!(!no_dedup.batch_dedup());
        let mut no_cache = multi_mediator(5);
        no_cache.set_plan_cache_capacity(0);

        assert_eq!(run(no_dedup), expected);
        assert_eq!(run(no_cache), expected);
    }

    #[test]
    fn batch_dedup_survives_a_thrashing_plan_cache() {
        // Cache capacity 1 with 6 distinct requirements: every memoized
        // handle is evicted before its next use, so `plan_is_current` fails
        // and the memo falls back to a fresh resolution — correctness must
        // not depend on the memo ever hitting.
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
        let batch: Vec<Query> = (0..24u64).map(multi_query).collect();

        let mut thrashing = multi_mediator(5);
        thrashing.set_plan_cache_capacity(1);
        let mut expected = Vec::new();
        thrashing.submit_batch(&batch, &oracle, |_, _, result| {
            expected.push(result.unwrap().clone());
        });
        assert!(thrashing.plan_cache_stats().evictions > 0);

        let mut roomy = multi_mediator(5);
        let mut got = Vec::new();
        roomy.submit_batch(&batch, &oracle, |_, _, result| {
            got.push(result.unwrap().clone());
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn normal_tier_is_byte_identical_to_an_untouched_mediator() {
        use crate::degrade::DegradationTier;
        let build = || {
            let config = SystemConfig::default().with_knbest(10, 4);
            let mut mediator = Mediator::sbqa(config, 123).unwrap();
            for p in 0..10u64 {
                mediator.register_provider(ProviderId::new(p), caps(), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
        let mut plain = build();
        let mut tiered = build();
        // Setting Normal explicitly (what a ladder-free host does) must
        // leave no trace on the decision stream.
        tiered.set_degradation_tier(DegradationTier::Normal);
        tiered.set_degraded_kn_floor(1);
        for q in 0..40u64 {
            let query = query(q, 2);
            let expected = plain.submit(&query, &oracle).unwrap();
            let got = tiered.submit(&query, &oracle).unwrap();
            assert_eq!(expected, got, "query {q}");
        }
    }

    #[test]
    fn shrink_kn_tier_clamps_the_draw_and_restores_the_width() {
        use crate::degrade::DegradationTier;
        let config = SystemConfig::default().with_knbest(10, 6);
        let mut mediator = Mediator::sbqa(config, 7).unwrap();
        for p in 0..12u64 {
            mediator.register_provider(ProviderId::new(p), caps(), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        mediator.set_degradation_tier(DegradationTier::ShrinkKn);
        mediator.set_degraded_kn_floor(2);
        let outcome = mediator.submit(&query(1, 6), &oracle).unwrap();
        assert_eq!(
            outcome.decision.proposals.len(),
            2,
            "the draw ran at the floor width"
        );

        // Back at Normal, the full width is restored.
        mediator.set_degradation_tier(DegradationTier::Normal);
        let outcome = mediator.submit(&query(2, 6), &oracle).unwrap();
        assert_eq!(outcome.decision.proposals.len(), 6);
    }

    #[test]
    fn baseline_tier_consumes_no_rng() {
        use crate::degrade::DegradationTier;
        let build = || {
            // A fixed ω makes the Normal-tier decision a pure function of
            // the RNG draw: the fallback's satisfaction writes cannot
            // explain a divergence, only consumed RNG could.
            let config = SystemConfig::default()
                .with_knbest(10, 4)
                .with_omega(OmegaPolicy::Fixed(0.5));
            let mut mediator = Mediator::sbqa(config, 55).unwrap();
            for p in 0..10u64 {
                mediator.register_provider(ProviderId::new(p), caps(), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.5));

        // Mediator A serves 20 queries under the Baseline tier; mediator B
        // serves none. If the fallback consumed RNG, their next Normal-tier
        // decisions would diverge.
        let mut detoured = build();
        detoured.set_degradation_tier(DegradationTier::Baseline);
        for q in 0..20u64 {
            let outcome = detoured.submit(&query(q, 1), &oracle).unwrap();
            assert!(outcome.decision.omega.is_none(), "fallback carries no ω");
        }
        detoured.set_degradation_tier(DegradationTier::Normal);

        let mut fresh = build();
        let probe = query(100, 2);
        assert_eq!(
            detoured.submit(&probe, &oracle).unwrap().decision,
            fresh.submit(&probe, &oracle).unwrap().decision,
        );
    }

    #[test]
    fn plan_cache_stats_pass_through_the_mediator() {
        let mut mediator = multi_mediator(5);
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));
        mediator.submit_in_place(&multi_query(0), &oracle).unwrap();
        mediator.submit_in_place(&multi_query(0), &oracle).unwrap();
        let stats = mediator.plan_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats, mediator.providers().plan_cache_stats());

        // Disabling the cache through the mediator clears the entries and
        // the memo but keeps the counters.
        mediator.set_plan_cache_capacity(0);
        let stats = mediator.plan_cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }
}
