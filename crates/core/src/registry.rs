//! The mediator's provider registry.
//!
//! The registry tracks which providers exist, whether they are online, what
//! they can do and how loaded they currently are. It answers the only
//! question the allocation process needs from it: *which providers are able
//! to perform this query right now* (the set `Pq`).
//!
//! ## Representation
//!
//! Provider state lives in a dense struct-of-arrays slab
//! ([`ProviderColumns`]: one column per field, addressed by slot through an
//! id→slot map), so batch scoring reads only the columns it ranks by. One
//! [`PostingsMap`] per capability class — a Roaring-style id→slot bitmap
//! container, see [`crate::postings`] — holds every *online* provider
//! advertising that capability (one extra map tracks *every* online provider,
//! which answers degenerate `All{}` requirements and makes `online_count`
//! O(1)). For a single-capability query `Pq` is the class's map wrapped in a
//! borrowed [`Candidates`] view — no scan over the population, no clone, no
//! materialisation at all. Multi-capability requirements are answered by a
//! chunk-wise merge of the maps — word-parallel intersection for `All`,
//! OR-union for `Any` — into a slot scratch buffer reused across queries, so
//! steady-state mediation stays allocation-free. Candidate order is ascending
//! provider id *by construction* on every path (the bitmap containers
//! enumerate in id order), which makes every downstream random draw
//! deterministic per seed. The maps are maintained incrementally on
//! [`register`](ProviderRegistry::register),
//! [`unregister`](ProviderRegistry::unregister) and
//! [`set_online`](ProviderRegistry::set_online); load updates touch only the
//! load columns. Slab compaction (`swap_remove` on unregister) re-points the
//! moved provider's entries with an id-keyed
//! [`patch_slot`](PostingsMap::patch_slot) per map.

use std::collections::HashMap;

use serde::{Deserialize, Serialize, Value};

use sbqa_types::{
    CapabilityRequirement, CapabilitySet, ProviderColumns, ProviderId, Query, SbqaError,
    SbqaResult, MAX_CAPABILITY_CLASSES,
};

use crate::allocator::{Candidates, PlanToken, ProviderSnapshot};
use crate::delta::{DeltaSink, RegistryDelta};
use crate::postings::{intersect_lists, union_lists, MergeScratch, PostingsMap};

/// Index of the postings map that tracks every online provider (used for
/// degenerate `All{}` requirements and the O(1) `online_count`).
const ONLINE_LIST: usize = MAX_CAPABILITY_CLASSES as usize;

/// An empty postings slice with `'static` lifetime, for requirements that
/// match nobody by construction (`Any` over the empty set).
const NO_POSTINGS: &[u32] = &[];

/// Default number of materialised merge plans the candidate-plan cache
/// retains. Realistic workloads issue a handful of distinct requirement sets,
/// so the bound exists to cap memory under adversarial requirement diversity,
/// not to be reached in normal operation.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// First occupancy number handed to a cache entry. Values `0..=ONLINE_LIST`
/// are reserved as [`PlanToken::plan`] names for the per-class postings maps
/// (the single-capability fast path), so entry occupancies start above them
/// and the two namespaces can never collide.
const FIRST_OCCUPANCY: u64 = ONLINE_LIST as u64 + 1;

/// Cache key of a multi-capability requirement: the `All`/`Any` kind plus the
/// mentioned-class bit set. Two queries with equal keys have byte-identical
/// candidate plans against the same registry state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    conjunctive: bool,
    bits: u64,
}

impl PlanKey {
    /// The cache key of a requirement.
    pub(crate) fn of(required: CapabilityRequirement) -> Self {
        Self {
            conjunctive: matches!(required, CapabilityRequirement::All(_)),
            bits: required.classes().bits(),
        }
    }
}

/// An opaque reference to a cached candidate plan, as returned by
/// [`ProviderRegistry::resolve_with_handle`]. The handle names the entry
/// *and* its occupancy number, so a holder can detect (via
/// [`ProviderRegistry::plan_is_current`]) that the entry has since been
/// evicted and reassigned to a different requirement, or invalidated by a
/// registry mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanHandle {
    entry: u32,
    occupancy: u64,
}

/// Counters and occupancy of the candidate-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups answered from a still-valid cached plan (zero merge work).
    pub hits: u64,
    /// Lookups for a requirement with no cached plan (full merge).
    pub misses: u64,
    /// Lookups that found a cached plan invalidated by an epoch bump since
    /// its merge (full re-merge into the same entry).
    pub stale_rebuilds: u64,
    /// Entries reassigned to a different requirement by the LRU bound.
    pub evictions: u64,
    /// Plans currently materialised.
    pub entries: usize,
    /// Configured entry bound (`0` = caching disabled).
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Total lookups against the cache.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.stale_rebuilds
    }

    /// Fraction of lookups served with zero merge work, in `[0, 1]`
    /// (`0` when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Folds another cache's counters into this one (the sharded service
    /// aggregates per-shard stats this way). Counters add; `entries` and
    /// `capacity` add too, so the aggregate reads as the fleet-wide totals.
    pub fn merge(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_rebuilds += other.stale_rebuilds;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }
}

/// One materialised merge plan: the id-sorted slot list of a requirement's
/// candidate set, plus the postings epochs it was merged from.
#[derive(Debug, Clone)]
struct PlanEntry {
    /// The requirement this entry currently answers.
    key: PlanKey,
    /// Unique occupancy number of this (entry, key) assignment; never reused,
    /// so a [`PlanHandle`] or [`PlanToken`] carrying it can outlive an
    /// eviction without ever matching the entry's next tenant.
    occupancy: u64,
    /// The merged slot list — stable storage owned by the entry, unlike the
    /// registry-wide `merge_scratch` the uncached path shares across queries.
    slots: Vec<u32>,
    /// `(class, generation)` of every postings map the merge read. The plan
    /// is valid iff each class's map still reports the stamped generation.
    stamps: Vec<(u32, u64)>,
    /// LRU clock value of the last lookup that touched this entry.
    last_used: u64,
}

impl PlanEntry {
    fn vacant(key: PlanKey) -> Self {
        Self {
            key,
            occupancy: 0,
            slots: Vec::new(),
            stamps: Vec::new(),
            last_used: 0,
        }
    }
}

/// The candidate-plan cache: requirement-keyed materialised merge results
/// with per-class epoch invalidation and an LRU entry bound.
#[derive(Debug, Clone)]
struct PlanCache {
    /// Maximum number of entries; `0` disables caching entirely (the
    /// registry falls back to the shared-scratch merge path).
    capacity: usize,
    /// Requirement key → entry position.
    // sbqa-lint: allow(hash-collection, "keyed point lookups only; eviction scans the entries Vec, never this map")
    index: HashMap<PlanKey, u32>,
    /// The materialised plans. Eviction reassigns an entry in place, so its
    /// grown `slots`/`stamps` buffers are recycled rather than freed.
    entries: Vec<PlanEntry>,
    /// LRU clock, advanced once per lookup.
    tick: u64,
    /// Next occupancy number to hand out (see [`PlanEntry::occupancy`]).
    next_occupancy: u64,
    hits: u64,
    misses: u64,
    stale: u64,
    evictions: u64,
}

impl PlanCache {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            // sbqa-lint: allow(hash-collection, "keyed point lookups only; eviction scans the entries Vec, never this map")
            index: HashMap::new(),
            entries: Vec::new(),
            tick: 0,
            next_occupancy: FIRST_OCCUPANCY,
            hits: 0,
            misses: 0,
            stale: 0,
            evictions: 0,
        }
    }
}

/// Mediator-side registry of provider state: a dense struct-of-arrays slab
/// plus a per-capability bitmap index of online providers.
#[derive(Debug)]
pub struct ProviderRegistry {
    /// Dense column store of provider state; slots are compacted with a
    /// column-wise `swap_remove` on unregister, so a slot index is only
    /// stable between mutations.
    columns: ProviderColumns,
    /// id → slot position in `columns`.
    // sbqa-lint: allow(hash-collection, "id-to-slot point lookups only; ordered traversal goes through the postings index")
    index: HashMap<ProviderId, u32>,
    /// For each capability class, the id→slot bitmap postings of online
    /// providers advertising it; the final entry ([`ONLINE_LIST`]) holds
    /// every online provider.
    postings: Vec<PostingsMap>,
    /// Reusable output buffer for multi-capability merges; grows once to the
    /// largest candidate set and is then recycled, so steady-state merges
    /// allocate nothing.
    merge_scratch: Vec<u32>,
    /// Reusable 1024-word chunk buffer for the bitwise merge kernels.
    merge_bits: MergeScratch,
    /// Number of *registered* providers (online or not) advertising each
    /// capability class. Lets `starvation_error` distinguish "nobody is able"
    /// from "the able ones are offline" without scanning the slab.
    class_counts: [usize; MAX_CAPABILITY_CLASSES as usize],
    /// Number of registered providers per distinct capability mask. Per-class
    /// counts cannot decide conjunctive (`All`) requirements exactly — two
    /// providers may cover the classes pairwise without either covering all
    /// of them — so the mask histogram settles the ambiguous case. Its size
    /// is the number of *distinct capability profiles*, which real
    /// populations keep tiny (a handful of deployment configurations) even
    /// though an adversarial population could make it approach |P|.
    // sbqa-lint: allow(hash-collection, "point updates plus an order-insensitive existential scan (any), never ordered iteration")
    mask_counts: HashMap<u64, usize>,
    /// Materialised multi-capability merge plans, keyed by requirement (see
    /// [`PlanCache`]).
    plan_cache: PlanCache,
    /// Registry-wide mutation stamp: bumped by **every** mutating call —
    /// register, unregister, online toggles *and load updates*. Stamps the
    /// [`PlanToken`] of every stable view, so equal tokens bracket a window
    /// with no mutation at all and a gathered [`CandidateBlock`]
    /// (`crate::allocator::CandidateBlock`) can be reused verbatim.
    mutation_stamp: u64,
    /// Replication hook: observes every *effective* mutation (exactly the
    /// calls that bump `mutation_stamp`) in commit order. `None` — the
    /// default — costs one null check per mutation. Clones never inherit it
    /// (see [`Clone`] below): a clone is a state fork, and two registries
    /// feeding one log would corrupt its sequencing.
    sink: Option<Box<dyn DeltaSink>>,
}

/// Clones everything *except* the delta sink, which stays with the original:
/// a cloned registry is a checkpoint or replica, not a second producer for
/// the primary's log.
impl Clone for ProviderRegistry {
    fn clone(&self) -> Self {
        Self {
            columns: self.columns.clone(),
            index: self.index.clone(),
            postings: self.postings.clone(),
            merge_scratch: self.merge_scratch.clone(),
            merge_bits: self.merge_bits.clone(),
            class_counts: self.class_counts,
            mask_counts: self.mask_counts.clone(),
            plan_cache: self.plan_cache.clone(),
            mutation_stamp: self.mutation_stamp,
            sink: None,
        }
    }
}

impl Default for ProviderRegistry {
    fn default() -> Self {
        Self {
            columns: ProviderColumns::new(),
            // sbqa-lint: allow(hash-collection, "id-to-slot point lookups only; ordered traversal goes through the postings index")
            index: HashMap::new(),
            postings: vec![PostingsMap::new(); ONLINE_LIST + 1],
            merge_scratch: Vec::new(),
            merge_bits: MergeScratch::new(),
            class_counts: [0; MAX_CAPABILITY_CLASSES as usize],
            // sbqa-lint: allow(hash-collection, "point updates plus an order-insensitive existential scan (any), never ordered iteration")
            mask_counts: HashMap::new(),
            plan_cache: PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY),
            mutation_stamp: 0,
            sink: None,
        }
    }
}

impl ProviderRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The postings maps a provider belongs to while online: one per
    /// advertised capability class, plus the all-online map.
    fn lists_of(capabilities: CapabilitySet) -> impl Iterator<Item = usize> {
        capabilities
            .iter()
            .map(|cap| cap.class() as usize)
            .chain(std::iter::once(ONLINE_LIST))
    }

    /// Inserts `slot` into the postings maps of every capability the
    /// provider advertises, and into the online map. The provider must be
    /// online.
    fn index_slot(&mut self, slot: u32) {
        let snapshot = self.columns.snapshot(slot as usize);
        debug_assert!(snapshot.online);
        for list in Self::lists_of(snapshot.capabilities) {
            self.postings[list].insert(snapshot.id, slot);
        }
    }

    /// Removes the provider in `slot` from the postings maps of every
    /// capability it advertises, and from the online map.
    fn unindex_slot(&mut self, slot: u32) {
        let snapshot = self.columns.snapshot(slot as usize);
        for list in Self::lists_of(snapshot.capabilities) {
            self.postings[list].remove(snapshot.id);
        }
    }

    /// Adds (`+1`) or removes (`-1`) a registered capability profile from the
    /// per-class and per-mask histograms.
    fn count_profile(&mut self, capabilities: CapabilitySet, delta: isize) {
        for cap in capabilities.iter() {
            let count = &mut self.class_counts[cap.class() as usize];
            // sbqa-lint: allow(panic-hygiene, "register/deregister pairing keeps per-class counts non-negative; underflow is a caller bug")
            *count = count.checked_add_signed(delta).expect("count stays >= 0");
        }
        let entry = self.mask_counts.entry(capabilities.bits()).or_insert(0);
        // sbqa-lint: allow(panic-hygiene, "register/deregister pairing keeps per-mask counts non-negative; underflow is a caller bug")
        *entry = entry.checked_add_signed(delta).expect("count stays >= 0");
        if *entry == 0 {
            self.mask_counts.remove(&capabilities.bits());
        }
    }

    /// Inserts a snapshot into the slab and indexes it if online. Replaces
    /// any existing provider with the same id.
    fn insert_snapshot(&mut self, snapshot: ProviderSnapshot) {
        self.mutation_stamp += 1;
        if let Some(&slot) = self.index.get(&snapshot.id) {
            let previous = self.columns.snapshot(slot as usize);
            if previous.online {
                self.unindex_slot(slot);
            }
            self.count_profile(previous.capabilities, -1);
            self.columns.set(slot as usize, snapshot);
            if snapshot.online {
                self.index_slot(slot);
            }
        } else {
            // sbqa-lint: allow(panic-hygiene, "slot ids are u32 by design; a 4-billion-provider registry exceeds the design envelope")
            let slot = u32::try_from(self.columns.len()).expect("provider population fits in u32");
            self.columns.push(snapshot);
            self.index.insert(snapshot.id, slot);
            if snapshot.online {
                self.index_slot(slot);
            }
        }
        self.count_profile(snapshot.capabilities, 1);
    }

    /// Hands the effective mutation to the attached sink, if any. Call sites
    /// mirror the `mutation_stamp` bumps one-for-one — that equivalence is
    /// what lets a replica reproduce the primary's stamp by replay.
    fn emit(&mut self, delta: RegistryDelta) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(&delta);
        }
    }

    /// Attaches a replication sink that will observe every effective
    /// mutation from here on. Replaces (and drops) any previous sink.
    pub fn set_delta_sink(&mut self, sink: Box<dyn DeltaSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the replication sink, leaving the hook disabled.
    pub fn take_delta_sink(&mut self) -> Option<Box<dyn DeltaSink>> {
        self.sink.take()
    }

    /// Whether a replication sink is currently attached.
    #[must_use]
    pub fn delta_sink_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// Registers (or replaces) a provider with the given capabilities and
    /// capacity, initially online and idle.
    pub fn register(&mut self, id: ProviderId, capabilities: CapabilitySet, capacity: f64) {
        self.insert_snapshot(ProviderSnapshot::idle(id, capabilities, capacity));
        self.emit(RegistryDelta::Register {
            id,
            capabilities,
            capacity,
        });
    }

    /// Removes a provider entirely (it left the system for good).
    /// Returns `true` if the provider existed.
    pub fn unregister(&mut self, id: ProviderId) -> bool {
        let Some(slot) = self.index.remove(&id) else {
            return false;
        };
        self.mutation_stamp += 1;
        let removed = self.columns.snapshot(slot as usize);
        if removed.online {
            self.unindex_slot(slot);
        }
        self.count_profile(removed.capabilities, -1);
        let last = (self.columns.len() - 1) as u32;
        self.columns.swap_remove(slot as usize);
        if slot != last {
            // The former last row moved into `slot`: re-point its index entry
            // and, if it is online, its postings payloads. The maps are keyed
            // by provider id — which did not change — so each is an id-keyed
            // point update, no ordering to repair.
            let moved = self.columns.snapshot(slot as usize);
            self.index.insert(moved.id, slot);
            if moved.online {
                for list in Self::lists_of(moved.capabilities) {
                    self.postings[list].patch_slot(moved.id, slot);
                }
            }
        }
        self.emit(RegistryDelta::Unregister { id });
        true
    }

    /// Marks a provider online or offline. Unknown providers are an error.
    pub fn set_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        let Some(&slot) = self.index.get(&id) else {
            return Err(SbqaError::UnknownProvider { provider: id });
        };
        let was_online = self.columns.online()[slot as usize];
        if was_online == online {
            return Ok(());
        }
        self.mutation_stamp += 1;
        if was_online {
            self.unindex_slot(slot);
        }
        self.columns.set_online(slot as usize, online);
        if online {
            self.index_slot(slot);
        }
        self.emit(RegistryDelta::SetOnline { id, online });
        Ok(())
    }

    /// Updates a provider's load state (utilization in virtual seconds of
    /// queued work, and queue length). Unknown providers are an error.
    pub fn update_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        match self.index.get(&id) {
            Some(&slot) => {
                // Load changes never invalidate cached plans (membership and
                // slots are untouched) but they do change column values, so
                // the token stamp must move or a memoized column gather
                // would serve yesterday's utilization.
                self.mutation_stamp += 1;
                self.columns
                    .set_load(slot as usize, utilization, queue_length);
                self.emit(RegistryDelta::UpdateLoad {
                    id,
                    utilization,
                    queue_length,
                });
                Ok(())
            }
            None => Err(SbqaError::UnknownProvider { provider: id }),
        }
    }

    /// Looks up one provider's snapshot (assembled from the columns).
    #[must_use]
    pub fn get(&self, id: ProviderId) -> Option<ProviderSnapshot> {
        self.index
            .get(&id)
            .map(|&slot| self.columns.snapshot(slot as usize))
    }

    /// Number of registered providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if no provider is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Number of providers currently online — the cached cardinality of the
    /// all-online postings map, O(1).
    #[must_use]
    pub fn online_count(&self) -> usize {
        self.postings[ONLINE_LIST].len()
    }

    /// Iterates over all provider snapshots (online or not), in slab order.
    pub fn iter(&self) -> impl Iterator<Item = ProviderSnapshot> + '_ {
        self.columns.snapshots()
    }

    /// The underlying struct-of-arrays column store, slot-indexed.
    #[must_use]
    pub fn columns(&self) -> &ProviderColumns {
        &self.columns
    }

    /// The set `Pq` as a borrowed, zero-clone view: every online provider
    /// able to perform `query`, in ascending id order.
    ///
    /// Single-capability requirements (and degenerate `All{}` / `Any{}`) wrap
    /// the class's postings map directly — O(1), no scan, no
    /// materialisation. Multi-capability requirements go through the
    /// candidate-plan cache: a requirement seen before whose mentioned
    /// classes' postings epochs are unchanged is answered from its
    /// materialised slot list with **zero merge work** — an
    /// O(#classes-in-requirement) validity check. Misses (and stale plans)
    /// pay the chunk-wise merge — a word-parallel intersection for `All`, an
    /// OR-union for `Any` — into the entry's own stable buffer, so a
    /// later resolution can no longer clobber the storage behind a
    /// previously returned view. With the cache disabled
    /// ([`set_plan_cache_capacity(0)`](ProviderRegistry::set_plan_cache_capacity))
    /// merges land in a registry-wide scratch buffer reused across calls
    /// (hence `&mut self`). Every path is allocation-free once warmed up.
    #[must_use]
    pub fn candidates(&mut self, query: &Query) -> Candidates<'_> {
        self.resolve_with_handle(query).0
    }

    /// [`candidates`](ProviderRegistry::candidates), additionally returning a
    /// [`PlanHandle`] when the view came from the candidate-plan cache.
    /// Batch drains memoize the handle per requirement and re-enter through
    /// [`cached_plan_view`](ProviderRegistry::cached_plan_view), skipping
    /// even the key lookup for the second and later queries of a group.
    #[must_use]
    pub fn resolve_with_handle(&mut self, query: &Query) -> (Candidates<'_>, Option<PlanHandle>) {
        let required = query.required;
        let set = required.classes();
        match set.len() {
            // `All{}` is vacuously satisfied by every online provider;
            // `Any{}` by none.
            0 => match required {
                CapabilityRequirement::All(_) => {
                    let view = Candidates::from_map(&self.columns, &self.postings[ONLINE_LIST])
                        .with_token(PlanToken {
                            plan: ONLINE_LIST as u64,
                            stamp: self.mutation_stamp,
                        });
                    (view, None)
                }
                CapabilityRequirement::Any(_) => {
                    (Candidates::from_postings(&self.columns, NO_POSTINGS), None)
                }
            },
            // The trivial one-bit case, where All and Any coincide: wrap the
            // class's postings map directly.
            1 => {
                // sbqa-lint: allow(panic-hygiene, "arm is reached only when the set has exactly one class")
                let class = set.iter().next().expect("singleton set").class();
                let view = Candidates::from_map(&self.columns, &self.postings[class as usize])
                    .with_token(PlanToken {
                        plan: u64::from(class),
                        stamp: self.mutation_stamp,
                    });
                (view, None)
            }
            _ => {
                let mut class_buffer = [0usize; MAX_CAPABILITY_CLASSES as usize];
                let count = Self::classes_of(set, &mut class_buffer);
                let classes = &class_buffer[..count];
                let conjunctive = matches!(required, CapabilityRequirement::All(_));
                if self.plan_cache.capacity == 0 {
                    // Caching disabled: merge into the shared scratch. The
                    // view gets no token — its backing buffer is clobbered
                    // by the next multi-class resolution, so nothing
                    // downstream may memoize it.
                    if conjunctive {
                        intersect_lists(
                            &self.postings,
                            classes,
                            &mut self.merge_scratch,
                            &mut self.merge_bits,
                        );
                    } else {
                        union_lists(
                            &self.postings,
                            classes,
                            &mut self.merge_scratch,
                            &mut self.merge_bits,
                        );
                    }
                    return (
                        Candidates::from_postings(&self.columns, &self.merge_scratch),
                        None,
                    );
                }
                let key = PlanKey::of(required);
                let idx = self.lookup_or_merge(key, classes, conjunctive);
                let entry = &self.plan_cache.entries[idx];
                let token = PlanToken {
                    plan: entry.occupancy,
                    stamp: self.mutation_stamp,
                };
                let handle = PlanHandle {
                    entry: idx as u32,
                    occupancy: entry.occupancy,
                };
                (
                    Candidates::from_postings(&self.columns, &entry.slots).with_token(token),
                    Some(handle),
                )
            }
        }
    }

    /// Resolves a multi-class requirement through the plan cache, returning
    /// the index of a fresh (hit) or freshly merged (miss/stale) entry.
    fn lookup_or_merge(&mut self, key: PlanKey, classes: &[usize], conjunctive: bool) -> usize {
        let cache = &mut self.plan_cache;
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(&idx) = cache.index.get(&key) {
            let idx = idx as usize;
            let fresh = cache.entries[idx]
                .stamps
                .iter()
                .all(|&(class, generation)| {
                    self.postings[class as usize].generation() == generation
                });
            cache.entries[idx].last_used = tick;
            if fresh {
                cache.hits += 1;
            } else {
                cache.stale += 1;
                Self::merge_into_entry(
                    &self.postings,
                    &mut self.merge_bits,
                    &mut cache.entries[idx],
                    classes,
                    conjunctive,
                );
            }
            return idx;
        }
        cache.misses += 1;
        let idx = if cache.entries.len() < cache.capacity {
            cache.entries.push(PlanEntry::vacant(key));
            cache.entries.len() - 1
        } else {
            // Evict the least-recently-used entry in place: its grown
            // buffers are recycled for the new tenant.
            let idx = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(pos, _)| pos)
                // sbqa-lint: allow(panic-hygiene, "guarded by capacity > 0: a non-empty cache always has a minimum element")
                .expect("capacity > 0 implies at least one entry");
            cache.evictions += 1;
            let old_key = cache.entries[idx].key;
            cache.index.remove(&old_key);
            idx
        };
        let occupancy = cache.next_occupancy;
        cache.next_occupancy += 1;
        cache.index.insert(key, idx as u32);
        let entry = &mut cache.entries[idx];
        entry.key = key;
        entry.occupancy = occupancy;
        entry.last_used = tick;
        Self::merge_into_entry(
            &self.postings,
            &mut self.merge_bits,
            entry,
            classes,
            conjunctive,
        );
        idx
    }

    /// Merges the mentioned classes' postings into the entry's slot buffer
    /// and stamps the epoch of every map the merge read.
    fn merge_into_entry(
        postings: &[PostingsMap],
        bits: &mut MergeScratch,
        entry: &mut PlanEntry,
        classes: &[usize],
        conjunctive: bool,
    ) {
        if conjunctive {
            intersect_lists(postings, classes, &mut entry.slots, bits);
        } else {
            union_lists(postings, classes, &mut entry.slots, bits);
        }
        entry.stamps.clear();
        entry.stamps.extend(
            classes
                .iter()
                .map(|&class| (class as u32, postings[class].generation())),
        );
    }

    /// `true` if `handle` still names a valid plan: the entry has not been
    /// reassigned to another requirement (occupancy match) and no postings
    /// map it was merged from has been mutated since (epoch match).
    #[must_use]
    pub fn plan_is_current(&self, handle: PlanHandle) -> bool {
        match self.plan_cache.entries.get(handle.entry as usize) {
            Some(entry) if entry.occupancy == handle.occupancy => {
                entry.stamps.iter().all(|&(class, generation)| {
                    self.postings[class as usize].generation() == generation
                })
            }
            _ => false,
        }
    }

    /// The cached plan behind `handle` as a candidates view, counting a
    /// cache hit and refreshing the entry's LRU position. Callers must have
    /// just checked [`plan_is_current`](ProviderRegistry::plan_is_current);
    /// serving a non-current handle would return another requirement's (or a
    /// stale) candidate set.
    #[must_use]
    pub fn cached_plan_view(&mut self, handle: PlanHandle) -> Candidates<'_> {
        debug_assert!(self.plan_is_current(handle), "handle validated by caller");
        let cache = &mut self.plan_cache;
        cache.tick += 1;
        cache.hits += 1;
        let tick = cache.tick;
        let entry = &mut cache.entries[handle.entry as usize];
        entry.last_used = tick;
        let token = PlanToken {
            plan: entry.occupancy,
            stamp: self.mutation_stamp,
        };
        Candidates::from_postings(&self.columns, &entry.slots).with_token(token)
    }

    /// Counters and occupancy of the candidate-plan cache.
    #[must_use]
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let cache = &self.plan_cache;
        PlanCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            stale_rebuilds: cache.stale,
            evictions: cache.evictions,
            entries: cache.entries.len(),
            capacity: cache.capacity,
        }
    }

    /// `true` if multi-capability resolutions go through the plan cache.
    #[must_use]
    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache.capacity > 0
    }

    /// Re-bounds the candidate-plan cache, dropping every materialised plan
    /// (counters are kept). `0` disables caching: multi-capability merges
    /// fall back to the registry-wide scratch buffer, re-merging on every
    /// query — the pre-cache behaviour, kept for comparison benchmarks.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        let cache = &mut self.plan_cache;
        cache.capacity = capacity;
        cache.entries.clear();
        cache.index.clear();
    }

    /// Materialises the classes of `set` into a stack buffer so the merge
    /// kernels iterate only the k mentioned classes. Returns the filled
    /// prefix length.
    fn classes_of(
        set: CapabilitySet,
        buffer: &mut [usize; MAX_CAPABILITY_CLASSES as usize],
    ) -> usize {
        let mut count = 0;
        for cap in set.iter() {
            buffer[count] = cap.class() as usize;
            count += 1;
        }
        count
    }

    /// The set `Pq` as an owned vector, sorted by id — an allocating
    /// convenience wrapper over [`ProviderRegistry::candidates`].
    #[must_use]
    pub fn capable_of(&mut self, query: &Query) -> Vec<ProviderSnapshot> {
        self.candidates(query).iter().collect()
    }

    /// Classifies a starvation: distinguishes "nobody can ever perform this"
    /// from "capable providers exist but none is online".
    ///
    /// Answered from the registered-provider histograms instead of the
    /// former O(|P|) slab scan: the per-class counts decide `Any`
    /// requirements and rule out `All` requirements with an uncovered class
    /// in O(|set|); the remaining conjunctive case checks the exact profile
    /// first and then walks the per-mask histogram, whose size is the number
    /// of distinct capability profiles — a handful in realistic populations,
    /// bounded by |P| only for adversarially diverse ones. The slab itself
    /// is never scanned, even when every query in an overloaded system
    /// starves.
    #[must_use]
    pub fn starvation_error(&self, query: &Query) -> SbqaError {
        if self.any_registered_capable(query.required) {
            SbqaError::NoProviderOnline { query: query.id }
        } else {
            SbqaError::NoCapableProvider { query: query.id }
        }
    }

    /// `true` if any registered provider (online or not) satisfies `required`.
    fn any_registered_capable(&self, required: CapabilityRequirement) -> bool {
        let set = required.classes();
        match required {
            CapabilityRequirement::Any(_) => set
                .iter()
                .any(|cap| self.class_counts[cap.class() as usize] > 0),
            CapabilityRequirement::All(_) => {
                if set.is_empty() {
                    return !self.columns.is_empty();
                }
                if set
                    .iter()
                    .any(|cap| self.class_counts[cap.class() as usize] == 0)
                {
                    return false;
                }
                set.len() == 1
                    // Exact-profile hit: some provider advertises precisely
                    // the required set (the common case when requirements
                    // mirror deployment profiles).
                    || self.mask_counts.contains_key(&set.bits())
                    || self
                        .mask_counts
                        .keys()
                        .any(|&mask| CapabilitySet::from_bits(mask).is_superset_of(set))
            }
        }
    }
}

// The slab's index and postings are derived data: serialize only the
// snapshots and rebuild the indexes on the way back in. The column store
// serializes as the row vector, so the wire format is unchanged from the
// array-of-structs layout.
impl Serialize for ProviderRegistry {
    fn to_value(&self) -> Value {
        self.columns.to_value()
    }
}

impl Deserialize for ProviderRegistry {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let rows = Vec::<ProviderSnapshot>::from_value(value)?;
        let mut registry = Self::new();
        for snapshot in rows {
            registry.insert_snapshot(snapshot);
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, ConsumerId, QueryId};

    fn query(cap: u8) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(cap)).build()
    }

    fn caps(cap: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(cap))
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ProviderRegistry::new();
        assert!(reg.is_empty());
        reg.register(ProviderId::new(1), caps(0), 2.0);
        reg.register(ProviderId::new(2), caps(1), 3.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.online_count(), 2);
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().capacity, 2.0);
        assert!(reg.get(ProviderId::new(9)).is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn capable_of_filters_by_capability_and_online() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.register(ProviderId::new(2), caps(0), 1.0);
        reg.register(ProviderId::new(3), caps(1), 1.0);
        reg.set_online(ProviderId::new(2), false).unwrap();

        let capable = reg.capable_of(&query(0));
        let ids: Vec<u64> = capable.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(reg.online_count(), 2);
    }

    #[test]
    fn load_updates_are_visible_in_snapshots() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.update_load(ProviderId::new(1), 7.5, 3).unwrap();
        let snap = reg.get(ProviderId::new(1)).unwrap();
        assert_eq!(snap.utilization, 7.5);
        assert_eq!(snap.queue_length, 3);
        // Degenerate utilization is clamped to zero.
        reg.update_load(ProviderId::new(1), f64::NAN, 0).unwrap();
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().utilization, 0.0);
    }

    #[test]
    fn unknown_provider_operations_fail() {
        let mut reg = ProviderRegistry::new();
        assert!(matches!(
            reg.set_online(ProviderId::new(1), true),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(matches!(
            reg.update_load(ProviderId::new(1), 1.0, 1),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(!reg.unregister(ProviderId::new(1)));
    }

    #[test]
    fn starvation_error_distinguishes_causes() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        // A query needing capability 5: nobody has it.
        assert!(matches!(
            reg.starvation_error(&query(5)),
            SbqaError::NoCapableProvider { .. }
        ));
        // A query needing capability 0 while the only capable provider is
        // offline: capability exists, nobody online.
        reg.set_online(ProviderId::new(1), false).unwrap();
        assert!(matches!(
            reg.starvation_error(&query(0)),
            SbqaError::NoProviderOnline { .. }
        ));
    }

    #[test]
    fn unregister_removes_from_capable_set() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        assert!(reg.unregister(ProviderId::new(1)));
        assert!(reg.capable_of(&query(0)).is_empty());
    }

    #[test]
    fn candidates_view_is_sorted_by_id_regardless_of_registration_order() {
        let mut reg = ProviderRegistry::new();
        for id in [9u64, 2, 7, 4, 1] {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        let view = reg.candidates(&query(0));
        let ids: Vec<u64> = view.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 4, 7, 9]);
        // The owned wrapper agrees with the view.
        let owned: Vec<u64> = reg
            .capable_of(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(owned, ids);
    }

    #[test]
    fn set_online_maintains_postings_incrementally() {
        let mut reg = ProviderRegistry::new();
        for id in 1..=4u64 {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        reg.set_online(ProviderId::new(2), false).unwrap();
        reg.set_online(ProviderId::new(4), false).unwrap();
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3]);
        // Toggling back reinserts at the right sorted position; re-setting
        // the same state is a no-op.
        reg.set_online(ProviderId::new(2), true).unwrap();
        reg.set_online(ProviderId::new(2), true).unwrap();
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn unregister_patches_the_moved_slots_postings() {
        // Unregistering a middle provider swap-removes the slab: the last
        // row moves into the freed slot and its postings payloads must
        // follow, or the index would point at stale (or out-of-range) slots.
        let mut reg = ProviderRegistry::new();
        for id in 1..=5u64 {
            reg.register(ProviderId::new(id), caps(0), id as f64);
        }
        assert!(reg.unregister(ProviderId::new(2)));
        let view = reg.candidates(&query(0));
        let ids: Vec<u64> = view.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1, 3, 4, 5]);
        // The moved provider (id 5) is still addressable and intact.
        assert_eq!(reg.get(ProviderId::new(5)).unwrap().capacity, 5.0);
        assert!(reg.unregister(ProviderId::new(5)));
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn multi_capability_providers_appear_in_every_postings_list() {
        let mut reg = ProviderRegistry::new();
        let both = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(1)]);
        reg.register(ProviderId::new(1), both, 1.0);
        reg.register(ProviderId::new(2), caps(1), 1.0);
        assert_eq!(reg.capable_of(&query(0)).len(), 1);
        assert_eq!(reg.capable_of(&query(1)).len(), 2);
        // Re-registering with different capabilities moves the postings.
        reg.register(ProviderId::new(1), caps(1), 1.0);
        assert!(reg.capable_of(&query(0)).is_empty());
        assert_eq!(reg.capable_of(&query(1)).len(), 2);
    }

    fn multi_query(req: CapabilityRequirement) -> Query {
        Query::requiring(QueryId::new(1), ConsumerId::new(1), req).build()
    }

    fn set_of(classes: &[u8]) -> CapabilitySet {
        CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new))
    }

    fn ids_of(reg: &mut ProviderRegistry, req: CapabilityRequirement) -> Vec<u64> {
        reg.candidates(&multi_query(req))
            .iter()
            .map(|p| p.id.raw())
            .collect()
    }

    #[test]
    fn all_requirement_intersects_postings_lists() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), set_of(&[0, 1]), 1.0);
        reg.register(ProviderId::new(2), set_of(&[0]), 1.0);
        reg.register(ProviderId::new(3), set_of(&[0, 1, 2]), 1.0);
        reg.register(ProviderId::new(4), set_of(&[1, 2]), 1.0);

        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(set_of(&[0, 1]))),
            vec![1, 3]
        );
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(set_of(&[0, 1, 2]))),
            vec![3]
        );
        assert!(ids_of(&mut reg, CapabilityRequirement::All(set_of(&[0, 3]))).is_empty());
        // Offline providers drop out of the intersection.
        reg.set_online(ProviderId::new(3), false).unwrap();
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(set_of(&[0, 1]))),
            vec![1]
        );
    }

    #[test]
    fn any_requirement_unions_postings_lists_without_duplicates() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), set_of(&[0, 1]), 1.0);
        reg.register(ProviderId::new(2), set_of(&[0]), 1.0);
        reg.register(ProviderId::new(3), set_of(&[2]), 1.0);
        reg.register(ProviderId::new(4), set_of(&[5]), 1.0);

        // Provider 1 appears in both merged lists but only once in Pq.
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::Any(set_of(&[0, 1]))),
            vec![1, 2]
        );
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::Any(set_of(&[1, 2, 5]))),
            vec![1, 3, 4]
        );
        assert!(ids_of(&mut reg, CapabilityRequirement::Any(set_of(&[7, 8]))).is_empty());
    }

    #[test]
    fn degenerate_empty_requirements() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), set_of(&[0]), 1.0);
        reg.register(ProviderId::new(2), set_of(&[1]), 1.0);
        reg.set_online(ProviderId::new(2), false).unwrap();

        // All{} is satisfied by every *online* provider, Any{} by none.
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(CapabilitySet::EMPTY)),
            vec![1]
        );
        assert!(ids_of(&mut reg, CapabilityRequirement::Any(CapabilitySet::EMPTY)).is_empty());
    }

    #[test]
    fn merged_candidates_match_brute_force_after_churn() {
        let mut reg = ProviderRegistry::new();
        for id in 0..40u64 {
            reg.register(
                ProviderId::new(id),
                set_of(&[(id % 3) as u8, (id % 5) as u8]),
                1.0,
            );
        }
        for id in [4u64, 9, 14] {
            reg.set_online(ProviderId::new(id), false).unwrap();
        }
        for id in [7u64, 21, 35] {
            assert!(reg.unregister(ProviderId::new(id)));
        }

        for req in [
            CapabilityRequirement::All(set_of(&[0, 1])),
            CapabilityRequirement::All(set_of(&[1, 2, 3])),
            CapabilityRequirement::Any(set_of(&[2, 4])),
            CapabilityRequirement::Any(set_of(&[0, 3, 4])),
        ] {
            let query = multi_query(req);
            let mut expected: Vec<u64> = reg
                .iter()
                .filter(|p| p.can_perform(&query))
                .map(|p| p.id.raw())
                .collect();
            expected.sort_unstable();
            assert_eq!(ids_of(&mut reg, req), expected, "requirement {req}");
        }
    }

    #[test]
    fn starvation_error_handles_requirement_semantics() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), set_of(&[0, 1]), 1.0);
        reg.register(ProviderId::new(2), set_of(&[1, 2]), 1.0);

        // Per-class counts are all positive for {0, 2}, yet no single
        // provider covers both: the mask histogram settles it.
        assert!(matches!(
            reg.starvation_error(&multi_query(CapabilityRequirement::All(set_of(&[0, 2])))),
            SbqaError::NoCapableProvider { .. }
        ));
        assert!(matches!(
            reg.starvation_error(&multi_query(CapabilityRequirement::All(set_of(&[0, 5])))),
            SbqaError::NoCapableProvider { .. }
        ));
        assert!(matches!(
            reg.starvation_error(&multi_query(CapabilityRequirement::Any(set_of(&[5, 6])))),
            SbqaError::NoCapableProvider { .. }
        ));

        // Capable providers exist but are offline.
        reg.set_online(ProviderId::new(1), false).unwrap();
        reg.set_online(ProviderId::new(2), false).unwrap();
        for req in [
            CapabilityRequirement::All(set_of(&[0, 1])),
            CapabilityRequirement::Any(set_of(&[2, 5])),
            CapabilityRequirement::All(CapabilitySet::EMPTY),
        ] {
            assert!(
                matches!(
                    reg.starvation_error(&multi_query(req)),
                    SbqaError::NoProviderOnline { .. }
                ),
                "requirement {req}"
            );
        }

        // Unregistering decrements the histograms: once provider 1 is gone,
        // nothing ever covered {0, 1} together.
        assert!(reg.unregister(ProviderId::new(1)));
        assert!(matches!(
            reg.starvation_error(&multi_query(CapabilityRequirement::All(set_of(&[0, 1])))),
            SbqaError::NoCapableProvider { .. }
        ));
    }

    #[test]
    fn online_count_tracks_the_online_postings_list() {
        let mut reg = ProviderRegistry::new();
        for id in 1..=5u64 {
            reg.register(ProviderId::new(id), set_of(&[(id % 2) as u8]), 1.0);
        }
        assert_eq!(reg.online_count(), 5);
        reg.set_online(ProviderId::new(2), false).unwrap();
        assert_eq!(reg.online_count(), 4);
        assert!(reg.unregister(ProviderId::new(3)));
        assert_eq!(reg.online_count(), 3);
        reg.set_online(ProviderId::new(2), true).unwrap();
        assert_eq!(reg.online_count(), 4);
    }

    #[test]
    fn serde_round_trip_rebuilds_the_index() {
        let mut reg = ProviderRegistry::new();
        for id in [3u64, 1, 2] {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        reg.set_online(ProviderId::new(2), false).unwrap();
        reg.update_load(ProviderId::new(1), 4.5, 2).unwrap();

        let text = serde::to_string(&reg);
        let mut back: ProviderRegistry = serde::from_str(&text).unwrap();

        assert_eq!(back.len(), 3);
        assert_eq!(back.online_count(), 2);
        assert_eq!(back.get(ProviderId::new(1)).unwrap().utilization, 4.5);
        let ids: Vec<u64> = back
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn bitmap_scale_population_keeps_candidates_id_sorted() {
        // Enough providers in one class to promote its chunk containers to
        // bitmaps, with churn in the middle: the id-ordered enumeration
        // contract must hold regardless of container shape.
        let mut reg = ProviderRegistry::new();
        let n = 6000u64;
        for id in 0..n {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        for id in (0..n).step_by(7) {
            reg.set_online(ProviderId::new(id), false).unwrap();
        }
        for id in (0..n).step_by(11) {
            reg.unregister(ProviderId::new(id));
        }
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending ids");
        let expected: Vec<u64> = (0..n).filter(|id| id % 7 != 0 && id % 11 != 0).collect();
        assert_eq!(ids, expected);
    }

    /// A small overlapping population for the plan-cache tests.
    fn cache_registry() -> ProviderRegistry {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), set_of(&[0, 1]), 1.0);
        reg.register(ProviderId::new(2), set_of(&[0]), 1.0);
        reg.register(ProviderId::new(3), set_of(&[0, 1, 2]), 1.0);
        reg.register(ProviderId::new(4), set_of(&[1, 2]), 1.0);
        reg.register(ProviderId::new(5), set_of(&[5]), 1.0);
        reg
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let mut reg = cache_registry();
        assert!(reg.plan_cache_enabled());
        let all01 = CapabilityRequirement::All(set_of(&[0, 1]));
        let any12 = CapabilityRequirement::Any(set_of(&[1, 2]));

        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);
        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);
        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);
        let stats = reg.plan_cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(stats.entries, 1);

        assert_eq!(ids_of(&mut reg, any12), vec![1, 3, 4]);
        let stats = reg.plan_cache_stats();
        assert_eq!((stats.misses, stats.hits), (2, 2));
        assert_eq!(stats.entries, 2);
        // All and Any over the same set are distinct keys.
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(set_of(&[1, 2]))),
            vec![3, 4]
        );
        assert_eq!(reg.plan_cache_stats().entries, 3);
        // Single-class and degenerate requirements never enter the cache.
        assert_eq!(
            ids_of(&mut reg, CapabilityRequirement::All(set_of(&[0]))),
            vec![1, 2, 3]
        );
        assert_eq!(reg.plan_cache_stats().entries, 3);
        assert!((reg.plan_cache_stats().hit_rate() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn mutations_in_mentioned_classes_force_stale_rebuilds() {
        let mut reg = cache_registry();
        let all01 = CapabilityRequirement::All(set_of(&[0, 1]));
        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);

        // Online flip inside a mentioned class: rebuild, correct answer.
        reg.set_online(ProviderId::new(3), false).unwrap();
        assert_eq!(ids_of(&mut reg, all01), vec![1]);
        assert_eq!(reg.plan_cache_stats().stale_rebuilds, 1);

        // Unregister with slab compaction (provider 1 is not last: the
        // swap-remove re-points the moved row's postings): rebuild again.
        assert!(reg.unregister(ProviderId::new(1)));
        assert!(ids_of(&mut reg, all01).is_empty());
        assert_eq!(reg.plan_cache_stats().stale_rebuilds, 2);

        // Registration into a mentioned class too.
        reg.register(ProviderId::new(9), set_of(&[0, 1]), 1.0);
        assert_eq!(ids_of(&mut reg, all01), vec![9]);
        let stats = reg.plan_cache_stats();
        assert_eq!(stats.stale_rebuilds, 3);
        // One initial miss, never a second: the entry was rebuilt in place.
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn plans_survive_unrelated_churn_and_load_updates() {
        let mut reg = cache_registry();
        let all01 = CapabilityRequirement::All(set_of(&[0, 1]));
        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);

        // Churn confined to classes the plan never mentions…
        reg.register(ProviderId::new(6), set_of(&[5, 6]), 1.0);
        reg.set_online(ProviderId::new(5), false).unwrap();
        // …and load updates on a provider *inside* the plan (load is column
        // data, not membership: epochs stay put by design).
        reg.update_load(ProviderId::new(1), 3.0, 2).unwrap();

        assert_eq!(ids_of(&mut reg, all01), vec![1, 3]);
        let stats = reg.plan_cache_stats();
        assert_eq!(stats.stale_rebuilds, 0, "no mentioned class changed");
        assert_eq!((stats.misses, stats.hits), (1, 1));
        // The hit still serves the *current* columns: utilization is live.
        let view = reg.candidates(&multi_query(all01));
        assert_eq!(
            view.iter().find(|p| p.id.raw() == 1).unwrap().utilization,
            3.0
        );
    }

    #[test]
    fn plan_cache_lru_evicts_at_capacity_and_capacity_zero_disables() {
        let mut reg = cache_registry();
        reg.set_plan_cache_capacity(2);
        let reqs = [
            CapabilityRequirement::All(set_of(&[0, 1])),
            CapabilityRequirement::Any(set_of(&[1, 2])),
            CapabilityRequirement::All(set_of(&[1, 2])),
        ];
        for req in reqs {
            let _ = ids_of(&mut reg, req);
        }
        let stats = reg.plan_cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, 2);
        // The least-recently-used entry (the first) was the victim: probing
        // it again misses, the survivor still hits.
        let _ = ids_of(&mut reg, reqs[0]);
        assert_eq!(reg.plan_cache_stats().misses, 4);
        let _ = ids_of(&mut reg, reqs[2]);
        assert_eq!(reg.plan_cache_stats().hits, 1);

        // Capacity 0: the legacy always-merge path, no cache traffic at all,
        // same answers.
        reg.set_plan_cache_capacity(0);
        assert!(!reg.plan_cache_enabled());
        assert_eq!(ids_of(&mut reg, reqs[0]), vec![1, 3]);
        assert_eq!(reg.plan_cache_stats().lookups(), 5);
        assert_eq!(reg.plan_cache_stats().entries, 0);
    }

    #[test]
    fn plan_handles_validate_and_expire() {
        let mut reg = cache_registry();
        let q = multi_query(CapabilityRequirement::All(set_of(&[0, 1])));

        let (view, handle) = reg.resolve_with_handle(&q);
        assert_eq!(view.len(), 2);
        let handle = handle.expect("multi-class resolution is cacheable");
        assert!(reg.plan_is_current(handle));

        // A cached view through the handle is the same plan — and a hit.
        let hits_before = reg.plan_cache_stats().hits;
        let ids: Vec<u64> = reg
            .cached_plan_view(handle)
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(reg.plan_cache_stats().hits, hits_before + 1);

        // Any mutation of a mentioned class expires the handle.
        reg.set_online(ProviderId::new(2), false).unwrap();
        assert!(!reg.plan_is_current(handle));

        // Single-class and disabled-cache resolutions carry no handle.
        let (_, single) = reg.resolve_with_handle(&query(0));
        assert!(single.is_none());
        reg.set_plan_cache_capacity(0);
        let (_, none) = reg.resolve_with_handle(&q);
        assert!(none.is_none());
    }

    #[test]
    fn plan_tokens_name_distinct_storage() {
        let mut reg = cache_registry();
        let all01 = multi_query(CapabilityRequirement::All(set_of(&[0, 1])));
        let any12 = multi_query(CapabilityRequirement::Any(set_of(&[1, 2])));

        // Distinct plans carry distinct token plan-numbers; the same plan
        // re-resolved without intervening mutation carries the same token.
        let token_a = reg.candidates(&all01).token().unwrap();
        let token_b = reg.candidates(&any12).token().unwrap();
        let token_a2 = reg.candidates(&all01).token().unwrap();
        assert_ne!(token_a.plan, token_b.plan);
        assert_eq!(token_a, token_a2);
        // Cached-plan numbers never collide with the class-list namespace
        // (0..=ONLINE_LIST), which single-class views use.
        assert!(token_a.plan > ONLINE_LIST as u64);
        assert!(token_b.plan > ONLINE_LIST as u64);
        let single = reg.candidates(&query(0)).token().unwrap();
        assert_eq!(single.plan, 0);

        // Any mutation — even a pure load update — moves the stamp, so
        // memoized column gathers can never serve stale utilization.
        reg.update_load(ProviderId::new(1), 1.0, 1).unwrap();
        let token_a3 = reg.candidates(&all01).token().unwrap();
        assert_eq!(token_a3.plan, token_a.plan, "same storage, still a hit");
        assert_ne!(token_a3.stamp, token_a.stamp, "stamp must move");

        // An evicted-and-reassigned entry gets a fresh occupancy number, so
        // a stale token can never alias recycled storage.
        reg.set_plan_cache_capacity(1);
        let token_c = reg.candidates(&all01).token().unwrap();
        let token_d = reg.candidates(&any12).token().unwrap(); // evicts all01
        let token_e = reg.candidates(&all01).token().unwrap(); // evicts any12
        assert_ne!(token_c.plan, token_e.plan);
        assert_ne!(token_d.plan, token_e.plan);
    }
}
