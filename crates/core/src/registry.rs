//! The mediator's provider registry.
//!
//! The registry tracks which providers exist, whether they are online, what
//! they can do and how loaded they currently are. It answers the only
//! question the allocation process needs from it: *which providers are able
//! to perform this query right now* (the set `Pq`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sbqa_types::{CapabilitySet, ProviderId, Query, SbqaError, SbqaResult};

use crate::allocator::ProviderSnapshot;

/// Mediator-side registry of provider state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProviderRegistry {
    providers: HashMap<ProviderId, ProviderSnapshot>,
}

impl ProviderRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a provider with the given capabilities and
    /// capacity, initially online and idle.
    pub fn register(&mut self, id: ProviderId, capabilities: CapabilitySet, capacity: f64) {
        self.providers
            .insert(id, ProviderSnapshot::idle(id, capabilities, capacity));
    }

    /// Removes a provider entirely (it left the system for good).
    /// Returns `true` if the provider existed.
    pub fn unregister(&mut self, id: ProviderId) -> bool {
        self.providers.remove(&id).is_some()
    }

    /// Marks a provider online or offline. Unknown providers are an error.
    pub fn set_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        match self.providers.get_mut(&id) {
            Some(p) => {
                p.online = online;
                Ok(())
            }
            None => Err(SbqaError::UnknownProvider { provider: id }),
        }
    }

    /// Updates a provider's load state (utilization in virtual seconds of
    /// queued work, and queue length). Unknown providers are an error.
    pub fn update_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        match self.providers.get_mut(&id) {
            Some(p) => {
                p.utilization = if utilization.is_finite() && utilization > 0.0 {
                    utilization
                } else {
                    0.0
                };
                p.queue_length = queue_length;
                Ok(())
            }
            None => Err(SbqaError::UnknownProvider { provider: id }),
        }
    }

    /// Looks up one provider's snapshot.
    #[must_use]
    pub fn get(&self, id: ProviderId) -> Option<&ProviderSnapshot> {
        self.providers.get(&id)
    }

    /// Number of registered providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// `true` if no provider is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Number of providers currently online.
    #[must_use]
    pub fn online_count(&self) -> usize {
        self.providers.values().filter(|p| p.online).count()
    }

    /// Iterates over all provider snapshots (online or not).
    pub fn iter(&self) -> impl Iterator<Item = &ProviderSnapshot> {
        self.providers.values()
    }

    /// The set `Pq`: every online provider able to perform `query`, sorted by
    /// id for determinism.
    #[must_use]
    pub fn capable_of(&self, query: &Query) -> Vec<ProviderSnapshot> {
        let mut capable: Vec<ProviderSnapshot> = self
            .providers
            .values()
            .filter(|p| p.can_perform(query))
            .copied()
            .collect();
        capable.sort_by_key(|p| p.id);
        capable
    }

    /// Classifies a starvation: distinguishes "nobody can ever perform this"
    /// from "capable providers exist but none is online".
    #[must_use]
    pub fn starvation_error(&self, query: &Query) -> SbqaError {
        let any_capable = self
            .providers
            .values()
            .any(|p| p.capabilities.contains(query.required_capability));
        if any_capable {
            SbqaError::NoProviderOnline { query: query.id }
        } else {
            SbqaError::NoCapableProvider { query: query.id }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, ConsumerId, QueryId};

    fn query(cap: u8) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(cap)).build()
    }

    fn caps(cap: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(cap))
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ProviderRegistry::new();
        assert!(reg.is_empty());
        reg.register(ProviderId::new(1), caps(0), 2.0);
        reg.register(ProviderId::new(2), caps(1), 3.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.online_count(), 2);
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().capacity, 2.0);
        assert!(reg.get(ProviderId::new(9)).is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn capable_of_filters_by_capability_and_online() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.register(ProviderId::new(2), caps(0), 1.0);
        reg.register(ProviderId::new(3), caps(1), 1.0);
        reg.set_online(ProviderId::new(2), false).unwrap();

        let capable = reg.capable_of(&query(0));
        let ids: Vec<u64> = capable.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(reg.online_count(), 2);
    }

    #[test]
    fn load_updates_are_visible_in_snapshots() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.update_load(ProviderId::new(1), 7.5, 3).unwrap();
        let snap = reg.get(ProviderId::new(1)).unwrap();
        assert_eq!(snap.utilization, 7.5);
        assert_eq!(snap.queue_length, 3);
        // Degenerate utilization is clamped to zero.
        reg.update_load(ProviderId::new(1), f64::NAN, 0).unwrap();
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().utilization, 0.0);
    }

    #[test]
    fn unknown_provider_operations_fail() {
        let mut reg = ProviderRegistry::new();
        assert!(matches!(
            reg.set_online(ProviderId::new(1), true),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(matches!(
            reg.update_load(ProviderId::new(1), 1.0, 1),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(!reg.unregister(ProviderId::new(1)));
    }

    #[test]
    fn starvation_error_distinguishes_causes() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        // A query needing capability 5: nobody has it.
        assert!(matches!(
            reg.starvation_error(&query(5)),
            SbqaError::NoCapableProvider { .. }
        ));
        // A query needing capability 0 while the only capable provider is
        // offline: capability exists, nobody online.
        reg.set_online(ProviderId::new(1), false).unwrap();
        assert!(matches!(
            reg.starvation_error(&query(0)),
            SbqaError::NoProviderOnline { .. }
        ));
    }

    #[test]
    fn unregister_removes_from_capable_set() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        assert!(reg.unregister(ProviderId::new(1)));
        assert!(reg.capable_of(&query(0)).is_empty());
    }
}
