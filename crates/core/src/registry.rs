//! The mediator's provider registry.
//!
//! The registry tracks which providers exist, whether they are online, what
//! they can do and how loaded they currently are. It answers the only
//! question the allocation process needs from it: *which providers are able
//! to perform this query right now* (the set `Pq`).
//!
//! ## Representation
//!
//! Snapshots live in a dense slab (`Vec<ProviderSnapshot>`) addressed through
//! an id→slot map, and one postings list per capability class holds the slots
//! of every *online* provider advertising that capability, kept sorted by
//! provider id. `Pq` is therefore a single postings-list lookup returning a
//! borrowed [`Candidates`] view — no scan over the population, no clone of
//! any snapshot — and candidate order is ascending provider id *by
//! construction*, which makes every downstream random draw deterministic per
//! seed. The lists are maintained incrementally on
//! [`register`](ProviderRegistry::register),
//! [`unregister`](ProviderRegistry::unregister) and
//! [`set_online`](ProviderRegistry::set_online); load updates touch only the
//! slab.

use std::collections::HashMap;

use serde::{Deserialize, Serialize, Value};

use sbqa_types::{CapabilitySet, ProviderId, Query, SbqaError, SbqaResult, MAX_CAPABILITY_CLASSES};

use crate::allocator::{Candidates, ProviderSnapshot};

/// Mediator-side registry of provider state: a dense snapshot slab plus a
/// per-capability index of online providers.
#[derive(Debug, Clone)]
pub struct ProviderRegistry {
    /// Dense slab of snapshots; slots are compacted with `swap_remove` on
    /// unregister, so a slot index is only stable between mutations.
    slots: Vec<ProviderSnapshot>,
    /// id → slot position in `slots`.
    index: HashMap<ProviderId, u32>,
    /// For each capability class, the slots of online providers advertising
    /// it, sorted by ascending provider id.
    postings: Vec<Vec<u32>>,
}

impl Default for ProviderRegistry {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            index: HashMap::new(),
            postings: vec![Vec::new(); MAX_CAPABILITY_CLASSES as usize],
        }
    }
}

impl ProviderRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Position of `slot`'s entry in the postings list of `class`, by binary
    /// search on the (sorted) provider ids.
    fn posting_position(&self, class: u8, id: ProviderId) -> Result<usize, usize> {
        let slots = &self.slots;
        self.postings[class as usize].binary_search_by_key(&id, |&s| slots[s as usize].id)
    }

    /// Inserts `slot` into the postings lists of every capability the
    /// snapshot advertises. The snapshot must be online.
    fn index_slot(&mut self, slot: u32) {
        let snapshot = self.slots[slot as usize];
        debug_assert!(snapshot.online);
        for cap in snapshot.capabilities.iter() {
            if let Err(at) = self.posting_position(cap.class(), snapshot.id) {
                self.postings[cap.class() as usize].insert(at, slot);
            }
        }
    }

    /// Removes `slot`'s entries from the postings lists of every capability
    /// the snapshot advertises.
    fn unindex_slot(&mut self, slot: u32) {
        let snapshot = self.slots[slot as usize];
        for cap in snapshot.capabilities.iter() {
            if let Ok(at) = self.posting_position(cap.class(), snapshot.id) {
                self.postings[cap.class() as usize].remove(at);
            }
        }
    }

    /// Inserts a snapshot into the slab and indexes it if online. Replaces
    /// any existing provider with the same id.
    fn insert_snapshot(&mut self, snapshot: ProviderSnapshot) {
        if let Some(&slot) = self.index.get(&snapshot.id) {
            if self.slots[slot as usize].online {
                self.unindex_slot(slot);
            }
            self.slots[slot as usize] = snapshot;
            if snapshot.online {
                self.index_slot(slot);
            }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("provider population fits in u32");
            self.slots.push(snapshot);
            self.index.insert(snapshot.id, slot);
            if snapshot.online {
                self.index_slot(slot);
            }
        }
    }

    /// Registers (or replaces) a provider with the given capabilities and
    /// capacity, initially online and idle.
    pub fn register(&mut self, id: ProviderId, capabilities: CapabilitySet, capacity: f64) {
        self.insert_snapshot(ProviderSnapshot::idle(id, capabilities, capacity));
    }

    /// Removes a provider entirely (it left the system for good).
    /// Returns `true` if the provider existed.
    pub fn unregister(&mut self, id: ProviderId) -> bool {
        let Some(slot) = self.index.remove(&id) else {
            return false;
        };
        if self.slots[slot as usize].online {
            self.unindex_slot(slot);
        }
        let last = (self.slots.len() - 1) as u32;
        self.slots.swap_remove(slot as usize);
        if slot != last {
            // The former last snapshot moved into `slot`: re-point its index
            // entry and every postings entry that referenced `last`. The
            // postings stay sorted because the provider id did not change,
            // but the stale entry still holds the out-of-range value `last`,
            // so the id-keyed search must map it to the moved id itself.
            let moved = self.slots[slot as usize];
            self.index.insert(moved.id, slot);
            if moved.online {
                let slots = &self.slots;
                for cap in moved.capabilities.iter() {
                    let list = &mut self.postings[cap.class() as usize];
                    if let Ok(at) = list.binary_search_by_key(&moved.id, |&s| {
                        if s == last {
                            moved.id
                        } else {
                            slots[s as usize].id
                        }
                    }) {
                        list[at] = slot;
                    }
                }
            }
        }
        true
    }

    /// Marks a provider online or offline. Unknown providers are an error.
    pub fn set_online(&mut self, id: ProviderId, online: bool) -> SbqaResult<()> {
        let Some(&slot) = self.index.get(&id) else {
            return Err(SbqaError::UnknownProvider { provider: id });
        };
        let was_online = self.slots[slot as usize].online;
        if was_online == online {
            return Ok(());
        }
        if was_online {
            self.unindex_slot(slot);
        }
        self.slots[slot as usize].online = online;
        if online {
            self.index_slot(slot);
        }
        Ok(())
    }

    /// Updates a provider's load state (utilization in virtual seconds of
    /// queued work, and queue length). Unknown providers are an error.
    pub fn update_load(
        &mut self,
        id: ProviderId,
        utilization: f64,
        queue_length: usize,
    ) -> SbqaResult<()> {
        match self.index.get(&id) {
            Some(&slot) => {
                let p = &mut self.slots[slot as usize];
                p.utilization = if utilization.is_finite() && utilization > 0.0 {
                    utilization
                } else {
                    0.0
                };
                p.queue_length = queue_length;
                Ok(())
            }
            None => Err(SbqaError::UnknownProvider { provider: id }),
        }
    }

    /// Looks up one provider's snapshot.
    #[must_use]
    pub fn get(&self, id: ProviderId) -> Option<&ProviderSnapshot> {
        self.index.get(&id).map(|&slot| &self.slots[slot as usize])
    }

    /// Number of registered providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no provider is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of providers currently online.
    #[must_use]
    pub fn online_count(&self) -> usize {
        self.slots.iter().filter(|p| p.online).count()
    }

    /// Iterates over all provider snapshots (online or not), in slab order.
    pub fn iter(&self) -> impl Iterator<Item = &ProviderSnapshot> {
        self.slots.iter()
    }

    /// The set `Pq` as a borrowed, zero-clone view: every online provider
    /// able to perform `query`, in ascending id order. This is a postings
    /// lookup — O(1), no scan, no clone.
    #[must_use]
    pub fn candidates(&self, query: &Query) -> Candidates<'_> {
        Candidates::from_postings(
            &self.slots,
            &self.postings[query.required_capability.class() as usize],
        )
    }

    /// The set `Pq` as an owned vector, sorted by id — an allocating
    /// convenience wrapper over [`ProviderRegistry::candidates`].
    #[must_use]
    pub fn capable_of(&self, query: &Query) -> Vec<ProviderSnapshot> {
        self.candidates(query).iter().copied().collect()
    }

    /// Classifies a starvation: distinguishes "nobody can ever perform this"
    /// from "capable providers exist but none is online".
    #[must_use]
    pub fn starvation_error(&self, query: &Query) -> SbqaError {
        let any_capable = self
            .slots
            .iter()
            .any(|p| p.capabilities.contains(query.required_capability));
        if any_capable {
            SbqaError::NoProviderOnline { query: query.id }
        } else {
            SbqaError::NoCapableProvider { query: query.id }
        }
    }
}

// The slab's index and postings are derived data: serialize only the
// snapshots and rebuild the indexes on the way back in.
impl Serialize for ProviderRegistry {
    fn to_value(&self) -> Value {
        self.slots.to_value()
    }
}

impl Deserialize for ProviderRegistry {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let slots = Vec::<ProviderSnapshot>::from_value(value)?;
        let mut registry = Self::new();
        for snapshot in slots {
            registry.insert_snapshot(snapshot);
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, ConsumerId, QueryId};

    fn query(cap: u8) -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(cap)).build()
    }

    fn caps(cap: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(cap))
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ProviderRegistry::new();
        assert!(reg.is_empty());
        reg.register(ProviderId::new(1), caps(0), 2.0);
        reg.register(ProviderId::new(2), caps(1), 3.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.online_count(), 2);
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().capacity, 2.0);
        assert!(reg.get(ProviderId::new(9)).is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn capable_of_filters_by_capability_and_online() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.register(ProviderId::new(2), caps(0), 1.0);
        reg.register(ProviderId::new(3), caps(1), 1.0);
        reg.set_online(ProviderId::new(2), false).unwrap();

        let capable = reg.capable_of(&query(0));
        let ids: Vec<u64> = capable.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(reg.online_count(), 2);
    }

    #[test]
    fn load_updates_are_visible_in_snapshots() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        reg.update_load(ProviderId::new(1), 7.5, 3).unwrap();
        let snap = reg.get(ProviderId::new(1)).unwrap();
        assert_eq!(snap.utilization, 7.5);
        assert_eq!(snap.queue_length, 3);
        // Degenerate utilization is clamped to zero.
        reg.update_load(ProviderId::new(1), f64::NAN, 0).unwrap();
        assert_eq!(reg.get(ProviderId::new(1)).unwrap().utilization, 0.0);
    }

    #[test]
    fn unknown_provider_operations_fail() {
        let mut reg = ProviderRegistry::new();
        assert!(matches!(
            reg.set_online(ProviderId::new(1), true),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(matches!(
            reg.update_load(ProviderId::new(1), 1.0, 1),
            Err(SbqaError::UnknownProvider { .. })
        ));
        assert!(!reg.unregister(ProviderId::new(1)));
    }

    #[test]
    fn starvation_error_distinguishes_causes() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        // A query needing capability 5: nobody has it.
        assert!(matches!(
            reg.starvation_error(&query(5)),
            SbqaError::NoCapableProvider { .. }
        ));
        // A query needing capability 0 while the only capable provider is
        // offline: capability exists, nobody online.
        reg.set_online(ProviderId::new(1), false).unwrap();
        assert!(matches!(
            reg.starvation_error(&query(0)),
            SbqaError::NoProviderOnline { .. }
        ));
    }

    #[test]
    fn unregister_removes_from_capable_set() {
        let mut reg = ProviderRegistry::new();
        reg.register(ProviderId::new(1), caps(0), 1.0);
        assert!(reg.unregister(ProviderId::new(1)));
        assert!(reg.capable_of(&query(0)).is_empty());
    }

    #[test]
    fn candidates_view_is_sorted_by_id_regardless_of_registration_order() {
        let mut reg = ProviderRegistry::new();
        for id in [9u64, 2, 7, 4, 1] {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        let view = reg.candidates(&query(0));
        let ids: Vec<u64> = view.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 4, 7, 9]);
        // The owned wrapper agrees with the view.
        let owned: Vec<u64> = reg
            .capable_of(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(owned, ids);
    }

    #[test]
    fn set_online_maintains_postings_incrementally() {
        let mut reg = ProviderRegistry::new();
        for id in 1..=4u64 {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        reg.set_online(ProviderId::new(2), false).unwrap();
        reg.set_online(ProviderId::new(4), false).unwrap();
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3]);
        // Toggling back reinserts at the right sorted position; re-setting
        // the same state is a no-op.
        reg.set_online(ProviderId::new(2), true).unwrap();
        reg.set_online(ProviderId::new(2), true).unwrap();
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn unregister_patches_the_moved_slots_postings() {
        // Unregistering a middle provider swap-removes the slab: the last
        // snapshot moves into the freed slot and its postings entries must
        // follow, or the index would point at stale (or out-of-range) slots.
        let mut reg = ProviderRegistry::new();
        for id in 1..=5u64 {
            reg.register(ProviderId::new(id), caps(0), id as f64);
        }
        assert!(reg.unregister(ProviderId::new(2)));
        let view = reg.candidates(&query(0));
        let ids: Vec<u64> = view.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids, vec![1, 3, 4, 5]);
        // The moved provider (id 5) is still addressable and intact.
        assert_eq!(reg.get(ProviderId::new(5)).unwrap().capacity, 5.0);
        assert!(reg.unregister(ProviderId::new(5)));
        let ids: Vec<u64> = reg
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn multi_capability_providers_appear_in_every_postings_list() {
        let mut reg = ProviderRegistry::new();
        let both = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(1)]);
        reg.register(ProviderId::new(1), both, 1.0);
        reg.register(ProviderId::new(2), caps(1), 1.0);
        assert_eq!(reg.capable_of(&query(0)).len(), 1);
        assert_eq!(reg.capable_of(&query(1)).len(), 2);
        // Re-registering with different capabilities moves the postings.
        reg.register(ProviderId::new(1), caps(1), 1.0);
        assert!(reg.capable_of(&query(0)).is_empty());
        assert_eq!(reg.capable_of(&query(1)).len(), 2);
    }

    #[test]
    fn serde_round_trip_rebuilds_the_index() {
        let mut reg = ProviderRegistry::new();
        for id in [3u64, 1, 2] {
            reg.register(ProviderId::new(id), caps(0), 1.0);
        }
        reg.set_online(ProviderId::new(2), false).unwrap();
        reg.update_load(ProviderId::new(1), 4.5, 2).unwrap();

        let text = serde::to_string(&reg);
        let back: ProviderRegistry = serde::from_str(&text).unwrap();

        assert_eq!(back.len(), 3);
        assert_eq!(back.online_count(), 2);
        assert_eq!(back.get(ProviderId::new(1)).unwrap().utilization, 4.5);
        let ids: Vec<u64> = back
            .candidates(&query(0))
            .iter()
            .map(|p| p.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 3]);
    }
}
