//! The allocation abstraction shared by SbQA and every baseline.
//!
//! An allocation technique sees three things when a query arrives:
//!
//! * the [`Query`] itself,
//! * a borrowed [`Candidates`] view of every *capable and online* provider
//!   (`Pq`) — identity, capacity, current utilization and queue length
//!   ([`ProviderSnapshot`]), without cloning the population,
//! * an [`IntentionOracle`] it may consult to learn the consumer's intention
//!   towards a provider and a provider's intention towards the query, and
//! * the mediator's [`SatisfactionRegistry`] for techniques (like SbQA)
//!   that balance the two sides by satisfaction.
//!
//! It fills an [`AllocationDecision`]: which providers to allocate the
//! query to, and the full list of proposals made (needed to update provider
//! satisfaction — a provider that was consulted but not selected becomes less
//! satisfied, exactly as in Definition 2). Techniques implement
//! [`QueryAllocator::allocate_into`], which writes into a caller-provided
//! decision so steady-state mediation can reuse buffers instead of
//! allocating; the provided [`QueryAllocator::allocate`] wrapper returns an
//! owned decision for tests and one-off callers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sbqa_satisfaction::{GapSample, SatisfactionRegistry};
use sbqa_types::{Intention, ProviderId, Query, SbqaResult};

pub use sbqa_types::{ProviderColumns, ProviderSnapshot};

use crate::postings::{PostingsMap, SlotIter};

/// Identity stamp of a resolved candidate plan, used to deduplicate dense
/// column gathers across queries.
///
/// The registry attaches a token to every view whose backing storage is
/// *stable* (a cached plan entry or a capability's postings map — never the
/// legacy shared scratch). Two equal tokens guarantee byte-identical view
/// contents: `plan` names the storage (a capability class or a uniquely
/// numbered cache-entry occupancy, never reused), and `stamp` is the
/// registry's mutation counter, bumped by **every** mutating call including
/// load updates. Equal stamps therefore bracket a window with no mutation at
/// all, so a [`CandidateBlock`] gathered under a token can be reused verbatim
/// when the same token comes around again —
/// [`Candidates::gather_all_into`] does exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanToken {
    /// Which stable storage backs the view: `0..=64` name a capability
    /// class's postings map (the single-class fast path), higher values are
    /// cache-entry occupancy numbers, unique per (entry, requirement)
    /// assignment for the registry's lifetime.
    pub plan: u64,
    /// The registry-wide mutation stamp at resolve time.
    pub stamp: u64,
}

/// A borrowed, zero-clone view of the candidate set `Pq`.
///
/// The view covers one of three shapes:
///
/// * a contiguous slice of snapshots ([`Candidates::from_slice`], used by
///   tests and ad-hoc callers),
/// * a materialised slot list into the registry's column store
///   ([`Candidates::from_postings`], the multi-capability merge path), or
/// * a capability's bitmap postings map wrapped directly
///   ([`Candidates::from_map`], the single-capability path — nothing is
///   materialised at all; positional access rank-selects into the bitmap).
///
/// Positions `0..len()` address candidates in a deterministic order — for
/// registry-backed views that order is ascending provider id by
/// construction. [`Candidates::get`] assembles a row by value from the
/// columns; hot paths that rank by a single field should prefer
/// [`Candidates::load_key`] (utilization + id only) or gather the whole set
/// once into a dense [`CandidateBlock`] and score column-wise.
#[derive(Debug, Clone, Copy)]
pub struct Candidates<'a> {
    view: View<'a>,
    /// Identity stamp when the backing storage is stable (see [`PlanToken`]);
    /// `None` for slices and scratch-backed views, which must always be
    /// re-gathered.
    token: Option<PlanToken>,
}

#[derive(Debug, Clone, Copy)]
enum View<'a> {
    /// Every snapshot of the slice is a candidate.
    Slice(&'a [ProviderSnapshot]),
    /// `slots` are positions into `columns`, in enumeration order.
    Postings {
        columns: &'a ProviderColumns,
        slots: &'a [u32],
    },
    /// The members of `map` (slot payloads into `columns`), in ascending id
    /// order.
    Map {
        columns: &'a ProviderColumns,
        map: &'a PostingsMap,
    },
}

impl<'a> Candidates<'a> {
    /// A view over a contiguous slice: every snapshot is a candidate.
    #[must_use]
    pub fn from_slice(providers: &'a [ProviderSnapshot]) -> Self {
        Self {
            view: View::Slice(providers),
            token: None,
        }
    }

    /// A view over a materialised slot list: `slots` holds positions into
    /// the column store, in the order candidates should be enumerated.
    #[must_use]
    pub fn from_postings(columns: &'a ProviderColumns, slots: &'a [u32]) -> Self {
        Self {
            view: View::Postings { columns, slots },
            token: None,
        }
    }

    /// A view over a bitmap postings map: candidates are the map's members
    /// in ascending id order, with nothing materialised. Positional access
    /// ([`Candidates::get`], [`Candidates::load_key`]) rank-selects into the
    /// map; sequential access ([`Candidates::iter`],
    /// [`Candidates::gather_all_into`]) streams it.
    #[must_use]
    pub fn from_map(columns: &'a ProviderColumns, map: &'a PostingsMap) -> Self {
        Self {
            view: View::Map { columns, map },
            token: None,
        }
    }

    /// Attaches a [`PlanToken`] to the view, asserting that its backing
    /// storage is stable and that the token uniquely identifies the view's
    /// contents. Only the registry should do this — an incorrect token makes
    /// gather deduplication serve stale columns.
    #[must_use]
    pub fn with_token(mut self, token: PlanToken) -> Self {
        self.token = Some(token);
        self
    }

    /// The view's identity stamp, when its backing storage is stable.
    #[must_use]
    pub fn token(&self) -> Option<PlanToken> {
        self.token
    }

    /// Number of candidates in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.view {
            View::Slice(providers) => providers.len(),
            View::Postings { slots, .. } => slots.len(),
            View::Map { map, .. } => map.len(),
        }
    }

    /// `true` if the candidate set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The candidate at position `pos` (`0 <= pos < len()`), assembled by
    /// value from the backing columns.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    #[must_use]
    pub fn get(&self, pos: usize) -> ProviderSnapshot {
        match self.view {
            View::Slice(providers) => providers[pos],
            View::Postings { columns, slots } => columns.snapshot(slots[pos] as usize),
            View::Map { columns, map } => columns.snapshot(map.select(pos) as usize),
        }
    }

    /// The `(utilization, id)` ranking key of the candidate at `pos`,
    /// touching only the two columns KnBest orders by.
    ///
    /// # Panics
    /// Panics if `pos` is out of bounds.
    #[must_use]
    pub fn load_key(&self, pos: usize) -> (f64, ProviderId) {
        match self.view {
            View::Slice(providers) => {
                let p = &providers[pos];
                (p.utilization, p.id)
            }
            View::Postings { columns, slots } => {
                let slot = slots[pos] as usize;
                (columns.utilization()[slot], columns.ids()[slot])
            }
            View::Map { columns, map } => {
                let slot = map.select(pos) as usize;
                (columns.utilization()[slot], columns.ids()[slot])
            }
        }
    }

    /// Iterates over the candidates in position order, streaming the backing
    /// store sequentially (no per-item rank-select, even for map views).
    #[must_use]
    pub fn iter(&self) -> CandidateIter<'a> {
        CandidateIter {
            inner: match self.view {
                View::Slice(providers) => IterInner::Slice(providers.iter()),
                View::Postings { columns, slots } => IterInner::Postings {
                    columns,
                    slots: slots.iter(),
                },
                View::Map { columns, map } => IterInner::Map {
                    columns,
                    slots: map.iter(),
                },
            },
        }
    }

    /// Gathers every candidate's scoring fields into `block` (cleared
    /// first), one sequential pass over the backing store. Techniques that
    /// rank the whole set sort the block's dense columns instead of paying a
    /// positional lookup per comparison.
    ///
    /// When both the view and the block carry the same [`PlanToken`], the
    /// gather is skipped entirely: the token proves the block's columns are
    /// already byte-identical to what a fresh pass would produce. This is
    /// what lets a batch of same-requirement queries share one column gather
    /// — each technique keeps its block across queries, so the second and
    /// later members of the group pay a two-word comparison instead of an
    /// O(|Pq|) pass.
    pub fn gather_all_into(&self, block: &mut CandidateBlock) {
        if self.token.is_some() && self.token == block.token {
            return;
        }
        block.clear();
        match self.view {
            View::Slice(providers) => {
                for p in providers {
                    block.push(p.id, p.utilization, p.capacity, p.queue_length);
                }
            }
            View::Postings { columns, slots } => {
                for &slot in slots {
                    block.push_slot(columns, slot as usize);
                }
            }
            View::Map { columns, map } => {
                for slot in map.iter() {
                    block.push_slot(columns, slot as usize);
                }
            }
        }
        block.token = self.token;
    }
}

/// Iterator over a [`Candidates`] view, yielding snapshots by value.
#[derive(Debug, Clone)]
pub struct CandidateIter<'a> {
    inner: IterInner<'a>,
}

#[derive(Debug, Clone)]
enum IterInner<'a> {
    Slice(std::slice::Iter<'a, ProviderSnapshot>),
    Postings {
        columns: &'a ProviderColumns,
        slots: std::slice::Iter<'a, u32>,
    },
    Map {
        columns: &'a ProviderColumns,
        slots: SlotIter<'a>,
    },
}

impl Iterator for CandidateIter<'_> {
    type Item = ProviderSnapshot;

    fn next(&mut self) -> Option<ProviderSnapshot> {
        match &mut self.inner {
            IterInner::Slice(iter) => iter.next().copied(),
            IterInner::Postings { columns, slots } => {
                slots.next().map(|&slot| columns.snapshot(slot as usize))
            }
            IterInner::Map { columns, slots } => {
                slots.next().map(|slot| columns.snapshot(slot as usize))
            }
        }
    }
}

impl<'a> From<&'a [ProviderSnapshot]> for Candidates<'a> {
    fn from(providers: &'a [ProviderSnapshot]) -> Self {
        Self::from_slice(providers)
    }
}

impl<'a> From<&'a Vec<ProviderSnapshot>> for Candidates<'a> {
    fn from(providers: &'a Vec<ProviderSnapshot>) -> Self {
        Self::from_slice(providers.as_slice())
    }
}

/// A dense struct-of-arrays gather of one candidate set's scoring fields.
///
/// Baseline techniques rank the *entire* candidate set by some field
/// (utilization, capacity headroom, queue length, bid). Sorting through
/// [`Candidates::get`] would pay a positional lookup — for bitmap-backed
/// views a rank-select — *per comparison*; gathering once into parallel
/// columns makes the sort read dense, cache-friendly arrays. The block is
/// scratch: it lives in the technique and is reused across queries, so
/// steady-state gathering allocates nothing once the columns have grown.
#[derive(Debug, Clone, Default)]
pub struct CandidateBlock {
    ids: Vec<ProviderId>,
    utilization: Vec<f64>,
    capacity: Vec<f64>,
    queue_length: Vec<usize>,
    /// The token of the view the block was last gathered from, when that
    /// view's storage was stable. Lets [`Candidates::gather_all_into`] skip
    /// re-gathering a set it provably already holds.
    token: Option<PlanToken>,
}

impl CandidateBlock {
    /// Creates an empty block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gathered candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if nothing has been gathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Empties the block, keeping the column capacities. Also forgets the
    /// gather token, so the next gather runs unconditionally.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.utilization.clear();
        self.capacity.clear();
        self.queue_length.clear();
        self.token = None;
    }

    fn push(&mut self, id: ProviderId, utilization: f64, capacity: f64, queue_length: usize) {
        self.ids.push(id);
        self.utilization.push(utilization);
        self.capacity.push(capacity);
        self.queue_length.push(queue_length);
    }

    fn push_slot(&mut self, columns: &ProviderColumns, slot: usize) {
        self.push(
            columns.ids()[slot],
            columns.utilization()[slot],
            columns.capacity()[slot],
            columns.queue_length()[slot],
        );
    }

    /// The gathered id column, indexed by candidate position.
    #[must_use]
    pub fn ids(&self) -> &[ProviderId] {
        &self.ids
    }

    /// The gathered utilization column, indexed by candidate position.
    #[must_use]
    pub fn utilization(&self) -> &[f64] {
        &self.utilization
    }

    /// The gathered capacity column, indexed by candidate position.
    #[must_use]
    pub fn capacity(&self) -> &[f64] {
        &self.capacity
    }

    /// The gathered queue-length column, indexed by candidate position.
    #[must_use]
    pub fn queue_length(&self) -> &[usize] {
        &self.queue_length
    }
}

/// Source of intention values at mediation time.
///
/// In the real system the mediator *asks* the consumer and the providers for
/// their intentions over the network; in the simulation the oracle is backed
/// by the participants' intention strategies. Implementations must be cheap
/// to call: SbQA calls it `2·kn` times per query.
pub trait IntentionOracle {
    /// The intention of the query's consumer (`q.c`) to have `q` allocated to
    /// `provider` — an entry of the vector `CIq`.
    fn consumer_intention(&self, query: &Query, provider: ProviderId) -> Intention;

    /// The intention of `provider` to perform `q` — an entry of the vector
    /// `PIq` (and of the provider's own `PPIp` history).
    fn provider_intention(&self, provider: ProviderId, query: &Query) -> Intention;
}

/// A static, map-backed oracle. Useful in tests and in the interactive
/// example where a scripted participant fixes its intentions in advance.
#[derive(Debug, Clone, Default)]
pub struct StaticIntentions {
    // sbqa-lint: allow(hash-collection, "keyed point lookups only; the oracle is never iterated")
    consumer: HashMap<ProviderId, Intention>,
    // sbqa-lint: allow(hash-collection, "keyed point lookups only; the oracle is never iterated")
    provider: HashMap<ProviderId, Intention>,
    consumer_default: Intention,
    provider_default: Intention,
}

impl StaticIntentions {
    /// Creates an oracle where every intention defaults to neutral.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the default intentions returned for unknown providers.
    #[must_use]
    pub fn with_defaults(mut self, consumer: Intention, provider: Intention) -> Self {
        self.consumer_default = consumer;
        self.provider_default = provider;
        self
    }

    /// Sets the consumer's intention towards a provider.
    pub fn set_consumer_intention(&mut self, provider: ProviderId, intention: Intention) {
        self.consumer.insert(provider, intention);
    }

    /// Sets a provider's intention towards any query.
    pub fn set_provider_intention(&mut self, provider: ProviderId, intention: Intention) {
        self.provider.insert(provider, intention);
    }
}

impl IntentionOracle for StaticIntentions {
    fn consumer_intention(&self, _query: &Query, provider: ProviderId) -> Intention {
        self.consumer
            .get(&provider)
            .copied()
            .unwrap_or(self.consumer_default)
    }

    fn provider_intention(&self, provider: ProviderId, _query: &Query) -> Intention {
        self.provider
            .get(&provider)
            .copied()
            .unwrap_or(self.provider_default)
    }
}

/// One proposal made during a mediation: a provider that was asked for its
/// intention, what it answered, and whether it was selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProposalRecord {
    /// The consulted provider.
    pub provider: ProviderId,
    /// The intention the provider expressed for performing the query.
    pub provider_intention: Intention,
    /// The intention the consumer expressed towards this provider.
    pub consumer_intention: Intention,
    /// The score the allocation technique assigned (if it scores at all).
    pub score: Option<f64>,
    /// `true` if the provider was selected to perform the query.
    pub selected: bool,
}

/// The outcome of one allocation decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AllocationDecision {
    /// Providers selected to perform the query, best-ranked first
    /// (the vector `R` truncated to `min(q.n, kn)` entries).
    pub selected: Vec<ProviderId>,
    /// Every provider that was consulted, with its expressed intentions.
    /// Selected providers appear here too, with `selected = true`.
    pub proposals: Vec<ProposalRecord>,
    /// The balancing parameter ω that was used, when the technique uses one.
    pub omega: Option<f64>,
}

impl AllocationDecision {
    /// `true` if no provider was selected.
    #[must_use]
    pub fn is_starved(&self) -> bool {
        self.selected.is_empty()
    }

    /// Empties the decision while keeping the vector capacities, so a reused
    /// decision performs no allocation once warmed up.
    pub fn clear(&mut self) {
        self.selected.clear();
        self.proposals.clear();
        self.omega = None;
    }

    /// The consumer-side view of the allocation: the selected providers with
    /// the consumer's intention towards each, in ranking order. This is what
    /// feeds Definition 1.
    #[must_use]
    pub fn consumer_view(&self) -> Vec<(ProviderId, Intention)> {
        let mut view = Vec::new();
        self.consumer_view_into(&mut view);
        view
    }

    /// Fills `out` with the consumer-side view, reusing its capacity.
    pub fn consumer_view_into(&self, out: &mut Vec<(ProviderId, Intention)>) {
        out.clear();
        out.extend(self.selected.iter().map(|id| {
            let intention = self
                .proposals
                .iter()
                .find(|p| p.provider == *id)
                .map_or(Intention::NEUTRAL, |p| p.consumer_intention);
            (*id, intention)
        }));
    }

    /// The provider-side view: every consulted provider with its expressed
    /// intention and selection flag. This is what feeds Definition 2.
    #[must_use]
    pub fn provider_view(&self) -> Vec<(ProviderId, Intention, bool)> {
        let mut view = Vec::new();
        self.provider_view_into(&mut view);
        view
    }

    /// Fills `out` with the provider-side view, reusing its capacity.
    pub fn provider_view_into(&self, out: &mut Vec<(ProviderId, Intention, bool)>) {
        out.clear();
        out.extend(
            self.proposals
                .iter()
                .map(|p| (p.provider, p.provider_intention, p.selected)),
        );
    }
}

/// An allocation technique: SbQA or any baseline.
pub trait QueryAllocator: Send {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Decides which providers should perform `query`, writing the decision
    /// into `decision` (which is cleared first, retaining its capacity).
    ///
    /// `candidates` is the set `Pq` restricted to online providers; it is
    /// never empty (the mediator short-circuits starvation before calling the
    /// allocator). `oracle` answers intention questions and `satisfaction` is
    /// the mediator's registry. Implementations are expected to keep their
    /// working state in internal scratch buffers so that steady-state calls
    /// perform no heap allocation.
    fn allocate_into(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        satisfaction: &SatisfactionRegistry,
        decision: &mut AllocationDecision,
    ) -> SbqaResult<()>;

    /// Convenience wrapper over [`QueryAllocator::allocate_into`] that
    /// returns a freshly allocated decision.
    fn allocate(
        &mut self,
        query: &Query,
        candidates: Candidates<'_>,
        oracle: &dyn IntentionOracle,
        satisfaction: &SatisfactionRegistry,
    ) -> SbqaResult<AllocationDecision> {
        let mut decision = AllocationDecision::default();
        self.allocate_into(query, candidates, oracle, satisfaction, &mut decision)?;
        Ok(decision)
    }

    /// Re-sizes the technique's exploration width (SbQA's `kn`) before the
    /// next allocation. The adaptive-`kn` controller
    /// ([`KnController`](crate::adaptive::KnController)) calls this per
    /// query; techniques without a width knob ignore it (the default).
    fn set_exploration_width(&mut self, _kn: usize) {}

    /// The technique's current exploration width, if it has one.
    fn exploration_width(&self) -> Option<usize> {
        None
    }

    /// The satisfaction-gap sample of the most recent allocation, for
    /// techniques that read both sides' satisfaction anyway (SbQA fetches
    /// them to resolve ω, so the sample is free). Feeds the adaptive-`kn`
    /// controller; `None` (the default) simply disables gap-driven
    /// adaptation for the technique.
    fn satisfaction_signal(&self) -> Option<GapSample> {
        None
    }

    /// Forks the allocator's decision state — RNG stream position,
    /// exploration width, configuration — into an independent copy, so a
    /// standby can continue the exact decision sequence from this point if
    /// the original is lost. Scratch buffers need not be copied (they carry
    /// no decision state). `None` (the default) marks techniques that cannot
    /// be checkpointed; replication refuses to arm on top of them rather
    /// than silently diverging after a failover.
    fn fork(&self) -> Option<Box<dyn QueryAllocator>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::{Capability, CapabilitySet, ConsumerId, QueryId};

    fn query() -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0)).build()
    }

    #[test]
    fn can_perform_requires_capability_and_online() {
        let q = query();
        let capable = ProviderSnapshot::idle(
            ProviderId::new(1),
            CapabilitySet::singleton(Capability::new(0)),
            1.0,
        );
        assert!(capable.can_perform(&q));

        let wrong_cap = ProviderSnapshot::idle(
            ProviderId::new(2),
            CapabilitySet::singleton(Capability::new(1)),
            1.0,
        );
        assert!(!wrong_cap.can_perform(&q));

        let offline = ProviderSnapshot {
            online: false,
            ..capable
        };
        assert!(!offline.can_perform(&q));
    }

    #[test]
    fn static_oracle_returns_configured_and_default_intentions() {
        let mut oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.1), Intention::new(-0.2));
        oracle.set_consumer_intention(ProviderId::new(1), Intention::new(0.9));
        oracle.set_provider_intention(ProviderId::new(1), Intention::new(0.7));

        let q = query();
        assert_eq!(
            oracle.consumer_intention(&q, ProviderId::new(1)),
            Intention::new(0.9)
        );
        assert_eq!(
            oracle.provider_intention(ProviderId::new(1), &q),
            Intention::new(0.7)
        );
        assert_eq!(
            oracle.consumer_intention(&q, ProviderId::new(9)),
            Intention::new(0.1)
        );
        assert_eq!(
            oracle.provider_intention(ProviderId::new(9), &q),
            Intention::new(-0.2)
        );
    }

    #[test]
    fn decision_views_feed_both_satisfaction_definitions() {
        let decision = AllocationDecision {
            selected: vec![ProviderId::new(2)],
            proposals: vec![
                ProposalRecord {
                    provider: ProviderId::new(1),
                    provider_intention: Intention::new(0.5),
                    consumer_intention: Intention::new(0.3),
                    score: Some(0.2),
                    selected: false,
                },
                ProposalRecord {
                    provider: ProviderId::new(2),
                    provider_intention: Intention::new(0.8),
                    consumer_intention: Intention::new(0.9),
                    score: Some(0.9),
                    selected: true,
                },
            ],
            omega: Some(0.5),
        };
        assert!(!decision.is_starved());
        assert_eq!(
            decision.consumer_view(),
            vec![(ProviderId::new(2), Intention::new(0.9))]
        );
        let provider_view = decision.provider_view();
        assert_eq!(provider_view.len(), 2);
        assert_eq!(
            provider_view[0],
            (ProviderId::new(1), Intention::new(0.5), false)
        );
        assert_eq!(
            provider_view[1],
            (ProviderId::new(2), Intention::new(0.8), true)
        );
    }

    #[test]
    fn consumer_view_defaults_to_neutral_for_unlisted_selection() {
        // A degenerate decision that selects a provider missing from the
        // proposals still yields a well-formed consumer view.
        let decision = AllocationDecision {
            selected: vec![ProviderId::new(7)],
            proposals: vec![],
            omega: None,
        };
        assert_eq!(
            decision.consumer_view(),
            vec![(ProviderId::new(7), Intention::NEUTRAL)]
        );
        assert!(decision.provider_view().is_empty());
    }

    #[test]
    fn empty_decision_is_starved() {
        assert!(AllocationDecision::default().is_starved());
    }

    #[test]
    fn clear_retains_capacity_and_resets_fields() {
        let mut decision = AllocationDecision {
            selected: vec![ProviderId::new(1)],
            proposals: vec![ProposalRecord {
                provider: ProviderId::new(1),
                provider_intention: Intention::NEUTRAL,
                consumer_intention: Intention::NEUTRAL,
                score: None,
                selected: true,
            }],
            omega: Some(0.5),
        };
        let selected_cap = decision.selected.capacity();
        decision.clear();
        assert!(decision.selected.is_empty());
        assert!(decision.proposals.is_empty());
        assert!(decision.omega.is_none());
        assert_eq!(decision.selected.capacity(), selected_cap);
    }

    fn slab(n: u64) -> Vec<ProviderSnapshot> {
        (0..n)
            .map(|i| ProviderSnapshot::idle(ProviderId::new(i), CapabilitySet::ALL, 1.0))
            .collect()
    }

    fn columns(n: u64) -> ProviderColumns {
        let mut cols = ProviderColumns::new();
        for row in slab(n) {
            cols.push(row);
        }
        cols
    }

    #[test]
    fn candidates_slice_view_covers_everything() {
        let snapshots = slab(4);
        let view = Candidates::from_slice(&snapshots);
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.get(2).id, ProviderId::new(2));
        assert_eq!(view.load_key(2), (0.0, ProviderId::new(2)));
        let ids: Vec<u64> = view.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn candidates_postings_view_restricts_and_orders() {
        let cols = columns(5);
        let postings = [4u32, 1, 3];
        let view = Candidates::from_postings(&cols, &postings);
        assert_eq!(view.len(), 3);
        let ids: Vec<u64> = view.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![4, 1, 3]);
        assert_eq!(view.get(1).id, ProviderId::new(1));
        assert_eq!(view.load_key(0).1, ProviderId::new(4));
    }

    #[test]
    fn candidates_map_view_enumerates_in_id_order() {
        let mut cols = ProviderColumns::new();
        // Slots deliberately out of id order.
        for raw in [9u64, 2, 70_000, 5] {
            cols.push(ProviderSnapshot::idle(
                ProviderId::new(raw),
                CapabilitySet::ALL,
                1.0,
            ));
        }
        let mut map = PostingsMap::new();
        for slot in 0..cols.len() {
            map.insert(cols.ids()[slot], slot as u32);
        }
        let view = Candidates::from_map(&cols, &map);
        assert_eq!(view.len(), 4);
        let ids: Vec<u64> = view.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![2, 5, 9, 70_000]);
        // Positional access rank-selects to the same enumeration.
        for (pos, &raw) in [2u64, 5, 9, 70_000].iter().enumerate() {
            assert_eq!(view.get(pos).id.raw(), raw);
            assert_eq!(view.load_key(pos).1.raw(), raw);
        }
    }

    #[test]
    fn gather_all_into_fills_dense_columns_in_view_order() {
        let mut cols = columns(6);
        cols.set_load(4, 2.5, 7);
        let postings = [4u32, 0, 5];
        let view = Candidates::from_postings(&cols, &postings);
        let mut block = CandidateBlock::new();
        view.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);
        let ids: Vec<u64> = block.ids().iter().map(|id| id.raw()).collect();
        assert_eq!(ids, vec![4, 0, 5]);
        assert_eq!(block.utilization()[0], 2.5);
        assert_eq!(block.queue_length()[0], 7);
        assert_eq!(block.capacity()[1], 1.0);
        // Re-gathering clears first.
        view.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn candidates_empty_views() {
        let view = Candidates::from_slice(&[]);
        assert!(view.is_empty());
        let cols = columns(2);
        let view = Candidates::from_postings(&cols, &[]);
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
        let map = PostingsMap::new();
        let view = Candidates::from_map(&cols, &map);
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
    }

    #[test]
    fn gather_all_into_skips_when_tokens_match() {
        let cols = columns(6);
        let postings = [1u32, 3, 5];
        let token = PlanToken { plan: 70, stamp: 9 };
        let view = Candidates::from_postings(&cols, &postings).with_token(token);
        assert_eq!(view.token(), Some(token));

        let mut block = CandidateBlock::new();
        view.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);

        // Tamper with the block, then re-gather under the same token: the
        // gather is skipped, so the tampering survives — proof no pass ran.
        block.ids.push(ProviderId::new(999));
        view.gather_all_into(&mut block);
        assert_eq!(block.len(), 4);

        // A different stamp (a mutation happened) re-gathers for real…
        let moved = Candidates::from_postings(&cols, &postings).with_token(PlanToken {
            plan: 70,
            stamp: 10,
        });
        moved.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);
        // …as does a different plan number under the same stamp.
        let other = Candidates::from_postings(&cols, &postings).with_token(PlanToken {
            plan: 71,
            stamp: 10,
        });
        block.ids.push(ProviderId::new(999));
        other.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn gather_all_into_without_token_always_regathers() {
        let cols = columns(6);
        let postings = [1u32, 3, 5];
        let view = Candidates::from_postings(&cols, &postings);
        assert_eq!(view.token(), None);

        let mut block = CandidateBlock::new();
        view.gather_all_into(&mut block);
        block.ids.push(ProviderId::new(999));
        view.gather_all_into(&mut block);
        assert_eq!(block.len(), 3, "tokenless views never skip");
        // `clear` forgets the token, so even a tokened view re-gathers next.
        let token = PlanToken { plan: 70, stamp: 9 };
        let tokened = Candidates::from_postings(&cols, &postings).with_token(token);
        tokened.gather_all_into(&mut block);
        block.clear();
        assert_eq!(block.token, None);
        tokened.gather_all_into(&mut block);
        assert_eq!(block.len(), 3);
    }
}
