//! Roaring-style bitmap postings: the registry's per-capability index of
//! online providers, scaled for millions of entries.
//!
//! A [`PostingsMap`] maps *provider ids* to *slab slots*. Ids are split into
//! 2^16-sized chunks by their high bits; each chunk stores its members in one
//! of two container shapes, exactly as in the Roaring bitmap design:
//!
//! * **Array** — a sorted `Vec<u16>` of low-bit keys with a parallel
//!   `Vec<u32>` of slot payloads. Compact and cache-friendly while the chunk
//!   is sparse.
//! * **Bitmap** — a 1024-word (`u64`) bitset plus a dense `u32` slot table
//!   indexed by the low bits, with per-64-word-block popcount prefixes so
//!   positional lookup (`select`) stays cheap. Used once a chunk is populous:
//!   membership and slot lookup become O(1) and intersections become word-
//!   parallel AND loops.
//!
//! A chunk promotes from Array to Bitmap when it outgrows
//! [`ARRAY_MAX`] entries and demotes below [`BITMAP_MIN`]; the hysteresis gap
//! keeps a provider flapping on the boundary (e.g. toggling online/offline)
//! from re-shaping its chunk on every transition.
//!
//! Iteration order is ascending provider id *by construction*: chunk keys are
//! kept sorted, Array keys are sorted, and Bitmap words are scanned from bit
//! 0 upward. This is what keeps every downstream random draw byte-identical
//! per seed — positions into a postings view enumerate the same providers in
//! the same order as the flat sorted `Vec<u32>` lists they replaced.
//!
//! The slot payloads exist because the registry compacts its column store
//! with a swap-remove on unregister: the moved provider's entries are updated
//! in place through [`PostingsMap::patch_slot`] (an id-keyed point update per
//! list) instead of the stale-entry binary-search the flat lists needed.

use sbqa_types::ProviderId;

/// Number of id bits indexing *within* a chunk.
const CHUNK_BITS: u32 = 16;
/// Capacity of one chunk (2^16 ids).
const CHUNK_CAPACITY: usize = 1 << CHUNK_BITS;
/// `u64` words in a chunk bitset.
const WORDS_PER_CHUNK: usize = CHUNK_CAPACITY / 64;
/// Words covered by one popcount-prefix block.
const WORDS_PER_BLOCK: usize = 64;
/// Popcount-prefix blocks per chunk.
const BLOCKS_PER_CHUNK: usize = WORDS_PER_CHUNK / WORDS_PER_BLOCK;

/// An Array chunk promotes to Bitmap when it would exceed this many entries.
pub const ARRAY_MAX: usize = 4096;
/// A Bitmap chunk demotes back to Array when it shrinks below this many
/// entries. The gap to [`ARRAY_MAX`] is deliberate hysteresis: a chunk
/// sitting on the boundary can churn by hundreds of entries without
/// re-shaping (and therefore without reallocating) its container.
pub const BITMAP_MIN: usize = 3584;

/// The chunk key (high bits) of a provider id.
fn chunk_key(id: ProviderId) -> u64 {
    id.raw() >> CHUNK_BITS
}

/// The within-chunk key (low 16 bits) of a provider id.
fn low_bits(id: ProviderId) -> u16 {
    (id.raw() & (CHUNK_CAPACITY as u64 - 1)) as u16
}

/// Selects the index of the `rank`-th (0-based) set bit of `word`.
/// `rank` must be less than `word.count_ones()`.
fn select_in_word(mut word: u64, mut rank: u32) -> u32 {
    loop {
        debug_assert!(word != 0, "rank exceeds popcount");
        if rank == 0 {
            return word.trailing_zeros();
        }
        word &= word - 1;
        rank -= 1;
    }
}

/// A dense chunk: bitset membership plus a slot table indexed by low bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitmapChunk {
    /// Membership bitset, `WORDS_PER_CHUNK` words.
    words: Box<[u64]>,
    /// Slot payloads, indexed by low bits; only positions whose bit is set
    /// hold meaningful values.
    slots: Box<[u32]>,
    /// `blocks[b]` = number of set bits in words `0 .. b * WORDS_PER_BLOCK`,
    /// so a positional lookup narrows to one 64-word block before scanning.
    blocks: [u32; BLOCKS_PER_CHUNK],
    /// Cached popcount of the whole chunk.
    len: u32,
}

impl BitmapChunk {
    fn empty() -> Self {
        Self {
            words: vec![0u64; WORDS_PER_CHUNK].into_boxed_slice(),
            slots: vec![0u32; CHUNK_CAPACITY].into_boxed_slice(),
            blocks: [0; BLOCKS_PER_CHUNK],
            len: 0,
        }
    }

    fn contains(&self, low: u16) -> bool {
        self.words[low as usize / 64] & (1u64 << (low % 64)) != 0
    }

    fn slot_of(&self, low: u16) -> Option<u32> {
        self.contains(low).then(|| self.slots[low as usize])
    }

    /// Inserts or updates; returns `true` if the key was new.
    fn insert(&mut self, low: u16, slot: u32) -> bool {
        let word = low as usize / 64;
        let bit = 1u64 << (low % 64);
        self.slots[low as usize] = slot;
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        self.len += 1;
        for block in (word / WORDS_PER_BLOCK + 1)..BLOCKS_PER_CHUNK {
            self.blocks[block] += 1;
        }
        true
    }

    fn remove(&mut self, low: u16) -> bool {
        let word = low as usize / 64;
        let bit = 1u64 << (low % 64);
        if self.words[word] & bit == 0 {
            return false;
        }
        self.words[word] &= !bit;
        self.len -= 1;
        for block in (word / WORDS_PER_BLOCK + 1)..BLOCKS_PER_CHUNK {
            self.blocks[block] -= 1;
        }
        true
    }

    /// The slot of the `rank`-th member in ascending key order. `rank` must
    /// be less than `self.len`.
    fn select(&self, rank: u32) -> u32 {
        // Narrow to the block holding the rank via the popcount prefixes,
        // then walk its words.
        let mut block = BLOCKS_PER_CHUNK - 1;
        while self.blocks[block] > rank {
            block -= 1;
        }
        let mut remaining = rank - self.blocks[block];
        for word_idx in (block * WORDS_PER_BLOCK)..((block + 1) * WORDS_PER_BLOCK) {
            let ones = self.words[word_idx].count_ones();
            if remaining < ones {
                let bit = select_in_word(self.words[word_idx], remaining);
                return self.slots[word_idx * 64 + bit as usize];
            }
            remaining -= ones;
        }
        unreachable!("rank {rank} exceeds chunk population {}", self.len)
    }
}

/// One chunk's container: sparse Array or dense Bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted low-bit keys with parallel slot payloads.
    Array { keys: Vec<u16>, slots: Vec<u32> },
    /// Bitset membership with a dense slot table.
    Bitmap(Box<BitmapChunk>),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array { keys, .. } => keys.len(),
            Container::Bitmap(chunk) => chunk.len as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array { keys, .. } => keys.binary_search(&low).is_ok(),
            Container::Bitmap(chunk) => chunk.contains(low),
        }
    }

    fn slot_of(&self, low: u16) -> Option<u32> {
        match self {
            Container::Array { keys, slots } => keys.binary_search(&low).ok().map(|at| slots[at]),
            Container::Bitmap(chunk) => chunk.slot_of(low),
        }
    }

    /// Inserts or updates; returns `true` if the key was new. Promotes an
    /// Array that outgrows [`ARRAY_MAX`] to a Bitmap.
    fn insert(&mut self, low: u16, slot: u32) -> bool {
        match self {
            Container::Array { keys, slots } => match keys.binary_search(&low) {
                Ok(at) => {
                    slots[at] = slot;
                    false
                }
                Err(at) => {
                    if keys.len() >= ARRAY_MAX {
                        let mut chunk = BitmapChunk::empty();
                        for (&key, &payload) in keys.iter().zip(slots.iter()) {
                            chunk.insert(key, payload);
                        }
                        chunk.insert(low, slot);
                        *self = Container::Bitmap(Box::new(chunk));
                    } else {
                        keys.insert(at, low);
                        slots.insert(at, slot);
                    }
                    true
                }
            },
            Container::Bitmap(chunk) => chunk.insert(low, slot),
        }
    }

    /// Removes; returns `true` if the key was present. Demotes a Bitmap that
    /// shrinks below [`BITMAP_MIN`] back to an Array.
    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array { keys, slots } => match keys.binary_search(&low) {
                Ok(at) => {
                    keys.remove(at);
                    slots.remove(at);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(chunk) => {
                if !chunk.remove(low) {
                    return false;
                }
                if (chunk.len as usize) < BITMAP_MIN {
                    let mut keys = Vec::with_capacity(chunk.len as usize);
                    let mut slots = Vec::with_capacity(chunk.len as usize);
                    chunk_for_each(chunk, |key, payload| {
                        keys.push(key);
                        slots.push(payload);
                    });
                    *self = Container::Array { keys, slots };
                }
                true
            }
        }
    }

    /// Overwrites the slot payload of an existing key; returns `true` if the
    /// key was present.
    fn patch(&mut self, low: u16, slot: u32) -> bool {
        match self {
            Container::Array { keys, slots } => match keys.binary_search(&low) {
                Ok(at) => {
                    slots[at] = slot;
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(chunk) => {
                if chunk.contains(low) {
                    chunk.slots[low as usize] = slot;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The slot of the `rank`-th member in ascending key order.
    fn select(&self, rank: usize) -> u32 {
        match self {
            Container::Array { slots, .. } => slots[rank],
            Container::Bitmap(chunk) => chunk.select(rank as u32),
        }
    }

    /// Visits every `(low_key, slot)` pair in ascending key order.
    fn for_each(&self, mut f: impl FnMut(u16, u32)) {
        match self {
            Container::Array { keys, slots } => {
                for (&key, &slot) in keys.iter().zip(slots.iter()) {
                    f(key, slot);
                }
            }
            Container::Bitmap(chunk) => chunk_for_each(chunk, f),
        }
    }
}

/// Visits every `(low_key, slot)` pair of a bitmap chunk in ascending order.
fn chunk_for_each(chunk: &BitmapChunk, mut f: impl FnMut(u16, u32)) {
    for (word_idx, &word) in chunk.words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let low = word_idx * 64 + bits.trailing_zeros() as usize;
            f(low as u16, chunk.slots[low]);
            bits &= bits - 1;
        }
    }
}

/// A bitmap-postings map from provider ids to slab slots, enumerated in
/// ascending id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingsMap {
    /// Sorted chunk keys (`id >> 16`).
    keys: Vec<u64>,
    /// Containers, parallel to `keys`.
    chunks: Vec<Container>,
    /// Total number of entries across all chunks.
    len: usize,
    /// Mutation epoch: bumped by every call that may change membership or a
    /// stored slot payload ([`insert`](PostingsMap::insert),
    /// a successful [`remove`](PostingsMap::remove) or
    /// [`patch_slot`](PostingsMap::patch_slot)). Cached merge results stamp
    /// the epoch of every map they read; an unchanged epoch proves the map's
    /// contribution to the merge is byte-identical, so equality over the
    /// stamps is a sound (and O(#classes)) cache-validity check. The bump
    /// lives *inside* the container rather than at the call sites so no
    /// mutation path can forget it.
    generation: u64,
}

impl PostingsMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the map holds no entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The map's mutation epoch. Strictly increases on every
    /// membership or slot-payload change; two reads returning the same value
    /// bracket a window in which the map was not mutated at all.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inserts (or re-points) `id → slot`; returns `true` if the id was new.
    pub fn insert(&mut self, id: ProviderId, slot: u32) -> bool {
        // An existing id may be re-pointed at a new slot, which `inserted`
        // does not report: bump unconditionally. A spurious bump only costs a
        // cache re-merge, never a stale hit.
        self.generation += 1;
        let key = chunk_key(id);
        let chunk = match self.keys.binary_search(&key) {
            Ok(at) => at,
            Err(at) => {
                self.keys.insert(at, key);
                self.chunks.insert(
                    at,
                    Container::Array {
                        keys: Vec::new(),
                        slots: Vec::new(),
                    },
                );
                at
            }
        };
        let inserted = self.chunks[chunk].insert(low_bits(id), slot);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Removes `id`; returns `true` if it was present. An emptied chunk is
    /// dropped entirely.
    pub fn remove(&mut self, id: ProviderId) -> bool {
        let Ok(chunk) = self.keys.binary_search(&chunk_key(id)) else {
            return false;
        };
        if !self.chunks[chunk].remove(low_bits(id)) {
            return false;
        }
        self.generation += 1;
        self.len -= 1;
        if self.chunks[chunk].len() == 0 {
            self.keys.remove(chunk);
            self.chunks.remove(chunk);
        }
        true
    }

    /// `true` if `id` is a member.
    #[must_use]
    pub fn contains(&self, id: ProviderId) -> bool {
        self.keys
            .binary_search(&chunk_key(id))
            .is_ok_and(|chunk| self.chunks[chunk].contains(low_bits(id)))
    }

    /// The slot stored for `id`, if present.
    #[must_use]
    pub fn slot_of(&self, id: ProviderId) -> Option<u32> {
        self.keys
            .binary_search(&chunk_key(id))
            .ok()
            .and_then(|chunk| self.chunks[chunk].slot_of(low_bits(id)))
    }

    /// Re-points an existing entry at a new slot (the swap-remove compaction
    /// hook); returns `true` if `id` was present.
    pub fn patch_slot(&mut self, id: ProviderId, slot: u32) -> bool {
        match self.keys.binary_search(&chunk_key(id)) {
            Ok(chunk) => {
                let patched = self.chunks[chunk].patch(low_bits(id), slot);
                if patched {
                    // Membership is unchanged but a payload moved — the one
                    // mutation that would silently corrupt a cached plan's
                    // slot list if it did not advance the epoch.
                    self.generation += 1;
                }
                patched
            }
            Err(_) => false,
        }
    }

    /// The slot of the `pos`-th member in ascending id order.
    ///
    /// # Panics
    /// Panics if `pos >= len()`.
    #[must_use]
    pub fn select(&self, pos: usize) -> u32 {
        let mut remaining = pos;
        for chunk in &self.chunks {
            let chunk_len = chunk.len();
            if remaining < chunk_len {
                return chunk.select(remaining);
            }
            remaining -= chunk_len;
        }
        // sbqa-lint: allow(panic-hygiene, "out-of-bounds position mirrors the slice-indexing contract; callers pass validated cursors")
        panic!("postings position {pos} out of bounds (len {})", self.len)
    }

    /// Iterates the stored slots in ascending id order.
    #[must_use]
    pub fn iter(&self) -> SlotIter<'_> {
        SlotIter {
            chunks: self.chunks.iter(),
            current: ContainerIter::Empty,
        }
    }

    /// Appends every slot, in ascending id order, to `out`.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        for chunk in &self.chunks {
            chunk.for_each(|_, slot| out.push(slot));
        }
    }
}

/// Sequential iterator over a [`PostingsMap`]'s slots in ascending id order.
#[derive(Debug, Clone)]
pub struct SlotIter<'a> {
    chunks: std::slice::Iter<'a, Container>,
    current: ContainerIter<'a>,
}

#[derive(Debug, Clone)]
enum ContainerIter<'a> {
    Empty,
    Array(std::slice::Iter<'a, u32>),
    Bitmap {
        chunk: &'a BitmapChunk,
        word_idx: usize,
        word: u64,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ContainerIter::Empty => None,
            ContainerIter::Array(slots) => slots.next().copied(),
            ContainerIter::Bitmap {
                chunk,
                word_idx,
                word,
            } => {
                while *word == 0 {
                    *word_idx += 1;
                    if *word_idx >= WORDS_PER_CHUNK {
                        return None;
                    }
                    *word = chunk.words[*word_idx];
                }
                let low = *word_idx * 64 + word.trailing_zeros() as usize;
                *word &= *word - 1;
                Some(chunk.slots[low])
            }
        }
    }
}

impl Iterator for SlotIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some(slot) = self.current.next() {
                return Some(slot);
            }
            let chunk = self.chunks.next()?;
            self.current = match chunk {
                Container::Array { slots, .. } => ContainerIter::Array(slots.iter()),
                Container::Bitmap(chunk) => ContainerIter::Bitmap {
                    chunk,
                    word_idx: 0,
                    word: chunk.words[0],
                },
            };
        }
    }
}

/// Reusable word buffer for bitwise chunk merges. One per registry: merges
/// borrow it instead of allocating, keeping the query path allocation-free.
#[derive(Debug, Clone)]
pub struct MergeScratch {
    words: Vec<u64>,
}

impl Default for MergeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl MergeScratch {
    /// Creates a scratch with its word buffer pre-sized, so no merge ever
    /// allocates.
    #[must_use]
    pub fn new() -> Self {
        Self {
            words: vec![0u64; WORDS_PER_CHUNK],
        }
    }
}

/// Fills `out` with the slots of providers present in **all** of
/// `lists[classes[..]]`, in ascending id order.
///
/// Chunk-wise: only chunk keys present in every list are visited (driven by
/// the list with the fewest entries). Within a chunk, an all-Bitmap
/// population intersects with word-parallel ANDs through `bits`; any mixed or
/// sparse population probes the smallest container's members against the
/// others (binary search for Arrays, O(1) bit tests for Bitmaps) — the
/// galloping analogue for id→slot containers.
pub fn intersect_lists(
    lists: &[PostingsMap],
    classes: &[usize],
    out: &mut Vec<u32>,
    bits: &mut MergeScratch,
) {
    out.clear();
    debug_assert!(classes.len() >= 2, "intersection needs at least two lists");
    let Some(&driver_class) = classes.iter().min_by_key(|&&class| lists[class].len()) else {
        return;
    };
    let driver = &lists[driver_class];
    'chunks: for (chunk_at, &key) in driver.keys.iter().enumerate() {
        // Gather this chunk's container from every list; a missing chunk in
        // any list empties the whole chunk's intersection.
        let mut members: [Option<&Container>; 64] = [None; 64];
        let mut count = 0;
        for &class in classes {
            if class == driver_class {
                continue;
            }
            match lists[class].keys.binary_search(&key) {
                Ok(at) => {
                    members[count] = Some(&lists[class].chunks[at]);
                    count += 1;
                }
                Err(_) => continue 'chunks,
            }
        }
        let members = &members[..count];
        intersect_chunk(&driver.chunks[chunk_at], members, out, bits);
    }
}

/// Intersects one chunk: `driver` against `others` (all same chunk key).
fn intersect_chunk(
    driver: &Container,
    others: &[Option<&Container>],
    out: &mut Vec<u32>,
    bits: &mut MergeScratch,
) {
    let all_bitmaps = matches!(driver, Container::Bitmap(_))
        && others
            .iter()
            .all(|c| matches!(c, Some(Container::Bitmap(_))));
    if all_bitmaps {
        let Container::Bitmap(driver_chunk) = driver else {
            unreachable!("checked above");
        };
        bits.words.copy_from_slice(&driver_chunk.words);
        for other in others {
            let Some(Container::Bitmap(chunk)) = other else {
                unreachable!("checked above");
            };
            for (word, &mask) in bits.words.iter_mut().zip(chunk.words.iter()) {
                *word &= mask;
            }
        }
        for (word_idx, &word) in bits.words.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let low = word_idx * 64 + remaining.trailing_zeros() as usize;
                out.push(driver_chunk.slots[low]);
                remaining &= remaining - 1;
            }
        }
        return;
    }
    // Probe from the smallest container of the chunk: every member must be
    // present everywhere, so the smallest bounds the work. Bitmap membership
    // is an O(1) bit test; Array membership uses a forward cursor — both
    // sides ascend, so each array is walked at most once per chunk (the same
    // k-way cursor merge the flat `Vec<u32>` postings used, rather than a
    // binary search per probe member).
    let mut probe = driver;
    for other in others.iter().flatten() {
        if other.len() < probe.len() {
            probe = other;
        }
    }
    let mut array_cursors: [(&[u16], usize); 64] = [(&[], 0); 64];
    let mut array_count = 0;
    let mut bitmap_tests: [Option<&BitmapChunk>; 64] = [None; 64];
    let mut bitmap_count = 0;
    for container in std::iter::once(driver).chain(others.iter().flatten().copied()) {
        if std::ptr::eq(container, probe) {
            continue;
        }
        match container {
            Container::Array { keys, .. } => {
                array_cursors[array_count] = (keys.as_slice(), 0);
                array_count += 1;
            }
            Container::Bitmap(chunk) => {
                bitmap_tests[bitmap_count] = Some(chunk);
                bitmap_count += 1;
            }
        }
    }
    let arrays = &mut array_cursors[..array_count];
    let bitmaps = &bitmap_tests[..bitmap_count];

    match probe {
        Container::Array { keys, slots } => {
            'members: for (&low, &slot) in keys.iter().zip(slots.iter()) {
                for (keys, cursor) in arrays.iter_mut() {
                    while *cursor < keys.len() && keys[*cursor] < low {
                        *cursor += 1;
                    }
                    if *cursor == keys.len() {
                        // This list is exhausted: no later member can match.
                        break 'members;
                    }
                    if keys[*cursor] != low {
                        continue 'members;
                    }
                }
                if bitmaps.iter().flatten().all(|chunk| chunk.contains(low)) {
                    out.push(slot);
                }
            }
        }
        Container::Bitmap(probe_chunk) => {
            'words: for (word_idx, &word) in probe_chunk.words.iter().enumerate() {
                let mut remaining = word;
                'members: while remaining != 0 {
                    let low = (word_idx * 64 + remaining.trailing_zeros() as usize) as u16;
                    remaining &= remaining - 1;
                    for (keys, cursor) in arrays.iter_mut() {
                        while *cursor < keys.len() && keys[*cursor] < low {
                            *cursor += 1;
                        }
                        if *cursor == keys.len() {
                            break 'words;
                        }
                        if keys[*cursor] != low {
                            continue 'members;
                        }
                    }
                    if bitmaps.iter().flatten().all(|chunk| chunk.contains(low)) {
                        out.push(probe_chunk.slots[low as usize]);
                    }
                }
            }
        }
    }
}

/// Fills `out` with the slots of providers present in **any** of
/// `lists[classes[..]]`, deduplicated and in ascending id order.
///
/// Chunk-wise over the union of chunk keys. A chunk with a single member
/// container is copied straight through; a chunk containing any Bitmap is
/// OR-ed word-parallel through `bits`; an all-Array chunk is k-way merged by
/// low-bit key.
pub fn union_lists(
    lists: &[PostingsMap],
    classes: &[usize],
    out: &mut Vec<u32>,
    bits: &mut MergeScratch,
) {
    out.clear();
    // Per-class cursor over that list's chunk keys.
    let mut cursors = [0usize; 64];
    loop {
        // The smallest unvisited chunk key across all lists.
        let mut next_key: Option<u64> = None;
        for (i, &class) in classes.iter().enumerate() {
            let keys = &lists[class].keys;
            if cursors[i] < keys.len() {
                let key = keys[cursors[i]];
                if next_key.is_none_or(|best| key < best) {
                    next_key = Some(key);
                }
            }
        }
        let Some(key) = next_key else {
            break;
        };
        // Gather the chunk's member containers and advance their cursors.
        let mut members: [Option<&Container>; 64] = [None; 64];
        let mut count = 0;
        for (i, &class) in classes.iter().enumerate() {
            let list = &lists[class];
            if cursors[i] < list.keys.len() && list.keys[cursors[i]] == key {
                members[count] = Some(&list.chunks[cursors[i]]);
                count += 1;
                cursors[i] += 1;
            }
        }
        union_chunk(&members[..count], out, bits);
    }
}

/// Unions one chunk's member containers (all same chunk key) into `out`.
fn union_chunk(members: &[Option<&Container>], out: &mut Vec<u32>, bits: &mut MergeScratch) {
    if members.len() == 1 {
        let Some(only) = members[0] else {
            return;
        };
        only.for_each(|_, slot| out.push(slot));
        return;
    }
    if members
        .iter()
        .any(|c| matches!(c, Some(Container::Bitmap(_))))
    {
        // Word-parallel OR: bitmaps OR directly, arrays set their bits.
        bits.words.fill(0);
        for member in members.iter().flatten() {
            match member {
                Container::Bitmap(chunk) => {
                    for (word, &mask) in bits.words.iter_mut().zip(chunk.words.iter()) {
                        *word |= mask;
                    }
                }
                Container::Array { keys, .. } => {
                    for &low in keys {
                        bits.words[low as usize / 64] |= 1u64 << (low % 64);
                    }
                }
            }
        }
        for (word_idx, &word) in bits.words.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let low = (word_idx * 64 + remaining.trailing_zeros() as usize) as u16;
                // Every member holding the id stores the same slot; the
                // first hit resolves it (O(1) for bitmaps).
                let slot = members
                    .iter()
                    .flatten()
                    .find_map(|c| c.slot_of(low))
                    // sbqa-lint: allow(panic-hygiene, "bitmap invariant: every set bit was installed by a member container")
                    .expect("a member container set this bit");
                out.push(slot);
                remaining &= remaining - 1;
            }
        }
        return;
    }
    // All-Array chunk: k-way merge over the sorted key vectors.
    let mut cursors = [0usize; 64];
    loop {
        let mut next: Option<(u16, u32)> = None;
        for (i, member) in members.iter().enumerate() {
            let Some(Container::Array { keys, slots }) = member else {
                continue;
            };
            if cursors[i] < keys.len() {
                let key = keys[cursors[i]];
                if next.is_none_or(|(best, _)| key < best) {
                    next = Some((key, slots[cursors[i]]));
                }
            }
        }
        let Some((key, slot)) = next else {
            break;
        };
        out.push(slot);
        for (i, member) in members.iter().enumerate() {
            let Some(Container::Array { keys, .. }) = member else {
                continue;
            };
            if cursors[i] < keys.len() && keys[cursors[i]] == key {
                cursors[i] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut map = PostingsMap::new();
        assert!(map.is_empty());
        assert!(map.insert(id(5), 50));
        assert!(map.insert(id(70_000), 7));
        assert!(!map.insert(id(5), 51), "re-insert only re-points");
        assert_eq!(map.len(), 2);
        assert!(map.contains(id(5)));
        assert_eq!(map.slot_of(id(5)), Some(51));
        assert_eq!(map.slot_of(id(70_000)), Some(7));
        assert!(!map.contains(id(6)));
        assert!(map.remove(id(5)));
        assert!(!map.remove(id(5)));
        assert_eq!(map.len(), 1);
        assert_eq!(map.slot_of(id(5)), None);
    }

    #[test]
    fn iteration_is_ascending_by_id_across_chunks() {
        let mut map = PostingsMap::new();
        // Deliberately shuffled insert order across three chunks.
        for (raw, slot) in [
            (200_000u64, 1u32),
            (3, 2),
            (65_536, 3),
            (65_535, 4),
            (131_071, 5),
            (9, 6),
        ] {
            map.insert(id(raw), slot);
        }
        let slots: Vec<u32> = map.iter().collect();
        // Ascending id order: 3, 9, 65535, 65536, 131071, 200000.
        assert_eq!(slots, vec![2, 6, 4, 3, 5, 1]);
        let mut collected = Vec::new();
        map.collect_into(&mut collected);
        assert_eq!(collected, slots);
        for (pos, &slot) in slots.iter().enumerate() {
            assert_eq!(map.select(pos), slot, "select({pos})");
        }
    }

    #[test]
    fn promotion_and_demotion_preserve_contents() {
        let mut map = PostingsMap::new();
        let n = ARRAY_MAX + 200;
        for raw in 0..n as u64 {
            map.insert(id(raw * 3), raw as u32);
        }
        assert!(
            matches!(map.chunks.first(), Some(Container::Bitmap(_))),
            "chunk should have promoted past ARRAY_MAX"
        );
        assert_eq!(map.len(), n);
        // Every member still resolves, in order.
        let slots: Vec<u32> = map.iter().collect();
        assert_eq!(slots.len(), n);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(map.select(7), 7);

        // Shrink below the hysteresis floor: the chunk demotes back.
        for raw in 0..n as u64 {
            if raw as usize >= BITMAP_MIN - 100 {
                assert!(map.remove(id(raw * 3)));
            }
        }
        assert!(
            matches!(map.chunks.first(), Some(Container::Array { .. })),
            "chunk should have demoted below BITMAP_MIN"
        );
        let slots: Vec<u32> = map.iter().collect();
        assert_eq!(slots.len(), BITMAP_MIN - 100);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hysteresis_gap_avoids_reshaping_on_the_boundary() {
        let mut map = PostingsMap::new();
        for raw in 0..=ARRAY_MAX as u64 {
            map.insert(id(raw), raw as u32);
        }
        assert!(matches!(map.chunks[0], Container::Bitmap(_)));
        // Oscillate one entry around the promotion point: the container must
        // stay a bitmap (no demotion until BITMAP_MIN).
        for _ in 0..10 {
            map.remove(id(0));
            assert!(matches!(map.chunks[0], Container::Bitmap(_)));
            map.insert(id(0), 0);
        }
    }

    #[test]
    fn patch_slot_re_points_existing_entries_only() {
        let mut map = PostingsMap::new();
        map.insert(id(10), 1);
        for raw in 0..(ARRAY_MAX + 10) as u64 {
            map.insert(id(100_000 + raw), raw as u32);
        }
        assert!(map.patch_slot(id(10), 99), "array entry");
        assert_eq!(map.slot_of(id(10)), Some(99));
        assert!(map.patch_slot(id(100_005), 77), "bitmap entry");
        assert_eq!(map.slot_of(id(100_005)), Some(77));
        assert!(!map.patch_slot(id(11), 5), "absent id");
        assert!(!map.patch_slot(id(900_000), 5), "absent chunk");
    }

    #[test]
    fn select_matches_iteration_in_bitmap_chunks() {
        let mut map = PostingsMap::new();
        // A dense low chunk (bitmap) plus a sparse high chunk (array).
        for raw in 0..6000u64 {
            map.insert(id(raw * 2), raw as u32);
        }
        for raw in 0..10u64 {
            map.insert(id(1_000_000 + raw), (90_000 + raw) as u32);
        }
        let slots: Vec<u32> = map.iter().collect();
        assert_eq!(slots.len(), map.len());
        for (pos, &slot) in slots.iter().enumerate() {
            assert_eq!(map.select(pos), slot, "select({pos})");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_out_of_bounds_panics() {
        let mut map = PostingsMap::new();
        map.insert(id(1), 1);
        let _ = map.select(1);
    }

    /// Slot payload for an id. Every list stores the same id→slot mapping
    /// (as the registry guarantees: one slab slot per provider), so merges
    /// may emit the payload from whichever member container is cheapest.
    fn slot_for(raw: u64) -> u32 {
        (raw as u32).wrapping_mul(3).wrapping_add(1)
    }

    fn build(ids: &[u64]) -> PostingsMap {
        let mut map = PostingsMap::new();
        for &raw in ids {
            map.insert(id(raw), slot_for(raw));
        }
        map
    }

    /// Brute-force reference: ids in all / any of the given sets.
    fn reference_merge(sets: &[&[u64]], all: bool) -> Vec<u64> {
        let mut ids: Vec<u64> = sets.concat();
        ids.sort_unstable();
        ids.dedup();
        ids.retain(|&raw| {
            let hits = sets.iter().filter(|set| set.contains(&raw)).count();
            if all {
                hits == sets.len()
            } else {
                hits > 0
            }
        });
        ids
    }

    #[test]
    fn merges_agree_with_brute_force_across_container_shapes() {
        // Three lists spanning array chunks, bitmap chunks and chunk
        // boundaries; list 1 is dense enough to promote.
        let dense: Vec<u64> = (0..5000u64).map(|i| i * 2).collect();
        let sparse: Vec<u64> = (0..500u64).map(|i| i * 20).collect();
        let high: Vec<u64> = (0..300u64).map(|i| 60_000 + i * 40).collect();

        let lists = vec![build(&dense), build(&sparse), build(&high)];
        let mut bits = MergeScratch::new();
        let mut out = Vec::new();

        for classes in [vec![0usize, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
            let sets: Vec<&[u64]> = classes
                .iter()
                .map(|&c| match c {
                    0 => dense.as_slice(),
                    1 => sparse.as_slice(),
                    _ => high.as_slice(),
                })
                .collect();

            intersect_lists(&lists, &classes, &mut out, &mut bits);
            let expected: Vec<u32> = reference_merge(&sets, true)
                .iter()
                .map(|&raw| slot_for(raw))
                .collect();
            assert_eq!(out, expected, "All over {classes:?}");

            union_lists(&lists, &classes, &mut out, &mut bits);
            let expected: Vec<u32> = reference_merge(&sets, false)
                .iter()
                .map(|&raw| slot_for(raw))
                .collect();
            assert_eq!(out, expected, "Any over {classes:?}");
        }
    }

    #[test]
    fn union_of_disjoint_chunks_concatenates_in_order() {
        let a = build(&[1, 2, 3]);
        let b = build(&[100_000, 100_001]);
        let lists = vec![a, b];
        let mut bits = MergeScratch::new();
        let mut out = Vec::new();
        union_lists(&lists, &[0, 1], &mut out, &mut bits);
        assert_eq!(out.len(), 5);
        intersect_lists(&lists, &[0, 1], &mut out, &mut bits);
        assert!(out.is_empty());
    }
}
