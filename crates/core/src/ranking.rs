//! Provider ranking (the vector `R` of Section III).
//!
//! Once every provider in `Kn` has a score, the mediator builds the ranking
//! vector `R`: `R[1]` is the best-scored provider, `R[2]` the second best,
//! and so on. The query is then allocated to the first `min(q.n, kn)` entries
//! of `R`.
//!
//! Ties are broken by provider id so that the process stays deterministic
//! under a fixed RNG stream, which matters for reproducible experiments.

use sbqa_types::ProviderId;

/// Ranks `(provider, score)` pairs from the highest to the lowest score and
/// returns the ordered provider ids (the vector `R`).
///
/// Non-finite scores are ranked last (they should not occur — Definition 3 is
/// total — but a baseline plugged into the same interface could misbehave).
#[must_use]
pub fn rank_by_score(scored: &[(ProviderId, f64)]) -> Vec<ProviderId> {
    let mut ranked: Vec<(ProviderId, f64)> = scored.to_vec();
    ranked.sort_by(|a, b| {
        let sa = if a.1.is_finite() {
            a.1
        } else {
            f64::NEG_INFINITY
        };
        let sb = if b.1.is_finite() {
            b.1
        } else {
            f64::NEG_INFINITY
        };
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pid(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn ranks_highest_score_first() {
        let ranked = rank_by_score(&[(pid(1), 0.2), (pid(2), 0.9), (pid(3), -0.5)]);
        assert_eq!(ranked, vec![pid(2), pid(1), pid(3)]);
    }

    #[test]
    fn ties_break_by_provider_id() {
        let ranked = rank_by_score(&[(pid(9), 0.5), (pid(3), 0.5), (pid(7), 0.5)]);
        assert_eq!(ranked, vec![pid(3), pid(7), pid(9)]);
    }

    #[test]
    fn non_finite_scores_sink_to_the_bottom() {
        let ranked = rank_by_score(&[(pid(1), f64::NAN), (pid(2), -5.0), (pid(3), 0.1)]);
        assert_eq!(ranked, vec![pid(3), pid(2), pid(1)]);
    }

    #[test]
    fn empty_input_gives_empty_ranking() {
        assert!(rank_by_score(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_ranking_is_permutation(
            scores in proptest::collection::vec(-10.0f64..10.0, 0..30)
        ) {
            let scored: Vec<(ProviderId, f64)> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| (pid(i as u64), *s))
                .collect();
            let ranked = rank_by_score(&scored);
            prop_assert_eq!(ranked.len(), scored.len());
            let mut ids: Vec<u64> = ranked.iter().map(|p| p.raw()).collect();
            ids.sort_unstable();
            let expected: Vec<u64> = (0..scores.len() as u64).collect();
            prop_assert_eq!(ids, expected);
        }

        #[test]
        fn prop_scores_descend_along_ranking(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..30)
        ) {
            let scored: Vec<(ProviderId, f64)> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| (pid(i as u64), *s))
                .collect();
            let ranked = rank_by_score(&scored);
            let score_of = |id: ProviderId| scored.iter().find(|(p, _)| *p == id).unwrap().1;
            for pair in ranked.windows(2) {
                prop_assert!(score_of(pair[0]) >= score_of(pair[1]) - 1e-12);
            }
        }
    }
}
