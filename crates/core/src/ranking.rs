//! Provider ranking (the vector `R` of Section III).
//!
//! Once every provider in `Kn` has a score, the mediator builds the ranking
//! vector `R`: `R[1]` is the best-scored provider, `R[2]` the second best,
//! and so on. The query is then allocated to the first `min(q.n, kn)` entries
//! of `R`.
//!
//! Ties are broken by provider id so that the process stays deterministic
//! under a fixed RNG stream, which matters for reproducible experiments.

use sbqa_types::ProviderId;

/// Maps non-finite scores to the bottom of the ranking (they should not
/// occur — Definition 3 is total — but a baseline plugged into the same
/// interface could misbehave).
fn finite_or_bottom(score: f64) -> f64 {
    if score.is_finite() {
        score
    } else {
        f64::NEG_INFINITY
    }
}

/// Fills `order` with the indices `0..scores.len()` ranked from the highest
/// to the lowest score — the index form of the vector `R`, used by the
/// zero-allocation mediation path (the caller reuses `order` as scratch).
///
/// Non-finite scores rank last; ties break by `tie_key(index)` ascending, so
/// the ranking is deterministic whenever the keys are distinct (the engine
/// passes the provider id).
pub fn rank_indices_by_score<K, F>(scores: &[f64], tie_key: F, order: &mut Vec<u32>)
where
    K: Ord,
    F: Fn(usize) -> K,
{
    order.clear();
    order.extend(0..scores.len() as u32);
    order.sort_unstable_by(|&a, &b| {
        let sa = finite_or_bottom(scores[a as usize]);
        let sb = finite_or_bottom(scores[b as usize]);
        sbqa_types::f64_total_cmp(sb, sa)
            .then_with(|| tie_key(a as usize).cmp(&tie_key(b as usize)))
    });
}

/// Ranks `(provider, score)` pairs from the highest to the lowest score and
/// returns the ordered provider ids (the vector `R`) — the allocating
/// convenience form of [`rank_indices_by_score`].
#[must_use]
pub fn rank_by_score(scored: &[(ProviderId, f64)]) -> Vec<ProviderId> {
    let scores: Vec<f64> = scored.iter().map(|(_, score)| *score).collect();
    let mut order = Vec::new();
    rank_indices_by_score(&scores, |i| scored[i].0, &mut order);
    order.into_iter().map(|i| scored[i as usize].0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pid(raw: u64) -> ProviderId {
        ProviderId::new(raw)
    }

    #[test]
    fn ranks_highest_score_first() {
        let ranked = rank_by_score(&[(pid(1), 0.2), (pid(2), 0.9), (pid(3), -0.5)]);
        assert_eq!(ranked, vec![pid(2), pid(1), pid(3)]);
    }

    #[test]
    fn ties_break_by_provider_id() {
        let ranked = rank_by_score(&[(pid(9), 0.5), (pid(3), 0.5), (pid(7), 0.5)]);
        assert_eq!(ranked, vec![pid(3), pid(7), pid(9)]);
    }

    #[test]
    fn non_finite_scores_sink_to_the_bottom() {
        let ranked = rank_by_score(&[(pid(1), f64::NAN), (pid(2), -5.0), (pid(3), 0.1)]);
        assert_eq!(ranked, vec![pid(3), pid(2), pid(1)]);
    }

    #[test]
    fn empty_input_gives_empty_ranking() {
        assert!(rank_by_score(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_ranking_is_permutation(
            scores in proptest::collection::vec(-10.0f64..10.0, 0..30)
        ) {
            let scored: Vec<(ProviderId, f64)> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| (pid(i as u64), *s))
                .collect();
            let ranked = rank_by_score(&scored);
            prop_assert_eq!(ranked.len(), scored.len());
            let mut ids: Vec<u64> = ranked.iter().map(|p| p.raw()).collect();
            ids.sort_unstable();
            let expected: Vec<u64> = (0..scores.len() as u64).collect();
            prop_assert_eq!(ids, expected);
        }

        #[test]
        fn prop_scores_descend_along_ranking(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..30)
        ) {
            let scored: Vec<(ProviderId, f64)> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| (pid(i as u64), *s))
                .collect();
            let ranked = rank_by_score(&scored);
            let score_of = |id: ProviderId| scored.iter().find(|(p, _)| *p == id).unwrap().1;
            for pair in ranked.windows(2) {
                prop_assert!(score_of(pair[0]) >= score_of(pair[1]) - 1e-12);
            }
        }
    }
}
