//! # sbqa-core
//!
//! The query-allocation process of SbQA (Section III of the paper) and the
//! abstractions every allocation technique in this workspace plugs into.
//!
//! Given an incoming query `q` and the set `Pq` of providers able to perform
//! it, the SbQA mediator:
//!
//! 1. applies the **KnBest** strategy ([`knbest`]): select `k` providers at
//!    random from `Pq`, keep the `kn` least-utilized of them (the set `Kn`);
//! 2. asks the consumer for its intention towards each provider in `Kn` and
//!    each provider in `Kn` for its intention towards `q` (the
//!    [`IntentionOracle`] abstraction);
//! 3. scores every provider in `Kn` with the **SQLB** balance of intentions
//!    ([`scoring`], Definition 3), using a balancing parameter ω that is
//!    either fixed by the application or derived from the consumer's and
//!    provider's satisfaction (Equation 2);
//! 4. ranks the providers ([`ranking`]) and allocates `q` to the
//!    `min(q.n, kn)` best-scored ones;
//! 5. sends the mediation result to the consumer and to *all* providers in
//!    `Kn`, so that satisfaction reflects proposals as well as allocations
//!    ([`mediator`]).
//!
//! The exploration width `kn` can additionally **self-tune** at runtime: the
//! [`adaptive`] module's [`KnController`] re-sizes it per capability class
//! from the observed consumer/provider satisfaction gap, which is the
//! paper's self-adaptation claim applied to KnBest itself.
//!
//! Baseline techniques (capacity-based, economic, …) implement the same
//! [`QueryAllocator`] trait in the `sbqa-baselines` crate, which is what lets
//! the scenario harnesses compare them under identical conditions.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod allocator;
pub mod degrade;
pub mod delta;
pub mod intention;
pub mod knbest;
pub mod mediator;
pub mod postings;
pub mod ranking;
pub mod registry;
pub mod scoring;

pub use adaptive::{KnAdjustment, KnController, KnControllerConfig};
pub use allocator::{
    AllocationDecision, CandidateBlock, Candidates, IntentionOracle, PlanToken, ProposalRecord,
    ProviderColumns, ProviderSnapshot, QueryAllocator, StaticIntentions,
};
pub use degrade::{
    baseline_allocate_into, Admission, DegradationConfig, DegradationLadder, DegradationStats,
    DegradationTier, QueryDisposition,
};
pub use delta::{DeltaSink, RegistryDelta};
pub use intention::{
    ConsumerIntentionStrategy, ConsumerProfile, ProviderIntentionStrategy, ProviderProfile,
};
pub use knbest::{IndexPool, KnBestScratch, KnBestSelector, KnSelection};
pub use mediator::{BatchReport, MediationOutcome, MediationScratch, Mediator};
pub use postings::PostingsMap;
pub use ranking::rank_by_score;
pub use registry::{PlanCacheStats, PlanHandle, ProviderRegistry};
pub use sbqa_types::{OmegaPolicy, SystemConfig};
pub use scoring::{provider_score, resolve_omega, ScoreInputs};

/// The SbQA allocator itself, implementing [`QueryAllocator`] with KnBest
/// pre-selection and SQLB scoring. Re-exported from [`mediator`].
pub use mediator::SbqaAllocator;
