//! Property tests pinning the candidate-plan cache to its specification:
//! resolution through the cache must be *observably identical* to resolution
//! without it, for any population, churn history and requirement sequence —
//! the cache may only change how fast an answer arrives, never the answer.
//!
//! Three layers are pinned:
//!
//! * the registry layer — cached `candidates` equals the capacity-0
//!   (always-merge) path and the brute-force slab filter, with churn
//!   interleaved *between* probes so hit, stale-rebuild and miss paths all
//!   execute;
//! * the LRU layer — a requirement working set larger than the cache
//!   capacity (evictions on every probe) stays correct;
//! * the mediation layer — full `submit_batch` mediation with batch dedup,
//!   with the plan cache but no dedup, and with neither, produces
//!   decision-for-decision identical outcomes from the same seed, i.e. the
//!   memoized paths consume no extra randomness and serve no stale bytes.

use proptest::prelude::*;

use sbqa_core::{Mediator, ProviderRegistry, StaticIntentions};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

/// Capability classes the generated populations draw from.
const CLASSES: u8 = 6;

fn capability_set(mask: u8) -> CapabilitySet {
    CapabilitySet::from_capabilities(
        (0..CLASSES)
            .filter(|class| mask & (1 << class) != 0)
            .map(Capability::new),
    )
}

fn requirement(mask: u8, conjunctive: bool) -> CapabilityRequirement {
    let set = capability_set(mask);
    if conjunctive {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    }
}

fn query(req: CapabilityRequirement) -> Query {
    Query::requiring(QueryId::new(1), ConsumerId::new(1), req).build()
}

/// The specification: filter the whole slab with `can_perform`, sort by id.
fn brute_force(registry: &ProviderRegistry, req: CapabilityRequirement) -> Vec<u64> {
    let q = query(req);
    let mut ids: Vec<u64> = registry
        .iter()
        .filter(|p| p.can_perform(&q))
        .map(|p| p.id.raw())
        .collect();
    ids.sort_unstable();
    ids
}

fn resolve(registry: &mut ProviderRegistry, req: CapabilityRequirement) -> Vec<u64> {
    registry
        .candidates(&query(req))
        .iter()
        .map(|p| p.id.raw())
        .collect()
}

/// One interleaved churn step against both registries.
#[derive(Debug, Clone, Copy)]
enum Churn {
    Register(u64, u8),
    Unregister(u64),
    SetOnline(u64, bool),
    UpdateLoad(u64, u8),
}

/// Raw churn encoding for the minimal vendored proptest (no `prop_oneof`):
/// (kind, provider id, capability mask / load, online flag).
type RawChurn = (u8, u64, u8, bool);

fn churn_strategy() -> impl Strategy<Value = RawChurn> {
    (0u8..4, 0u64..40, 1u8..64, proptest::bool::ANY)
}

fn decode((kind, id, mask, online): RawChurn) -> Churn {
    match kind {
        0 => Churn::Register(id, mask),
        1 => Churn::Unregister(id),
        2 => Churn::SetOnline(id, online),
        _ => Churn::UpdateLoad(id, mask % 20),
    }
}

fn apply(registry: &mut ProviderRegistry, churn: Churn) {
    match churn {
        Churn::Register(id, mask) => {
            registry.register(ProviderId::new(id), capability_set(mask), 1.0);
        }
        Churn::Unregister(id) => {
            registry.unregister(ProviderId::new(id));
        }
        // Both may address a never-registered provider: an error is as valid
        // an outcome as success, as long as both registries agree.
        Churn::SetOnline(id, online) => {
            let _ = registry.set_online(ProviderId::new(id), online);
        }
        Churn::UpdateLoad(id, load) => {
            let _ = registry.update_load(ProviderId::new(id), f64::from(load) * 0.5, load as usize);
        }
    }
}

proptest! {
    /// Cached, uncached and brute-force resolution agree after every churn
    /// step. Each probe runs *twice* against the cached registry so the
    /// second resolution exercises the pure hit path, not just the rebuild.
    #[test]
    fn cached_resolution_is_invisible(
        seed_providers in proptest::collection::vec((0u64..40, 1u8..64), 1..24),
        steps in proptest::collection::vec(
            (churn_strategy(), 1u8..64, proptest::bool::ANY),
            1..24,
        ),
    ) {
        let mut cached = ProviderRegistry::new();
        let mut uncached = ProviderRegistry::new();
        uncached.set_plan_cache_capacity(0);
        prop_assert!(cached.plan_cache_enabled());
        prop_assert!(!uncached.plan_cache_enabled());

        for (id, mask) in &seed_providers {
            cached.register(ProviderId::new(*id), capability_set(*mask), 1.0);
            uncached.register(ProviderId::new(*id), capability_set(*mask), 1.0);
        }

        for &(churn, mask, conjunctive) in &steps {
            let churn = decode(churn);
            apply(&mut cached, churn);
            apply(&mut uncached, churn);

            let req = requirement(mask, conjunctive);
            let expected = brute_force(&cached, req);
            prop_assert_eq!(&resolve(&mut cached, req), &expected, "rebuild probe {}", req);
            prop_assert_eq!(&resolve(&mut cached, req), &expected, "hit probe {}", req);
            prop_assert_eq!(&resolve(&mut uncached, req), &expected, "uncached probe {}", req);
        }

        // The uncached registry never counts cache traffic; the cached one
        // must have taken the hit path on every repeated probe.
        prop_assert_eq!(uncached.plan_cache_stats().lookups(), 0);
        let stats = cached.plan_cache_stats();
        let multi_probes = steps
            .iter()
            .filter(|(_, mask, _)| mask.count_ones() >= 2)
            .count() as u64;
        prop_assert!(stats.hits >= multi_probes, "every second probe must hit");
    }

    /// A working set wider than the cache thrashes the LRU (evictions on
    /// nearly every multi-class probe) without ever corrupting an answer.
    #[test]
    fn lru_thrash_stays_correct(
        providers in proptest::collection::vec((0u64..40, 1u8..64), 1..24),
        probes in proptest::collection::vec((3u8..64, proptest::bool::ANY), 8..40),
        capacity in 1usize..3,
    ) {
        let mut registry = ProviderRegistry::new();
        registry.set_plan_cache_capacity(capacity);
        for (id, mask) in &providers {
            registry.register(ProviderId::new(*id), capability_set(*mask), 1.0);
        }
        for &(mask, conjunctive) in &probes {
            let req = requirement(mask, conjunctive);
            let expected = brute_force(&registry, req);
            prop_assert_eq!(&resolve(&mut registry, req), &expected, "{}", req);
        }
        prop_assert!(registry.plan_cache_stats().entries <= capacity);
    }

    /// Full mediation under the three cache configurations is
    /// decision-for-decision identical: same winners, same proposals, same
    /// RNG consumption, regardless of requirement repetition inside batches
    /// or churn between them.
    #[test]
    fn mediation_is_byte_identical_across_cache_configs(
        providers in proptest::collection::vec((0u64..40, 1u8..64), 4..24),
        batches in proptest::collection::vec(
            (
                proptest::collection::vec((1u8..64, proptest::bool::ANY), 1..12),
                churn_strategy(),
            ),
            1..5,
        ),
        seed in 0u64..1_000,
    ) {
        let oracle =
            StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.3));
        let build = |configure: fn(&mut Mediator)| -> Mediator {
            let mut mediator =
                Mediator::sbqa(SystemConfig::default().with_knbest(6, 2), seed).unwrap();
            configure(&mut mediator);
            for (id, mask) in &providers {
                mediator.register_provider(ProviderId::new(*id), capability_set(*mask), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };
        let mut deduped = build(|_| {});
        let mut undeduped = build(|m| m.set_batch_dedup(false));
        let mut uncached = build(|m| m.set_plan_cache_capacity(0));
        prop_assert!(deduped.batch_dedup());

        let mut next_query = 0u64;
        for (probes, churn) in &batches {
            let batch: Vec<Query> = probes
                .iter()
                .map(|&(mask, conjunctive)| {
                    next_query += 1;
                    Query::requiring(
                        QueryId::new(next_query),
                        ConsumerId::new(1),
                        requirement(mask, conjunctive),
                    )
                    .replication(2)
                    .build()
                })
                .collect();

            let run = |mediator: &mut Mediator| {
                let mut outcomes = Vec::new();
                mediator.submit_batch(&batch, &oracle, |index, _, result| {
                    outcomes.push((index, result.ok().cloned()));
                });
                outcomes
            };
            let expected = run(&mut deduped);
            prop_assert_eq!(&run(&mut undeduped), &expected);
            prop_assert_eq!(&run(&mut uncached), &expected);

            // Churn between batches, applied to all three mediators alike.
            for mediator in [&mut deduped, &mut undeduped, &mut uncached] {
                match decode(*churn) {
                    Churn::Register(id, mask) => {
                        mediator.register_provider(ProviderId::new(id), capability_set(mask), 1.0);
                    }
                    // The mediator has no unregister; re-registering with a
                    // rotated profile is the closest membership churn (it
                    // replaces the provider and bumps the touched epochs).
                    Churn::Unregister(id) => {
                        mediator.register_provider(
                            ProviderId::new(id),
                            capability_set(((id as u8) | 1) & 63),
                            1.0,
                        );
                    }
                    Churn::SetOnline(id, online) => {
                        let _ = mediator.set_provider_online(ProviderId::new(id), online);
                    }
                    Churn::UpdateLoad(id, load) => {
                        let _ = mediator.update_provider_load(
                            ProviderId::new(id),
                            f64::from(load) * 0.5,
                            load as usize,
                        );
                    }
                }
            }
        }

        prop_assert_eq!(uncached.plan_cache_stats().lookups(), 0);
    }
}
