//! Proof that steady-state mediation performs zero per-query heap
//! allocation.
//!
//! A counting global allocator wraps the system allocator; after warming the
//! mediator's scratch buffers (KnBest pool, decision, satisfaction views,
//! recycled interaction windows), a sustained run of `submit_in_place` and
//! `submit_batch` must not allocate or reallocate at all.
//!
//! This file deliberately contains a single test: the counter is
//! process-global, so a parallel test could pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use sbqa_core::{Mediator, StaticIntentions};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: every method delegates verbatim to the `System` allocator and only
// adds a relaxed atomic counter bump, so the layout/pointer contracts of
// `GlobalAlloc` are exactly those `System` already upholds.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded unchanged; the caller's `layout` obligations
        // transfer directly to `System.alloc`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded unchanged; `ptr` was produced by `System.alloc`
        // (all paths of this allocator delegate to `System`).
        unsafe { System.dealloc(ptr, layout) };
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded unchanged; `ptr`/`layout`/`new_size` obligations
        // transfer directly to `System.realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn query(id: u64) -> Query {
    Query::builder(QueryId::new(id), ConsumerId::new(1), Capability::new(0))
        .replication(2)
        .build()
}

/// A query whose `Pq` requires a postings-list merge: intersection for even
/// ids, union for odd ids, cycling over overlapping class pairs.
fn multi_query(id: u64) -> Query {
    let a = Capability::new((id % 3) as u8);
    let b = Capability::new(((id + 1) % 3) as u8);
    let set = CapabilitySet::from_capabilities([a, b]);
    let required = if id.is_multiple_of(2) {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    };
    Query::requiring(QueryId::new(id), ConsumerId::new(1), required)
        .replication(2)
        .build()
}

#[test]
fn steady_state_mediation_does_not_allocate() {
    // 13,000 providers over overlapping two-class capability sets on classes
    // {0, 1, 2}: each class's postings list holds ~8,666 providers and the
    // online list 13,000 — both far past the array→bitmap promotion
    // threshold (`postings::ARRAY_MAX` = 4,096), so the measured merges run
    // against bitmap containers, not the small-array fast shape.
    const PROVIDERS: u64 = 13_000;

    let config = SystemConfig::default().with_knbest(20, 4);
    let mut mediator = Mediator::sbqa(config, 42).unwrap();
    for p in 0..PROVIDERS {
        let caps = CapabilitySet::from_capabilities([
            Capability::new((p % 3) as u8),
            Capability::new(((p + 1) % 3) as u8),
        ]);
        mediator.register_provider(ProviderId::new(p), caps, 1.0);
    }
    mediator.register_consumer(ConsumerId::new(1));
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.2));

    // Warm-up: fill every satisfaction window and grow all scratch buffers,
    // including the registry's merge scratch. The class populations are
    // static here, so every All/Any class pair reaches its maximal merge
    // output size during warm-up.
    for id in 0..800u64 {
        mediator.submit_in_place(&query(id), &oracle).unwrap();
        mediator.submit_in_place(&multi_query(id), &oracle).unwrap();
    }
    let batch: Vec<Query> = (10_000..10_064u64).map(query).collect();
    let multi_batch: Vec<Query> = (20_000..20_064u64).map(multi_query).collect();
    // One warm-up pass per batch so the batch-dedup memo's entry vector has
    // grown to its steady-state capacity before counting starts.
    mediator.submit_batch(&batch, &oracle, |_, _, result| assert!(result.is_ok()));
    mediator.submit_batch(&multi_batch, &oracle, |_, _, result| {
        assert!(result.is_ok());
    });
    let warm_stats = mediator.plan_cache_stats();

    // Measured steady state: the single-capability fast path…
    COUNTING.store(true, Ordering::SeqCst);
    for id in 2_000..2_500u64 {
        let decision = mediator.submit_in_place(&query(id), &oracle).unwrap();
        assert_eq!(decision.selected.len(), 2);
    }
    let report = mediator.submit_batch(&batch, &oracle, |_, _, result| {
        assert!(result.is_ok());
    });
    // …and the multi-capability merge path (bitmap intersections & unions).
    for id in 3_000..3_500u64 {
        let decision = mediator.submit_in_place(&multi_query(id), &oracle).unwrap();
        assert_eq!(decision.selected.len(), 2);
    }
    let multi_report = mediator.submit_batch(&multi_batch, &oracle, |_, _, result| {
        assert!(result.is_ok());
    });
    COUNTING.store(false, Ordering::SeqCst);

    assert_eq!(report.mediated, batch.len());
    assert_eq!(multi_report.mediated, multi_batch.len());
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations, 0,
        "steady-state mediation must not touch the heap ({allocations} allocations observed)"
    );

    // The measured multi-capability resolutions were served by the plan
    // cache (the population is static, so nothing could go stale): hits
    // advanced, and not a single new merge or rebuild happened while the
    // allocation counter was armed — the zero above covers the hit path.
    let stats = mediator.plan_cache_stats();
    assert!(
        stats.hits > warm_stats.hits,
        "measured runs must hit the cache"
    );
    assert_eq!(stats.misses, warm_stats.misses, "no new plan was merged");
    assert_eq!(
        stats.stale_rebuilds, warm_stats.stale_rebuilds,
        "nothing was invalidated mid-measurement"
    );
}
