//! Property tests pinning the candidate index to its specification: for any
//! population, churn history and capability requirement, the postings-list
//! answer (`ProviderRegistry::candidates`) must equal the brute-force slab
//! filter — same providers, ascending id order, no duplicates — for both
//! `All` (k-way intersection) and `Any` (k-way union) semantics, including
//! the borrowed single-capability fast path.

use proptest::prelude::*;

use sbqa_core::ProviderRegistry;
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, Query, QueryId,
};

/// Capability classes the generated populations draw from. Small on purpose:
/// overlap (several providers per class, several classes per provider) is
/// what makes merges interesting.
const CLASSES: u8 = 6;

fn capability_set(mask: u8) -> CapabilitySet {
    CapabilitySet::from_capabilities(
        (0..CLASSES)
            .filter(|class| mask & (1 << class) != 0)
            .map(Capability::new),
    )
}

fn requirement(mask: u8, conjunctive: bool) -> CapabilityRequirement {
    let set = capability_set(mask);
    if conjunctive {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    }
}

fn query(req: CapabilityRequirement) -> Query {
    Query::requiring(QueryId::new(1), ConsumerId::new(1), req).build()
}

/// The specification: filter the whole slab with `can_perform`, sort by id.
fn brute_force(registry: &ProviderRegistry, req: CapabilityRequirement) -> Vec<u64> {
    let q = query(req);
    let mut ids: Vec<u64> = registry
        .iter()
        .filter(|p| p.can_perform(&q))
        .map(|p| p.id.raw())
        .collect();
    ids.sort_unstable();
    ids
}

fn indexed(registry: &mut ProviderRegistry, req: CapabilityRequirement) -> Vec<u64> {
    registry
        .candidates(&query(req))
        .iter()
        .map(|p| p.id.raw())
        .collect()
}

proptest! {
    #[test]
    fn candidates_equal_brute_force_filter(
        // (id, capability mask) per provider; duplicate ids re-register.
        providers in proptest::collection::vec((0u64..60, 1u8..64), 1..40),
        // Providers toggled offline, providers unregistered (by position).
        offline in proptest::collection::vec(0usize..40, 0..10),
        removed in proptest::collection::vec(0usize..40, 0..6),
        // Requirements to probe, covering single- and multi-class sets.
        probes in proptest::collection::vec((1u8..64, proptest::bool::ANY), 1..8),
    ) {
        let mut registry = ProviderRegistry::new();
        for (id, mask) in &providers {
            registry.register(ProviderId::new(*id), capability_set(*mask), 1.0);
        }
        for &position in &offline {
            let (id, _) = providers[position % providers.len()];
            // May hit an already-offline or unregistered provider: both fine.
            let _ = registry.set_online(ProviderId::new(id), false);
        }
        for &position in &removed {
            let (id, _) = providers[position % providers.len()];
            registry.unregister(ProviderId::new(id));
        }

        for &(mask, conjunctive) in &probes {
            let req = requirement(mask, conjunctive);
            let expected = brute_force(&registry, req);
            let got = indexed(&mut registry, req);
            prop_assert_eq!(&got, &expected, "requirement {}", req);
            // Ascending ids also imply no duplicates.
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        }

        // Degenerate requirements follow quantifier semantics.
        let online: Vec<u64> = brute_force(&registry, CapabilityRequirement::All(CapabilitySet::EMPTY));
        prop_assert_eq!(
            indexed(&mut registry, CapabilityRequirement::All(CapabilitySet::EMPTY)),
            online
        );
        prop_assert!(indexed(&mut registry, CapabilityRequirement::Any(CapabilitySet::EMPTY)).is_empty());
    }

    #[test]
    fn starvation_classification_matches_slab_scan(
        providers in proptest::collection::vec((0u64..30, 1u8..64), 0..20),
        all_offline in proptest::bool::ANY,
        probes in proptest::collection::vec((1u8..64, proptest::bool::ANY), 1..6),
    ) {
        let mut registry = ProviderRegistry::new();
        for (id, mask) in &providers {
            registry.register(ProviderId::new(*id), capability_set(*mask), 1.0);
        }
        if all_offline {
            let ids: Vec<ProviderId> = registry.iter().map(|p| p.id).collect();
            for id in ids {
                registry.set_online(id, false).unwrap();
            }
        }
        for &(mask, conjunctive) in &probes {
            let req = requirement(mask, conjunctive);
            let q = query(req);
            // Only meaningful when the query actually starves.
            if !registry.candidates(&q).is_empty() {
                continue;
            }
            let any_registered_capable = registry
                .iter()
                .any(|p| req.matched_by(p.capabilities));
            let err = registry.starvation_error(&q);
            if any_registered_capable {
                prop_assert!(
                    matches!(err, sbqa_types::SbqaError::NoProviderOnline { .. }),
                    "requirement {}: expected NoProviderOnline, got {err:?}", req
                );
            } else {
                prop_assert!(
                    matches!(err, sbqa_types::SbqaError::NoCapableProvider { .. }),
                    "requirement {}: expected NoCapableProvider, got {err:?}", req
                );
            }
        }
    }
}
