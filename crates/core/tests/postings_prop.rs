//! Property tests pinning the bitmap postings container to the legacy
//! `Vec<u32>` postings model it replaced: after any churn history of
//! insert / remove / patch-slot operations, a [`PostingsMap`] must agree
//! with a sorted associative shadow on membership, slot payloads, length,
//! ascending-id iteration order and rank-select — and the word-parallel
//! `All`/`Any` merge kernels must agree with the naive sorted-vector
//! intersection and union they replaced.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use sbqa_core::postings::{intersect_lists, union_lists, MergeScratch, PostingsMap, ARRAY_MAX};
use sbqa_types::ProviderId;

/// The slab slot a provider id maps to in these tests. Id-keyed (not
/// list-keyed) because in production a provider occupies exactly one slab
/// slot, recorded identically in every postings list that contains it.
fn slot_for(raw: u64) -> u32 {
    (raw as u32).wrapping_mul(2_654_435_761).wrapping_add(17)
}

/// Checks every equivalence the legacy `Vec<u32>` postings offered.
fn assert_matches_shadow(map: &PostingsMap, shadow: &BTreeMap<u64, u32>) {
    assert_eq!(map.len(), shadow.len());
    assert_eq!(map.is_empty(), shadow.is_empty());

    // Iteration yields the shadow's payloads in ascending-id order.
    let got: Vec<u32> = map.iter().collect();
    let expected: Vec<u32> = shadow.values().copied().collect();
    assert_eq!(got, expected, "iteration order / payload mismatch");

    // Rank-select agrees with iteration at every position.
    for (pos, &slot) in expected.iter().enumerate() {
        assert_eq!(map.select(pos), slot, "select({pos})");
    }

    // collect_into is iteration.
    let mut collected = Vec::new();
    map.collect_into(&mut collected);
    assert_eq!(collected, expected);
}

proptest! {
    /// Membership, payloads, iteration order and rank-select agree with a
    /// sorted shadow model under arbitrary interleaved churn.
    #[test]
    fn postings_map_equals_sorted_shadow_under_churn(
        // (op, id): 0 = insert, 1 = remove, 2 = patch slot. Ids span three
        // 2^16 chunks so the chunk directory itself churns too.
        ops in proptest::collection::vec((0u8..3, 0u64..0x3_0000), 1..250),
        probes in proptest::collection::vec(0u64..0x3_0000, 1..40),
    ) {
        let mut map = PostingsMap::new();
        let mut shadow: BTreeMap<u64, u32> = BTreeMap::new();
        let mut generation: u32 = 0;

        for &(op, id) in &ops {
            match op {
                0 => {
                    let inserted = map.insert(ProviderId::new(id), slot_for(id));
                    let was_absent = shadow.insert(id, slot_for(id)).is_none();
                    prop_assert_eq!(inserted, was_absent, "insert({})", id);
                }
                1 => {
                    let removed = map.remove(ProviderId::new(id));
                    let was_present = shadow.remove(&id).is_some();
                    prop_assert_eq!(removed, was_present, "remove({})", id);
                }
                _ => {
                    generation = generation.wrapping_add(1);
                    let new_slot = slot_for(id).wrapping_add(generation);
                    let patched = map.patch_slot(ProviderId::new(id), new_slot);
                    let was_present = shadow.contains_key(&id);
                    if was_present {
                        shadow.insert(id, new_slot);
                    }
                    prop_assert_eq!(patched, was_present, "patch_slot({})", id);
                }
            }
        }

        assert_matches_shadow(&map, &shadow);

        // Membership probes: hits and misses both agree.
        for &id in probes.iter().chain(shadow.keys()) {
            let pid = ProviderId::new(id);
            prop_assert_eq!(map.contains(pid), shadow.contains_key(&id));
            prop_assert_eq!(map.slot_of(pid), shadow.get(&id).copied());
        }
    }

    /// The word-parallel merge kernels agree with naive sorted-vector
    /// intersection/union over the member lists.
    #[test]
    fn merge_kernels_equal_naive_sorted_vec_merges(
        // Per-provider membership mask over up to 4 lists; ids span two
        // chunks so the cursor merge over chunk keys is exercised.
        members in proptest::collection::vec((0u64..0x2_0000, 1u8..16), 1..120),
        classes in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let mut lists: Vec<PostingsMap> = (0..4).map(|_| PostingsMap::new()).collect();
        let mut naive: Vec<BTreeMap<u64, u32>> = vec![BTreeMap::new(); 4];
        for &(id, mask) in &members {
            for list_idx in 0..4 {
                if mask & (1 << list_idx) != 0 {
                    lists[list_idx].insert(ProviderId::new(id), slot_for(id));
                    naive[list_idx].insert(id, slot_for(id));
                }
            }
        }

        let mut dedup = classes.clone();
        dedup.sort_unstable();
        dedup.dedup();

        // Naive intersection / union over the selected lists' id sets.
        let ids_in_all: Vec<u32> = naive[dedup[0]]
            .keys()
            .filter(|id| dedup.iter().all(|&c| naive[c].contains_key(id)))
            .map(|&id| slot_for(id))
            .collect();
        let mut union_ids: Vec<u64> = dedup
            .iter()
            .flat_map(|&c| naive[c].keys().copied())
            .collect();
        union_ids.sort_unstable();
        union_ids.dedup();
        let ids_in_any: Vec<u32> = union_ids.iter().map(|&id| slot_for(id)).collect();

        let mut out = Vec::new();
        let mut bits = MergeScratch::new();
        // The registry resolves a single class through the borrowed Map fast
        // path; the intersection kernel's contract starts at two lists.
        if dedup.len() >= 2 {
            intersect_lists(&lists, &dedup, &mut out, &mut bits);
            prop_assert_eq!(&out, &ids_in_all, "All merge over {:?}", &dedup);
        }
        union_lists(&lists, &dedup, &mut out, &mut bits);
        prop_assert_eq!(&out, &ids_in_any, "Any merge over {:?}", &dedup);
    }
}

/// Seeded large-scale churn that crosses the array→bitmap promotion
/// threshold in both directions inside a single chunk, verifying shadow
/// equivalence at every phase boundary. Proptest populations stay small for
/// speed; this pins the container transitions the proptest can't reach.
#[test]
fn container_promotion_and_demotion_preserve_equivalence() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5b9a_2026);
    let mut map = PostingsMap::new();
    let mut shadow: BTreeMap<u64, u32> = BTreeMap::new();

    // Phase 1: grow one chunk well past ARRAY_MAX (promotion), with a second
    // chunk staying sparse (array) so mixed-shape directories are covered.
    while shadow.len() < ARRAY_MAX + 1_500 {
        let id = rng.gen_range(0u64..0x1_8000);
        map.insert(ProviderId::new(id), slot_for(id));
        shadow.insert(id, slot_for(id));
    }
    assert_matches_shadow(&map, &shadow);

    // Phase 2: interleaved churn at scale — removals, re-inserts and slot
    // patches against the bitmap container.
    for _ in 0..4_000 {
        let id = rng.gen_range(0u64..0x1_8000);
        match rng.gen_range(0u8..3) {
            0 => {
                map.insert(ProviderId::new(id), slot_for(id));
                shadow.insert(id, slot_for(id));
            }
            1 => {
                assert_eq!(
                    map.remove(ProviderId::new(id)),
                    shadow.remove(&id).is_some()
                );
            }
            _ => {
                let new_slot = slot_for(id) ^ 0xdead_beef;
                let patched = map.patch_slot(ProviderId::new(id), new_slot);
                assert_eq!(patched, shadow.contains_key(&id));
                if patched {
                    shadow.insert(id, new_slot);
                }
            }
        }
    }
    assert_matches_shadow(&map, &shadow);

    // Phase 3: drain far below the demotion threshold (bitmap → array), then
    // verify equivalence survives the shape change.
    let victims: Vec<u64> = shadow.keys().copied().collect();
    for id in victims {
        if shadow.len() <= 512 {
            break;
        }
        assert!(map.remove(ProviderId::new(id)));
        shadow.remove(&id);
    }
    assert_matches_shadow(&map, &shadow);

    // Phase 4: merges against the churned shapes still match the naive
    // model. Payloads stay id-consistent across lists (the production
    // invariant): `other` reuses the shadow's current slot where the id is
    // shared.
    let slot_of_id =
        |id: u64, shadow: &BTreeMap<u64, u32>| shadow.get(&id).copied().unwrap_or(slot_for(id));
    let mut other_ids: Vec<u64> = shadow.keys().copied().step_by(2).collect();
    other_ids.extend((0..64u64).map(|i| 0x2_0000 + i)); // a chunk only `other` has
    let mut other = PostingsMap::new();
    for &id in &other_ids {
        other.insert(ProviderId::new(id), slot_of_id(id, &shadow));
    }

    let mut out = Vec::new();
    let mut bits = MergeScratch::new();

    let expected_all: Vec<u32> = shadow
        .iter()
        .filter(|(id, _)| other.contains(ProviderId::new(**id)))
        .map(|(_, &slot)| slot)
        .collect();
    let lists = [map, other];
    intersect_lists(&lists, &[0, 1], &mut out, &mut bits);
    assert_eq!(out, expected_all);

    let mut union_ids: Vec<u64> = shadow.keys().copied().collect();
    union_ids.extend(other_ids.iter().copied());
    union_ids.sort_unstable();
    union_ids.dedup();
    let expected_any: Vec<u32> = union_ids
        .iter()
        .map(|&id| slot_of_id(id, &shadow))
        .collect();
    union_lists(&lists, &[0, 1], &mut out, &mut bits);
    assert_eq!(out, expected_any);
}
