//! Inline suppression pragmas.
//!
//! A finding is suppressed by a line comment carrying the `sbqa-lint` marker
//! directly followed by a colon and `allow(<rule>, "<justification>")` — the
//! exact spelling is shown in ARCHITECTURE.md and in every finding's help
//! text. (This module's docs deliberately never juxtapose the marker and the
//! colon: the scanner reads its own sources, and a literal example here
//! would itself be parsed as a pragma.) The pragma sits
//! either trailing on the offending line or alone on the line directly above
//! it (comment-only lines in between stack, so several rules can be allowed
//! for one line). The justification is **mandatory and must be non-empty**:
//! a suppression is a documented contract site, not an escape hatch. A
//! malformed pragma, an unknown rule name or an empty justification is
//! itself a finding (`bad-pragma`), and a pragma that suppresses nothing
//! reports `unused-suppression` so stale waivers cannot accumulate.

use crate::lexer::Comment;

/// A parsed `allow` pragma.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The written reason — required, surfaced in reports and JSON.
    pub justification: String,
    /// Line the pragma comment sits on.
    pub comment_line: u32,
    /// Line whose findings the pragma suppresses.
    pub target_line: u32,
}

/// A pragma that could not be parsed, with the reason.
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// Line the malformed pragma sits on.
    pub line: u32,
    /// Human-readable description of what is wrong.
    pub reason: String,
}

/// The marker every pragma starts with (after the comment delimiter).
pub const PRAGMA_MARKER: &str = "sbqa-lint:";

/// Extracts suppressions from a file's comments.
///
/// `line_has_code` reports whether a 1-based source line carries any
/// non-comment token; a pragma on a code line targets that line, a pragma on
/// a comment-only line targets the next code line.
pub fn collect<F>(
    comments: &[Comment<'_>],
    last_line: u32,
    line_has_code: F,
) -> (Vec<Suppression>, Vec<BadPragma>)
where
    F: Fn(u32) -> bool,
{
    let mut suppressions = Vec::new();
    let mut bad = Vec::new();

    for comment in comments {
        let Some(marker) = comment.text.find(PRAGMA_MARKER) else {
            continue;
        };
        let rest = comment.text[marker + PRAGMA_MARKER.len()..].trim();
        match parse_allow(rest) {
            Ok((rule, justification)) => {
                let target_line = if line_has_code(comment.line) {
                    comment.line
                } else {
                    // Comment-only line: target the next line that has code,
                    // skipping further comment-only lines so pragmas stack.
                    let mut line = comment.end_line + 1;
                    while line < last_line && !line_has_code(line) {
                        line += 1;
                    }
                    line
                };
                suppressions.push(Suppression {
                    rule,
                    justification,
                    comment_line: comment.line,
                    target_line,
                });
            }
            Err(reason) => bad.push(BadPragma {
                line: comment.line,
                reason,
            }),
        }
    }

    (suppressions, bad)
}

/// Parses `allow(<rule>, "<justification>")`, returning the rule name and
/// justification or a description of the syntax error.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let Some(args) = rest.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(<rule>, \"<justification>\")` after `{PRAGMA_MARKER}`"
        ));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(comma) = args.find(',') else {
        return Err(
            "missing justification: write `allow(<rule>, \"<why this is sound>\")`".to_string(),
        );
    };
    let rule = args[..comma].trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("`{rule}` is not a valid rule name"));
    }
    let tail = args[comma + 1..].trim();
    let Some(tail) = tail.strip_prefix('"') else {
        return Err("justification must be a double-quoted string".to_string());
    };
    let Some(close) = tail.find('"') else {
        return Err("unterminated justification string".to_string());
    };
    let justification = tail[..close].trim();
    if justification.is_empty() {
        return Err("justification must not be empty — say why the waiver is sound".to_string());
    }
    let after = tail[close + 1..].trim_start();
    if !after.starts_with(')') {
        return Err("expected `)` after the justification".to_string());
    }
    Ok((rule.to_string(), justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Suppression>, Vec<BadPragma>) {
        let lexed = lex(src);
        let code_lines: std::collections::BTreeSet<u32> =
            lexed.tokens.iter().map(|t| t.line).collect();
        let last = src.lines().count() as u32 + 1;
        collect(&lexed.comments, last, |l| code_lines.contains(&l))
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let (sup, bad) = run("let x = now(); // sbqa-lint: allow(wall-clock, \"startup stamp\")");
        assert!(bad.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].rule, "wall-clock");
        assert_eq!(sup[0].justification, "startup stamp");
        assert_eq!(sup[0].target_line, 1);
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src = "\n// sbqa-lint: allow(hash-collection, \"point lookups only\")\n// another comment\nlet m = HashMap::new();\n";
        let (sup, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(sup[0].comment_line, 2);
        assert_eq!(sup[0].target_line, 4);
    }

    #[test]
    fn stacked_pragmas_share_a_target() {
        let src = "// sbqa-lint: allow(wall-clock, \"a\")\n// sbqa-lint: allow(panic-hygiene, \"b\")\nwork();\n";
        let (sup, _) = run(src);
        assert_eq!(sup.len(), 2);
        assert_eq!(sup[0].target_line, 3);
        assert_eq!(sup[1].target_line, 3);
    }

    #[test]
    fn missing_justification_is_bad() {
        let (sup, bad) = run("// sbqa-lint: allow(wall-clock)");
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].reason.contains("missing justification"));
    }

    #[test]
    fn empty_justification_is_bad() {
        let (sup, bad) = run("// sbqa-lint: allow(wall-clock, \"  \")");
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn garbled_marker_is_bad() {
        let (_, bad) = run("// sbqa-lint: alow(wall-clock, \"x\")");
        assert_eq!(bad.len(), 1);
    }
}
