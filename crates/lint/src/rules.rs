//! The repo-specific rule catalog and the checking engine.
//!
//! Every rule here guards an invariant the workspace's scale claims rest on
//! (see ARCHITECTURE.md "Statically-enforced invariants"):
//!
//! * **`wall-clock`** — allocation is a pure function of
//!   `(registry state, seed)`; reading `Instant::now()`/`SystemTime` inside a
//!   deterministic crate breaks replayability and the byte-identical golden
//!   contract.
//! * **`hash-collection`** — `HashMap`/`HashSet` iteration order is
//!   randomized per process; any ordering-sensitive use inside a
//!   deterministic crate silently changes allocation results between runs.
//! * **`unseeded-rng`** — entropy-seeded RNG constructors make the KnBest
//!   draw irreproducible; every RNG must derive from the run seed.
//! * **`panic-hygiene`** — mediator library code must degrade through
//!   `SbqaError`, not take the process down mid-mediation.
//! * **`float-ordering`** — `.partial_cmp()` on scores either panics on NaN
//!   (`unwrap`) or produces a non-transitive, position-dependent order
//!   (`unwrap_or(Equal)`); ranking must go through
//!   `sbqa_types::float_ord::f64_total_cmp`.
//! * **`unsafe-audit`** — every `unsafe` block or impl must be preceded by a
//!   `// SAFETY:` comment.
//!
//! Two meta rules police the waiver mechanism itself: `bad-pragma` (deny)
//! for malformed/unjustified pragmas and `unused-suppression` (warn) for
//! waivers that no longer suppress anything.

use std::collections::BTreeSet;

use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::pragma;
use crate::report::{Finding, Severity, SuppressionSite};

/// Which build target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/` — library or binary code, fully in scope.
    Library,
    /// Under `tests/` — exempt from all rules except `unsafe-audit`.
    Test,
    /// Under `benches/` — exempt like tests.
    Bench,
    /// Under `examples/` — exempt like tests.
    Example,
}

impl FileKind {
    fn exempt(self) -> bool {
        !matches!(self, FileKind::Library)
    }
}

/// Where a file sits in the workspace, for rule applicability.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate directory name (`core`, `service`, …; `sbqa` for the root).
    pub crate_name: String,
    /// The target kind.
    pub kind: FileKind,
}

/// Crates whose library code must stay a pure function of
/// `(registry state, seed)`.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "service",
    "sim",
    "satisfaction",
    "baselines",
    "replication",
];

/// Crates whose library code must not panic.
pub const PANIC_FREE_CRATES: &[&str] = &["core", "service", "types", "replication"];

/// A rule's identity, severity and documentation.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable rule name, used in diagnostics and pragmas.
    pub name: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// One-line contract statement (rule catalog / JSON).
    pub summary: &'static str,
    /// Fix guidance rendered under each finding.
    pub help: &'static str,
}

/// The full rule catalog, including the two pragma meta rules.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "wall-clock",
        severity: Severity::Deny,
        summary: "no Instant::now()/SystemTime in deterministic crates",
        help: "thread VirtualTime through instead; if this is measurement-only plumbing, \
               suppress with `// sbqa-lint: allow(wall-clock, \"<why results stay pure>\")`",
    },
    RuleSpec {
        name: "hash-collection",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet in deterministic crates without a written ordering argument",
        help: "iteration order is randomized per process: use BTreeMap, a sorted Vec or the \
               postings index, or document why ordering never reaches an output via \
               `// sbqa-lint: allow(hash-collection, \"<ordering argument>\")`",
    },
    RuleSpec {
        name: "unseeded-rng",
        severity: Severity::Deny,
        summary: "no entropy-seeded RNG constructors anywhere in library code",
        help: "derive every generator from the run seed (e.g. ChaCha8Rng::seed_from_u64)",
    },
    RuleSpec {
        name: "panic-hygiene",
        severity: Severity::Deny,
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in panic-free library crates",
        help: "return SbqaError (or restructure so the invariant is static); a deliberate \
               invariant assertion needs `// sbqa-lint: allow(panic-hygiene, \"<invariant>\")`",
    },
    RuleSpec {
        name: "float-ordering",
        severity: Severity::Deny,
        summary: "no .partial_cmp() in library code — NaN breaks the total order",
        help: "compare through sbqa_types::float_ord::f64_total_cmp (deterministic total \
               order, NaN-safe, signed-zero compatible with partial_cmp)",
    },
    RuleSpec {
        name: "unsafe-audit",
        severity: Severity::Deny,
        summary: "every unsafe block/impl carries a // SAFETY: comment",
        help: "state the proof obligation discharged by the surrounding code in a \
               `// SAFETY:` comment directly above the unsafe block",
    },
    RuleSpec {
        name: "bad-pragma",
        severity: Severity::Deny,
        summary: "suppression pragmas must parse and carry a non-empty justification",
        help: "write `// sbqa-lint: allow(<rule>, \"<why this waiver is sound>\")`",
    },
    RuleSpec {
        name: "unused-suppression",
        severity: Severity::Warn,
        summary: "a pragma that suppresses nothing must be removed",
        help: "delete the stale pragma (or fix the rule name) so waiver counts stay honest",
    },
];

/// Looks up a rule by name.
#[must_use]
pub fn rule(name: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|r| r.name == name)
}

fn spec(name: &str) -> &'static RuleSpec {
    rule(name).expect("rule names used internally are in the catalog")
}

/// Whether `rule_name` applies to files of `class` at all.
#[must_use]
pub fn applies(rule_name: &str, class: &FileClass) -> bool {
    let crate_name = class.crate_name.as_str();
    match rule_name {
        // unsafe-audit holds everywhere, including tests/benches/examples:
        // an unreviewed unsafe block in a test harness can invalidate the
        // very property the test claims to prove.
        "unsafe-audit" | "bad-pragma" | "unused-suppression" => true,
        _ if class.kind.exempt() => false,
        "wall-clock" | "hash-collection" => DETERMINISTIC_CRATES.contains(&crate_name),
        "panic-hygiene" => PANIC_FREE_CRATES.contains(&crate_name),
        "unseeded-rng" | "float-ordering" => true,
        _ => false,
    }
}

/// A raw (pre-suppression) violation.
struct RawFinding {
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
}

/// Lints one file's source text under an explicit classification.
///
/// Returns the unsuppressed findings plus the used, justified suppressions
/// (the documented contract sites the JSON report aggregates).
#[must_use]
pub fn check_file(
    path_label: &str,
    source: &str,
    class: &FileClass,
) -> (Vec<Finding>, Vec<SuppressionSite>) {
    let lexed = lex(source);
    let exempt = cfg_test_token_flags(&lexed.tokens);
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let last_line = source.lines().count() as u32 + 1;

    let (mut suppressions, bad_pragmas) =
        pragma::collect(&lexed.comments, last_line, |l| code_lines.contains(&l));

    let mut raw = scan_tokens(&lexed, &exempt, source, class);

    // Pragma meta rules.
    for bad in &bad_pragmas {
        raw.push(RawFinding {
            rule: "bad-pragma",
            line: bad.line,
            col: 1,
            message: bad.reason.clone(),
        });
    }
    for sup in &suppressions {
        if rule(&sup.rule).is_none() {
            raw.push(RawFinding {
                rule: "bad-pragma",
                line: sup.comment_line,
                col: 1,
                message: format!("unknown rule `{}` in allow pragma", sup.rule),
            });
        }
    }

    // Apply suppressions: a finding on a pragma's target line whose rule
    // matches is converted into a documented suppression site. The meta
    // rules themselves are deliberately not suppressible.
    let mut used = vec![false; suppressions.len()];
    let mut findings = Vec::new();
    for f in raw {
        let suppressed = f.rule != "bad-pragma"
            && suppressions.iter().enumerate().any(|(i, s)| {
                let hit = s.rule == f.rule && s.target_line == f.line;
                if hit {
                    used[i] = true;
                }
                hit
            });
        if !suppressed {
            let s = spec(f.rule);
            findings.push(Finding {
                path: path_label.to_string(),
                line: f.line,
                col: f.col,
                rule: s.name,
                severity: s.severity,
                message: f.message,
                help: s.help,
            });
        }
    }

    // Unused pragmas (valid rule name, nothing suppressed) are warn-level
    // findings so stale waivers cannot linger.
    let mut sites = Vec::new();
    for (i, sup) in suppressions.drain(..).enumerate() {
        if rule(&sup.rule).is_none() {
            continue; // already reported as bad-pragma
        }
        if used[i] {
            sites.push(SuppressionSite {
                path: path_label.to_string(),
                suppression: sup,
            });
        } else {
            let s = spec("unused-suppression");
            findings.push(Finding {
                path: path_label.to_string(),
                line: sup.comment_line,
                col: 1,
                rule: s.name,
                severity: s.severity,
                message: format!(
                    "allow({}) suppresses nothing on line {}",
                    sup.rule, sup.target_line
                ),
                help: s.help,
            });
        }
    }

    (findings, sites)
}

/// Runs the token matchers.
fn scan_tokens(
    lexed: &Lexed<'_>,
    exempt: &[bool],
    source: &str,
    class: &FileClass,
) -> Vec<RawFinding> {
    let tokens = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let is_use_line = |line: u32| {
        lines.get(line as usize - 1).is_some_and(|l| {
            let t = l.trim_start();
            t.starts_with("use ") || t.starts_with("pub use ")
        })
    };

    let mut raw = Vec::new();
    let mut push = |rule_name: &'static str, tok: &Token<'_>, message: String| {
        raw.push(RawFinding {
            rule: rule_name,
            line: tok.line,
            col: tok.col,
            message,
        });
    };

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let prev_punct = i
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text);
        let next = tokens.get(i + 1);
        let next_punct = next.filter(|t| t.kind == TokKind::Punct).map(|t| t.text);

        // unsafe-audit runs even inside #[cfg(test)] regions.
        if tok.text == "unsafe"
            && applies("unsafe-audit", class)
            && (next_punct == Some("{") || next.is_some_and(|t| t.text == "impl"))
            && !has_safety_comment(&lexed.comments, tok.line)
        {
            let what = if next_punct == Some("{") {
                "unsafe block"
            } else {
                "unsafe impl"
            };
            push(
                "unsafe-audit",
                tok,
                format!("{what} without a preceding `// SAFETY:` comment"),
            );
            continue;
        }

        if exempt[i] {
            continue;
        }

        if applies("wall-clock", class) {
            if tok.text == "Instant"
                && next_punct == Some("::")
                && tokens.get(i + 2).is_some_and(|t| t.text == "now")
            {
                push(
                    "wall-clock",
                    tok,
                    format!(
                        "`Instant::now()` reads the wall clock inside deterministic crate `{}`",
                        class.crate_name
                    ),
                );
            }
            if tok.text == "SystemTime" {
                push(
                    "wall-clock",
                    tok,
                    format!(
                        "`SystemTime` inside deterministic crate `{}`",
                        class.crate_name
                    ),
                );
            }
        }

        if applies("hash-collection", class)
            && (tok.text == "HashMap" || tok.text == "HashSet")
            && !is_use_line(tok.line)
        {
            push(
                "hash-collection",
                tok,
                format!(
                    "`{}` in deterministic crate `{}`: iteration order is nondeterministic",
                    tok.text, class.crate_name
                ),
            );
        }

        if applies("unseeded-rng", class)
            && matches!(
                tok.text,
                "thread_rng" | "ThreadRng" | "from_entropy" | "from_os_rng" | "OsRng"
            )
        {
            push(
                "unseeded-rng",
                tok,
                format!("`{}` constructs an entropy-seeded RNG", tok.text),
            );
        }

        if applies("panic-hygiene", class) {
            let method_call = prev_punct == Some(".") && next_punct == Some("(");
            if (tok.text == "unwrap" || tok.text == "expect") && method_call {
                push(
                    "panic-hygiene",
                    tok,
                    format!(
                        "`.{}()` can panic in panic-free crate `{}`",
                        tok.text, class.crate_name
                    ),
                );
            }
            if matches!(tok.text, "panic" | "todo" | "unimplemented") && next_punct == Some("!") {
                push(
                    "panic-hygiene",
                    tok,
                    format!("`{}!` in panic-free crate `{}`", tok.text, class.crate_name),
                );
            }
        }

        if applies("float-ordering", class) && tok.text == "partial_cmp" && prev_punct == Some(".")
        {
            push(
                "float-ordering",
                tok,
                "`.partial_cmp()` is not a total order (NaN); ranking becomes \
                 position-dependent or panics"
                    .to_string(),
            );
        }
    }

    raw
}

/// Whether a `SAFETY:` comment ends on `line` or within the three lines
/// directly above it (covering a short justification block).
fn has_safety_comment(comments: &[crate::lexer::Comment<'_>], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 3 >= line)
}

/// Marks tokens inside `#[cfg(test)]`-gated items.
///
/// The scanner tracks the attribute sequence `# [ cfg ( test ) ]` and then
/// extends the exempt region across the following item: to the first `;` at
/// the same depth (e.g. `#[cfg(test)] use …;`) or across the first balanced
/// `{ … }` group (e.g. `#[cfg(test)] mod tests { … }`).
fn cfg_test_token_flags(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut exempt = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start = i;
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text {
                    ";" if depth == 0 => break,
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for flag in &mut exempt[start..=end] {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    exempt
}

fn is_cfg_test_attr(tokens: &[Token<'_>], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| tokens[i + k].text == *t)
}
