//! Workspace file discovery and classification.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileClass, FileKind};

/// Directory names never descended into. `fixtures` holds the lint's own
/// deliberately-violating test inputs; the rest are build products, vendored
/// third-party stand-ins or VCS internals.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "bench_results", "fixtures"];

/// Finds the workspace root by walking upward from `start` until a
/// `Cargo.toml` containing a `[workspace]` table appears.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Classifies a workspace-relative `.rs` path, or `None` if it is out of
/// scope (not under a recognized target directory).
#[must_use]
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (crate_name, rest) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        rest => ("sbqa".to_string(), rest),
    };
    let kind = match rest.first() {
        Some(&"src") => FileKind::Library,
        Some(&"tests") => FileKind::Test,
        Some(&"benches") => FileKind::Bench,
        Some(&"examples") => FileKind::Example,
        _ => return None,
    };
    Some(FileClass { crate_name, kind })
}

/// Recursively collects every classifiable `.rs` file under `root`, as
/// `(absolute path, workspace-relative label, class)` sorted by label so
/// reports are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<(PathBuf, String, FileClass)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String, FileClass)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            if let Some(class) = classify(&rel) {
                let label = rel
                    .iter()
                    .filter_map(|c| c.to_str())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((path, label, class));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        let lib = classify(Path::new("crates/core/src/registry.rs")).unwrap();
        assert_eq!(lib.crate_name, "core");
        assert_eq!(lib.kind, FileKind::Library);

        let bin = classify(Path::new("crates/bench/src/bin/scenario1.rs")).unwrap();
        assert_eq!(bin.crate_name, "bench");
        assert_eq!(bin.kind, FileKind::Library);

        let test = classify(Path::new("crates/core/tests/zero_alloc.rs")).unwrap();
        assert_eq!(test.kind, FileKind::Test);

        let root_test = classify(Path::new("tests/golden_scenario1.rs")).unwrap();
        assert_eq!(root_test.crate_name, "sbqa");
        assert_eq!(root_test.kind, FileKind::Test);

        let bench = classify(Path::new("crates/bench/benches/registry.rs")).unwrap();
        assert_eq!(bench.kind, FileKind::Bench);

        let example = classify(Path::new("examples/quickstart.rs")).unwrap();
        assert_eq!(example.kind, FileKind::Example);

        assert!(classify(Path::new("README.md")).is_none());
        assert!(classify(Path::new("scripts/ci.sh")).is_none());
    }
}
