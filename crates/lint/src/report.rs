//! Diagnostics, severities and the machine-readable report.

use std::fmt;

use crate::pragma::Suppression;

/// How a rule violation is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported; fails the run only under `--deny-warnings`.
    Warn,
    /// Always fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One unsuppressed rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name (`wall-clock`, `panic-hygiene`, …).
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// How to fix it (rendered as a `help:` line).
    pub help: &'static str,
}

impl Finding {
    /// Renders the finding as `path:line:col: severity[rule]: message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}\n    help: {}",
            self.path, self.line, self.col, self.severity, self.rule, self.message, self.help
        )
    }
}

/// An accepted (justified) suppression, with the file it lives in.
#[derive(Debug, Clone)]
pub struct SuppressionSite {
    /// Workspace-relative path.
    pub path: String,
    /// The parsed pragma.
    pub suppression: Suppression,
}

/// The aggregate result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Used (justified) suppressions, sorted by (path, line).
    pub suppressions: Vec<SuppressionSite>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings and suppressions into their canonical stable order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        self.suppressions.sort_by(|a, b| {
            (a.path.as_str(), a.suppression.comment_line)
                .cmp(&(b.path.as_str(), b.suppression.comment_line))
        });
    }

    /// Counts findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the run should fail.
    #[must_use]
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Deny) > 0 || (deny_warnings && self.count(Severity::Warn) > 0)
    }

    /// Per-rule suppression counts, sorted by rule name — the number future
    /// sessions diff against `bench_results/LINT_baseline.json`.
    #[must_use]
    pub fn suppression_counts(&self) -> Vec<(String, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for site in &self.suppressions {
            *counts.entry(site.suppression.rule.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Renders the machine-readable JSON report (hand-rolled writer: the
    /// output is committed as a baseline, so it must be deterministic and
    /// dependency-free). Contains no timestamps by design.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"sbqa-lint/v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"deny_findings\": {},\n  \"warn_findings\": {},\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));

        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}",
                json_str(&f.path),
                f.line,
                f.col,
                json_str(f.rule),
                json_str(&f.severity.to_string()),
                json_str(&f.message)
            ));
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }

        out.push_str("  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}",
                json_str(&s.path),
                s.suppression.comment_line,
                json_str(&s.suppression.rule),
                json_str(&s.suppression.justification)
            ));
        }
        if self.suppressions.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }

        out.push_str("  \"suppression_counts\": {");
        let counts = self.suppression_counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(rule), n));
        }
        if counts.is_empty() {
            out.push_str("}\n");
        } else {
            out.push_str("\n  }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let report = Report::default();
        let json = report.to_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"suppression_counts\": {}"));
        assert!(!report.failed(true));
    }

    #[test]
    fn deny_fails_and_warn_fails_only_with_flag() {
        let mut report = Report::default();
        report.findings.push(Finding {
            path: "x.rs".into(),
            line: 1,
            col: 1,
            rule: "unused-suppression",
            severity: Severity::Warn,
            message: "m".into(),
            help: "h",
        });
        assert!(!report.failed(false));
        assert!(report.failed(true));
    }
}
