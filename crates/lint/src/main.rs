//! The `sbqa-lint` command-line gate.
//!
//! ```text
//! sbqa-lint [--root <dir>] [--json] [--deny-warnings] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (deny-level, or warn-level under
//! `--deny-warnings`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sbqa_lint::report::Severity;
use sbqa_lint::{lint_workspace, rules, workspace};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny_warnings: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "sbqa-lint: static analysis for the SbQA workspace\n\n\
                     USAGE: sbqa-lint [--root <dir>] [--json] [--deny-warnings] [--list-rules]\n\n\
                     OPTIONS:\n  \
                     --root <dir>      workspace root (default: discovered from cwd)\n  \
                     --json            emit the machine-readable report on stdout\n  \
                     --deny-warnings   treat warn-level findings as failures\n  \
                     --list-rules      print the rule catalog and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("sbqa-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!(
                "{:<20} {:<5} {}",
                rule.name,
                rule.severity.to_string(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.or_else(|| workspace::find_root(&cwd)) else {
        eprintln!("sbqa-lint: no workspace root found (missing Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sbqa-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
        println!(
            "sbqa-lint: checked {} files: {} deny, {} warn, {} justified suppressions",
            report.files_scanned,
            report.count(Severity::Deny),
            report.count(Severity::Warn),
            report.suppressions.len()
        );
    }

    if report.failed(opts.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
