//! A small hand-rolled Rust token scanner.
//!
//! The scanner understands exactly enough lexical Rust for lint rules to be
//! sound: line and (nested) block comments, plain/byte/raw string literals,
//! character literals vs. lifetimes, raw identifiers, and numeric literals.
//! Forbidden names inside strings, chars or comments therefore never reach a
//! rule — only real identifier tokens do.
//!
//! It is deliberately *not* a parser: rules operate on the token stream with
//! a little local context (neighbouring punctuation, brace depth), which is
//! sufficient because every contract the lints enforce is lexically
//! recognizable (`Instant :: now`, `. unwrap`, `unsafe {`, …).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `partial_cmp`, …).
    Ident,
    /// A punctuation token. Multi-character operators are emitted as single
    /// characters except `::`, which rules need as one unit.
    Punct,
    /// A string, byte-string, character or numeric literal (contents opaque).
    Literal,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The token text (for literals: the raw source slice).
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// A comment, kept out of the token stream but retained for pragma parsing
/// and the `unsafe-audit` rule's `// SAFETY:` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    /// The comment text including its delimiters.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (`> line` for multi-line blocks).
    pub end_line: u32,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// All comments in source order.
    pub comments: Vec<Comment<'a>>,
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(b, _)| b)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and comments.
///
/// The scanner never fails: malformed input (unterminated strings or
/// comments) is consumed to end-of-file, which matches the needs of a lint
/// that only ever runs on code the compiler already accepted.
#[must_use]
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while !cur.at_end() {
        let start_byte = cur.byte_offset();
        let (line, col) = (cur.line, cur.col);
        let c = cur.peek(0).expect("not at end");

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                text: &src[start_byte..cur.byte_offset()],
                line,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && !cur.at_end() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text: &src[start_byte..cur.byte_offset()],
                line,
                end_line: cur.line,
            });
            continue;
        }

        // String-ish prefixes and identifiers share a start character, so
        // resolve the string forms first: r"", r#""#, b"", b'', br"", br#""#.
        if is_ident_start(c) {
            let raw_string = |hash_from: usize, cur: &Cursor<'_>| -> Option<usize> {
                // Counts `#`s from `hash_from` and requires a quote after
                // them; returns the hash count.
                let mut hashes = 0usize;
                while cur.peek(hash_from + hashes) == Some('#') {
                    hashes += 1;
                }
                (cur.peek(hash_from + hashes) == Some('"')).then_some(hashes)
            };

            if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#ident`: emit the bare identifier.
                cur.bump();
                cur.bump();
                let ident_start = cur.byte_offset();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: &src[ident_start..cur.byte_offset()],
                    line,
                    col,
                });
                continue;
            }

            let string_prefix = match c {
                'r' => raw_string(1, &cur).map(|h| (1usize, h)),
                'b' if cur.peek(1) == Some('"') => Some((1, 0)),
                'b' if cur.peek(1) == Some('r') => raw_string(2, &cur).map(|h| (2usize, h)),
                _ => None,
            };
            if let Some((prefix_len, hashes)) = string_prefix {
                for _ in 0..prefix_len + hashes + 1 {
                    cur.bump(); // prefix, hashes and the opening quote
                }
                if hashes == 0 && prefix_len == 1 && c == 'b' {
                    // b"..." supports escapes.
                    consume_quoted(&mut cur, '"');
                } else if hashes == 0 {
                    consume_quoted(&mut cur, '"');
                } else {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    'raw: while let Some(n) = cur.bump() {
                        if n == '"' {
                            for k in 0..hashes {
                                if cur.peek(k) != Some('#') {
                                    continue 'raw;
                                }
                            }
                            for _ in 0..hashes {
                                cur.bump();
                            }
                            break;
                        }
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: &src[start_byte..cur.byte_offset()],
                    line,
                    col,
                });
                continue;
            }

            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                consume_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: &src[start_byte..cur.byte_offset()],
                    line,
                    col,
                });
                continue;
            }

            // Plain identifier / keyword.
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: &src[start_byte..cur.byte_offset()],
                line,
                col,
            });
            continue;
        }

        if c == '"' {
            cur.bump();
            consume_quoted(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: &src[start_byte..cur.byte_offset()],
                line,
                col,
            });
            continue;
        }

        if c == '\'' {
            // Lifetime/label vs. character literal: `'ident` not followed by
            // a closing quote is a lifetime.
            let is_lifetime = cur.peek(1).is_some_and(is_ident_start) && {
                let mut k = 2;
                while cur.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                cur.peek(k) != Some('\'')
            };
            cur.bump();
            if is_lifetime {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: &src[start_byte..cur.byte_offset()],
                    line,
                    col,
                });
            } else {
                consume_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: &src[start_byte..cur.byte_offset()],
                    line,
                    col,
                });
            }
            continue;
        }

        if c.is_ascii_digit() {
            // Numeric literal. Good enough for linting: digits, underscores,
            // radix/exponent letters, and a fractional part — but `1..2`
            // must leave the range dots alone, and a method call on a
            // literal (`1.max(2)`) must not swallow the dot.
            cur.bump();
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: &src[start_byte..cur.byte_offset()],
                line,
                col,
            });
            continue;
        }

        // Punctuation. `::` is the only multi-character token rules need.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "::",
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: &src[start_byte..cur.byte_offset()],
            line,
            col,
        });
    }

    out
}

/// Consumes the body and closing delimiter of a quoted literal, honouring
/// backslash escapes. The opening delimiter must already be consumed.
fn consume_quoted(cur: &mut Cursor<'_>, close: char) {
    while let Some(n) = cur.bump() {
        if n == '\\' {
            cur.bump();
        } else if n == close {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant::now() in a line comment
            /* HashMap::new() /* nested unwrap() */ still comment */
            let s = "Instant::now()";
            let r = r#"HashMap "quoted" unwrap"#;
            let b = b"SystemTime";
            let c = '"';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident"));
        for forbidden in ["Instant", "HashMap", "unwrap", "SystemTime", "now"] {
            assert!(!ids.contains(&forbidden), "{forbidden} leaked: {ids:?}");
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { 'x' ; x }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quote_in_char_does_not_derail() {
        let ids = idents(r"let q = '\''; after()");
        assert!(ids.contains(&"after"));
    }

    #[test]
    fn raw_identifier_is_bare_ident() {
        let ids = idents("let r#type = 1; r#match()");
        assert!(ids.contains(&"type"));
        assert!(ids.contains(&"match"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bc");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn numeric_range_keeps_dots() {
        let toks = lex("for i in 0..13_000 { x = 1.5e3; y = 1.max(2); }").tokens;
        assert!(toks.iter().any(|t| t.text == "1.5e3"));
        assert!(toks.iter().any(|t| t.text == "max"));
        let dots = toks.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 3, "{toks:?}"); // `..` is two dot puncts, `.max` one
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("Instant::now()").tokens;
        assert_eq!(toks[1].text, "::");
        assert_eq!(toks[1].kind, TokKind::Punct);
    }

    #[test]
    fn comment_line_spans_are_recorded() {
        let lexed = lex("code();\n/* a\nb */\n// c\nmore();");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.comments[1].line, 4);
        assert_eq!(lexed.comments[1].end_line, 4);
    }
}
