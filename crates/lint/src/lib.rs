//! # sbqa-lint
//!
//! Workspace-aware static analysis that proves SbQA's determinism,
//! panic-freedom and unsafe-audit contracts at the *source* level, before a
//! golden test can catch the regression dynamically.
//!
//! The pipeline: [`lexer`] scans a file into identifier/punct/literal tokens
//! (string-, char-, comment- and raw-string-aware, so forbidden names inside
//! text never trip a rule); [`rules`] matches the repo's rule catalog
//! against the token stream under each file's [`rules::FileClass`];
//! [`pragma`] handles justified inline waivers; [`report`] renders
//! `file:line:col` diagnostics and the deterministic `--json` report that
//! `bench_results/LINT_baseline.json` pins.
//!
//! Run it as `cargo run -p sbqa-lint --release -- --deny-warnings` (the
//! `scripts/ci.sh` gate) or call [`lint_workspace`] in-process, which is what
//! the self-lint integration test does.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

use report::Report;

/// Lints every classifiable `.rs` file under the workspace `root`.
///
/// # Errors
///
/// Returns an error if a directory or file under `root` cannot be read.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (path, label, class) in workspace::discover(root)? {
        let source = fs::read_to_string(&path)?;
        let (findings, sites) = rules::check_file(&label, &source, &class);
        report.findings.extend(findings);
        report.suppressions.extend(sites);
        report.files_scanned += 1;
    }
    report.normalize();
    Ok(report)
}
