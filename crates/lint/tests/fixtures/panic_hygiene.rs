//! Fixture: panic-hygiene violations, plus the `#[cfg(test)]` exemption.

fn lookup(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn lookup2(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn boom() {
    panic!("should never happen");
}

fn later() {
    todo!()
}

fn never() {
    unimplemented!()
}

fn named_unwrap_is_not_a_call() {
    // A bare identifier `unwrap` without `.`/`(` context must not trip.
    let unwrap = 1;
    let _ = unwrap;
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_test_modules() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| w.expect("boom")).is_err());
    }
}
