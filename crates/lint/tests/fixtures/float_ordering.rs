//! Fixture: float-ordering violations.

fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn compare(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

fn total_is_fine(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}
