//! Fixture: wall-clock violations (positive cases).
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}

fn epoch() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

fn fine() {
    // Mentions of Instant::now() in a comment must not trip the rule.
    let s = "Instant::now() in a string must not trip the rule";
    let _ = s;
}
