//! Fixture: unseeded-rng violations.

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    0
}

fn os_seeded() {
    let _ = rand_chacha::ChaCha8Rng::from_entropy();
}

fn seeded_is_fine() {
    let _ = rand_chacha::ChaCha8Rng::seed_from_u64(42);
}
