//! Fixture: a pragma that suppresses nothing is a warn-level finding.

fn clean() -> u32 {
    // sbqa-lint: allow(wall-clock, "stale waiver: the call below was removed")
    1
}
