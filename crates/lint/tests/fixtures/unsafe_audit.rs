//! Fixture: unsafe-audit — blocks and impls need a SAFETY comment.

fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

struct Wrapper(u32);

unsafe impl Send for Wrapper {}

fn documented(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` points to a live, aligned u32.
    unsafe { *p }
}

struct Audited(u32);

// SAFETY: Audited owns only a plain integer; no thread affinity exists.
unsafe impl Send for Audited {}
