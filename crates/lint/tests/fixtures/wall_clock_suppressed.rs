//! Fixture: wall-clock violations under justified pragmas.
use std::time::Instant;

fn stamp() -> Instant {
    // sbqa-lint: allow(wall-clock, "measurement-only: the stamp never reaches allocation")
    Instant::now()
}

fn trailing() -> Instant {
    Instant::now() // sbqa-lint: allow(wall-clock, "measurement-only trailing form")
}
