//! Fixture: hash-collection violations. The `use` line itself is exempt —
//! only concrete type positions are contract sites.
use std::collections::HashMap;
use std::collections::HashSet;

struct State {
    index: HashMap<u64, u32>,
}

fn build() -> HashSet<u64> {
    HashSet::new()
}

fn documented() -> HashMap<u64, u32> {
    // sbqa-lint: allow(hash-collection, "point lookups only; never iterated")
    HashMap::new()
}
