//! Fixture: malformed pragmas are deny-level findings in their own right.

fn a() -> u32 {
    // sbqa-lint: allow(wall-clock)
    1
}

fn b() -> u32 {
    // sbqa-lint: allow(no-such-rule, "justified against a rule that does not exist")
    2
}

fn c() -> u32 {
    // sbqa-lint: allow(wall-clock, "")
    3
}

fn d() -> u32 {
    // sbqa-lint: permit(wall-clock, "wrong verb")
    4
}
