//! Tokenizer property tests: forbidden names embedded in string literals,
//! raw strings or comments must never reach the rule matchers, and the lexer
//! must stay total (no panics, sane line numbers) on arbitrary input.

use proptest::prelude::*;

use sbqa_lint::lexer::lex;
use sbqa_lint::rules::{check_file, FileClass, FileKind};

/// Snippets that would each be a deny finding if they appeared as code in a
/// deterministic, panic-free crate.
const FORBIDDEN: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "HashMap::new()",
    "HashSet::new()",
    "thread_rng()",
    "from_entropy()",
    "x.unwrap()",
    "x.expect(\\\"msg\\\")",
    "panic!(\\\"boom\\\")",
    "todo!()",
    "a.partial_cmp(&b)",
];

/// The same snippets without inner escapes, for comment/raw-string contexts
/// where no escaping is needed.
const FORBIDDEN_PLAIN: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "HashMap::new()",
    "HashSet::new()",
    "thread_rng()",
    "from_entropy()",
    "x.unwrap()",
    "x.expect(\"msg\")",
    "panic!(\"boom\")",
    "todo!()",
    "a.partial_cmp(&b)",
];

fn core_lib() -> FileClass {
    FileClass {
        crate_name: "core".to_string(),
        kind: FileKind::Library,
    }
}

/// Wraps a forbidden snippet in a non-code context chosen by `context`.
fn embed(context: usize, snippet_escaped: &str, snippet_plain: &str) -> String {
    match context % 4 {
        0 => format!("let s = \"{snippet_escaped}\";\n"),
        1 => format!("let s = r#\"{snippet_plain}\"#;\n"),
        2 => format!("// comment: {snippet_plain}\n"),
        _ => format!("/* block {snippet_plain} still a comment */ let y = 1;\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn forbidden_names_in_text_never_trip(
        picks in proptest::collection::vec((0usize..4, 0usize..11), 1..12),
    ) {
        let mut src = String::from("fn fixture() {\n");
        for &(context, idx) in &picks {
            src.push_str("    ");
            src.push_str(&embed(context, FORBIDDEN[idx], FORBIDDEN_PLAIN[idx]));
        }
        src.push_str("}\n");
        let (findings, _) = check_file("prop.rs", &src, &core_lib());
        prop_assert!(
            findings.is_empty(),
            "text-only mentions produced findings in:\n{}\n{:?}",
            src,
            findings
        );
    }

    #[test]
    fn the_same_snippets_as_code_always_trip(
        idx in 0usize..11,
    ) {
        let src = format!("fn fixture() {{\n    let _ = {};\n}}\n", FORBIDDEN_PLAIN[idx]);
        let (findings, _) = check_file("prop.rs", &src, &core_lib());
        prop_assert!(
            !findings.is_empty(),
            "snippet `{}` as code produced no finding",
            FORBIDDEN_PLAIN[idx]
        );
    }

    #[test]
    fn lexer_is_total_on_arbitrary_printable_input(
        bytes in proptest::collection::vec(0u8..96, 0..200),
    ) {
        // Map into printable ASCII (space..=DEL-1) plus newlines.
        let src: String = bytes
            .iter()
            .map(|&b| if b % 13 == 0 { '\n' } else { (b' ' + (b % 95)) as char })
            .collect();
        let lexed = lex(&src);
        let line_count = src.lines().count() as u32 + 1;
        let mut prev = (0u32, 0u32);
        for tok in &lexed.tokens {
            prop_assert!(tok.line >= 1 && tok.line <= line_count);
            prop_assert!(tok.col >= 1);
            prop_assert!((tok.line, tok.col) > prev, "token positions strictly increase");
            prev = (tok.line, tok.col);
            prop_assert!(!tok.text.is_empty());
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.end_line >= c.line);
        }
    }
}
