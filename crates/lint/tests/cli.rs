//! End-to-end tests of the `sbqa-lint` binary: exit codes, `--json` output
//! and the acceptance scenario from the issue — an `Instant::now()` injected
//! into `crates/core/src` must fail the gate.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sbqa-lint"))
}

/// Builds a miniature workspace under `target/tmp` with one deterministic
/// crate and returns its root.
fn scratch_workspace(name: &str, core_src: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/core/src");
    if root.exists() {
        fs::remove_dir_all(&root).expect("stale scratch removed");
    }
    fs::create_dir_all(&src_dir).expect("scratch tree created");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/core\"]\n",
    )
    .expect("root manifest written");
    fs::write(src_dir.join("lib.rs"), core_src).expect("source written");
    root
}

#[test]
fn injected_instant_now_in_core_fails_the_gate() {
    let root = scratch_workspace(
        "lint-cli-dirty",
        "//! Scratch crate.\npub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let output = bin()
        .arg("--root")
        .arg(&root)
        .arg("--deny-warnings")
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:3:") && stdout.contains("wall-clock"),
        "diagnostic names the injected site: {stdout}"
    );
}

#[test]
fn clean_workspace_exits_zero() {
    let root = scratch_workspace(
        "lint-cli-clean",
        "//! Scratch crate.\npub fn double(x: u64) -> u64 {\n    x * 2\n}\n",
    );
    let output = bin()
        .arg("--root")
        .arg(&root)
        .arg("--deny-warnings")
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
}

#[test]
fn json_report_is_deterministic_and_parseable() {
    let root = scratch_workspace(
        "lint-cli-json",
        "//! Scratch crate.\npub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let run = || {
        let output = bin()
            .arg("--root")
            .arg(&root)
            .arg("--json")
            .output()
            .expect("binary runs");
        String::from_utf8(output.stdout).expect("utf8 json")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "repeated runs are byte-identical");
    assert!(first.contains("\"schema\": \"sbqa-lint/v1\""));
    assert!(first.contains("\"rule\": \"wall-clock\""));
    assert!(first.contains("\"deny_findings\": 1"));
    assert_balanced_json(&first);
}

/// Structural JSON sanity: braces/brackets balance outside strings and every
/// string literal closes (the vendored serde stub cannot parse into a
/// generic `Value`, so the check is hand-rolled like the writer itself).
fn assert_balanced_json(text: &str) {
    let mut depth: i64 = 0;
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in JSON report");
            }
            '"' => loop {
                match chars.next() {
                    Some('\\') => {
                        chars.next();
                    }
                    Some('"') => break,
                    Some(_) => {}
                    None => panic!("unterminated string in JSON report"),
                }
            },
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON report");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let output = bin().arg("--frobnicate").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn list_rules_prints_the_catalog() {
    let output = bin().arg("--list-rules").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in ["wall-clock", "panic-hygiene", "unsafe-audit", "bad-pragma"] {
        assert!(stdout.contains(rule), "catalog lists {rule}: {stdout}");
    }
}
