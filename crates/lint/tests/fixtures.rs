//! Fixture-driven rule tests: every rule gets a positive case (the seeded
//! violation is flagged), a suppressed case (a justified pragma converts the
//! finding into a documented suppression site) and an exempt-path case (the
//! same source under a `tests/` classification reports nothing).
//!
//! The fixture sources live in `tests/fixtures/` — a directory the workspace
//! walker never descends into, so the deliberately-violating inputs cannot
//! leak into the self-lint gate.

use sbqa_lint::report::{Finding, Severity, SuppressionSite};
use sbqa_lint::rules::{check_file, FileClass, FileKind};

fn lib(crate_name: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::Library,
    }
}

fn test_kind(crate_name: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::Test,
    }
}

fn run(source: &str, class: &FileClass) -> (Vec<Finding>, Vec<SuppressionSite>) {
    check_file("fixture.rs", source, class)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_positive() {
    let src = include_str!("fixtures/wall_clock.rs");
    let (findings, _) = run(src, &lib("core"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["wall-clock", "wall-clock"],
        "Instant::now() and SystemTime are flagged; comment/string mentions are not: {findings:?}"
    );
    assert_eq!(findings[0].line, 5, "Instant::now() call site");
    assert_eq!(findings[1].line, 9, "SystemTime::now() call site");
}

#[test]
fn wall_clock_exempt_in_tests_dir() {
    let src = include_str!("fixtures/wall_clock.rs");
    let (findings, _) = run(src, &test_kind("core"));
    assert!(findings.is_empty(), "tests/ are exempt: {findings:?}");
}

#[test]
fn wall_clock_exempt_outside_deterministic_crates() {
    let src = include_str!("fixtures/wall_clock.rs");
    let (findings, _) = run(src, &lib("metrics"));
    assert!(
        findings.is_empty(),
        "metrics is not a deterministic crate: {findings:?}"
    );
}

#[test]
fn wall_clock_suppressed() {
    let src = include_str!("fixtures/wall_clock_suppressed.rs");
    let (findings, sites) = run(src, &lib("core"));
    assert!(findings.is_empty(), "both forms suppressed: {findings:?}");
    assert_eq!(sites.len(), 2, "standalone + trailing pragma both counted");
    assert!(sites
        .iter()
        .all(|s| s.suppression.rule == "wall-clock" && !s.suppression.justification.is_empty()));
}

#[test]
fn hash_collection_positive_skips_use_lines() {
    let src = include_str!("fixtures/hash_collection.rs");
    let (findings, sites) = run(src, &lib("sim"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["hash-collection"; 4],
        "the field type, both HashSet positions and `documented`'s return type \
         are flagged; the pragma covers only its target line (the constructor): {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.line != 3 && f.line != 4),
        "use lines exempt"
    );
    assert_eq!(
        sites.len(),
        1,
        "documented constructor counted as a suppression site"
    );
}

#[test]
fn unseeded_rng_positive() {
    let src = include_str!("fixtures/unseeded_rng.rs");
    let (findings, _) = run(src, &lib("boinc"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["unseeded-rng", "unseeded-rng"],
        "thread_rng and from_entropy flagged, seed_from_u64 not: {findings:?}"
    );
}

#[test]
fn unseeded_rng_applies_in_every_library_crate() {
    let src = include_str!("fixtures/unseeded_rng.rs");
    let (findings, _) = run(src, &lib("metrics"));
    assert_eq!(
        findings.len(),
        2,
        "rng hygiene is workspace-wide: {findings:?}"
    );
}

#[test]
fn panic_hygiene_positive_with_cfg_test_exemption() {
    let src = include_str!("fixtures/panic_hygiene.rs");
    let (findings, _) = run(src, &lib("core"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec![
            "panic-hygiene",
            "panic-hygiene",
            "panic-hygiene",
            "panic-hygiene",
            "panic-hygiene"
        ],
        "unwrap/expect/panic!/todo!/unimplemented! flagged once each; the \
         #[cfg(test)] module and the bare `unwrap` identifier are exempt: {findings:?}"
    );
    let last_flagged = findings.iter().map(|f| f.line).max().unwrap();
    assert!(
        last_flagged < 28,
        "nothing inside the #[cfg(test)] module is flagged: {findings:?}"
    );
}

#[test]
fn panic_hygiene_exempt_outside_panic_free_crates() {
    let src = include_str!("fixtures/panic_hygiene.rs");
    let (findings, _) = run(src, &lib("sim"));
    assert!(
        findings.is_empty(),
        "sim may panic in library code: {findings:?}"
    );
}

#[test]
fn float_ordering_positive() {
    let src = include_str!("fixtures/float_ordering.rs");
    let (findings, _) = run(src, &lib("baselines"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["float-ordering", "float-ordering"],
        "both partial_cmp call forms flagged, total_cmp not: {findings:?}"
    );
}

#[test]
fn unsafe_audit_positive() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    let (findings, _) = run(src, &lib("core"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["unsafe-audit", "unsafe-audit"],
        "undocumented block + undocumented impl flagged; SAFETY-commented ones not: {findings:?}"
    );
}

#[test]
fn unsafe_audit_holds_even_in_tests() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    let (findings, _) = run(src, &test_kind("core"));
    assert_eq!(
        findings.len(),
        2,
        "unsafe-audit is the one rule tests are not exempt from: {findings:?}"
    );
}

#[test]
fn bad_pragmas_are_deny_findings() {
    let src = include_str!("fixtures/bad_pragma.rs");
    let (findings, sites) = run(src, &lib("core"));
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["bad-pragma", "bad-pragma", "bad-pragma", "bad-pragma"],
        "missing justification, unknown rule, empty justification, wrong verb: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.severity == Severity::Deny));
    assert!(
        sites.is_empty(),
        "a malformed pragma never counts as a suppression"
    );
}

#[test]
fn unused_suppression_is_a_warning() {
    let src = include_str!("fixtures/unused_suppression.rs");
    let (findings, sites) = run(src, &lib("core"));
    assert_eq!(rules_of(&findings), vec!["unused-suppression"]);
    assert_eq!(findings[0].severity, Severity::Warn);
    assert!(sites.is_empty());
}

#[test]
fn every_fixture_rule_is_in_the_catalog() {
    for name in [
        "wall-clock",
        "hash-collection",
        "unseeded-rng",
        "panic-hygiene",
        "float-ordering",
        "unsafe-audit",
        "bad-pragma",
        "unused-suppression",
    ] {
        assert!(
            sbqa_lint::rules::rule(name).is_some(),
            "missing rule {name}"
        );
    }
}
