//! The workspace must lint clean — this is the same invariant the
//! `scripts/ci.sh` gate enforces, checked in-process so `cargo test` alone
//! catches a regression.

use std::path::Path;

use sbqa_lint::lint_workspace;
use sbqa_lint::report::Severity;

#[test]
fn workspace_is_clean_including_warnings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace is readable");
    assert!(report.files_scanned > 100, "walker found the workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(sbqa_lint::report::Finding::render)
        .collect();
    assert_eq!(
        report.count(Severity::Deny),
        0,
        "deny findings:\n{}",
        rendered.join("\n")
    );
    assert_eq!(
        report.count(Severity::Warn),
        0,
        "warn findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        !report.suppressions.is_empty(),
        "the documented contract sites are visible to the walker"
    );
}

#[test]
fn every_suppression_is_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace is readable");
    for site in &report.suppressions {
        assert!(
            site.suppression.justification.len() >= 10,
            "{}:{} has a throwaway justification: {:?}",
            site.path,
            site.suppression.comment_line,
            site.suppression.justification
        );
    }
}
