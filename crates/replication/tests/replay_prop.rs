//! Property tests of the replication contract: for any churn history and any
//! snapshot cut point, **snapshot + delta replay ≡ the live registry** —
//! same slab iteration order, same online counts, same candidate answers —
//! and the reconstruction does not depend on where the snapshot was cut.

use proptest::prelude::*;

use sbqa_core::{ProviderRegistry, RegistryDelta};
use sbqa_replication::{registry_digest, DeltaOp, SharedDeltaLog};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, ProviderId, Query, QueryId,
};
use serde::{Deserialize, Serialize};

/// Capability classes the generated populations draw from.
const CLASSES: u8 = 5;
/// Provider id space; small so churn revisits the same providers.
const IDS: u64 = 24;

fn capability_set(mask: u8) -> CapabilitySet {
    let mask = if mask & 0x1F == 0 { 1 } else { mask };
    CapabilitySet::from_capabilities(
        (0..CLASSES)
            .filter(|class| mask & (1 << class) != 0)
            .map(Capability::new),
    )
}

/// One raw churn op: `(selector, provider id, mask/load byte, flag)`.
type RawOp = (u8, u64, u8, bool);

/// Applies one decoded op to a registry (the live one, or nothing — replay
/// reaches the replica through the delta log instead).
fn apply_op(registry: &mut ProviderRegistry, op: RawOp) {
    let (selector, id, byte, flag) = op;
    let id = ProviderId::new(id % IDS);
    match selector % 4 {
        0 => {
            registry.register(id, capability_set(byte), 1.0 + f64::from(byte % 4));
        }
        1 => {
            registry.unregister(id);
        }
        2 => {
            // Unknown providers are an error at the API; not a mutation.
            let _ = registry.set_online(id, flag);
        }
        _ => {
            let _ = registry.update_load(id, f64::from(byte) * 0.25, usize::from(byte % 8));
        }
    }
}

/// The state probes replay must reproduce: slab iteration rows (order
/// included), online tally, and candidate answers per class.
fn observe(registry: &mut ProviderRegistry) -> (Vec<String>, usize, Vec<Vec<u64>>) {
    let rows: Vec<String> = registry.iter().map(|s| format!("{s:?}")).collect();
    let online = registry.online_count();
    let candidates: Vec<Vec<u64>> = (0..CLASSES)
        .map(|class| {
            let query = Query::requiring(
                QueryId::new(1),
                ConsumerId::new(1),
                CapabilityRequirement::All(CapabilitySet::singleton(Capability::new(class))),
            )
            .build();
            registry
                .candidates(&query)
                .iter()
                .map(|p| p.id.raw())
                .collect()
        })
        .collect();
    (rows, online, candidates)
}

/// Replays the log tail after `watermark` into `replica`.
fn replay(replica: &mut ProviderRegistry, log: &SharedDeltaLog, watermark: u64) {
    let records = log.collect_after(watermark).expect("log never pruned here");
    for record in records {
        if let DeltaOp::Mutation(delta) = record.op {
            delta
                .apply(replica)
                .expect("a recorded mutation replays cleanly");
        }
    }
}

proptest! {
    #[test]
    fn snapshot_plus_replay_equals_live_state(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..IDS, 0u8..=255, proptest::bool::ANY),
            1..60,
        ),
        cut_fraction in 0u8..=100,
    ) {
        let log = SharedDeltaLog::new();
        let mut live = ProviderRegistry::new();
        live.set_delta_sink(Box::new(log.clone()));

        // Apply the prefix, cut a snapshot, then apply the suffix.
        let cut = ops.len() * usize::from(cut_fraction) / 100;
        for &op in &ops[..cut] {
            apply_op(&mut live, op);
        }
        // Clones never inherit the sink: the snapshot is a passive fork.
        let snapshot = live.clone();
        prop_assert!(!snapshot.delta_sink_attached());
        let watermark = log.last_sequence();
        for &op in &ops[cut..] {
            apply_op(&mut live, op);
        }

        // Replay the tail into the snapshot and compare against the live
        // registry, byte for byte.
        let mut replica = snapshot;
        replay(&mut replica, &log, watermark);
        prop_assert_eq!(registry_digest(&replica), registry_digest(&live));
        let (live_rows, live_online, live_candidates) = observe(&mut live);
        let (replica_rows, replica_online, replica_candidates) = observe(&mut replica);
        prop_assert_eq!(replica_rows, live_rows);
        prop_assert_eq!(replica_online, live_online);
        prop_assert_eq!(replica_candidates, live_candidates);
    }

    #[test]
    fn replay_is_insensitive_to_the_cut_point(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..IDS, 0u8..=255, proptest::bool::ANY),
            2..50,
        ),
        early_fraction in 0u8..=50,
        late_fraction in 51u8..=100,
    ) {
        let log = SharedDeltaLog::new();
        let mut live = ProviderRegistry::new();
        live.set_delta_sink(Box::new(log.clone()));

        let early_cut = ops.len() * usize::from(early_fraction) / 100;
        let late_cut = ops.len() * usize::from(late_fraction) / 100;

        let mut early_snapshot = None;
        let mut late_snapshot = None;
        for (position, &op) in ops.iter().enumerate() {
            if position == early_cut {
                early_snapshot = Some((live.clone(), log.last_sequence()));
            }
            if position == late_cut {
                late_snapshot = Some((live.clone(), log.last_sequence()));
            }
            apply_op(&mut live, op);
        }
        let (mut early_replica, early_mark) =
            early_snapshot.unwrap_or_else(|| (ProviderRegistry::new(), 0));
        let (mut late_replica, late_mark) =
            late_snapshot.unwrap_or_else(|| (ProviderRegistry::new(), 0));

        replay(&mut early_replica, &log, early_mark);
        replay(&mut late_replica, &log, late_mark);
        let reference = registry_digest(&live);
        prop_assert_eq!(registry_digest(&early_replica), reference);
        prop_assert_eq!(registry_digest(&late_replica), reference);
    }

    #[test]
    fn recorded_deltas_round_trip_through_serde(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..IDS, 0u8..=255, proptest::bool::ANY),
            1..30,
        ),
    ) {
        let log = SharedDeltaLog::new();
        let mut live = ProviderRegistry::new();
        live.set_delta_sink(Box::new(log.clone()));
        for &op in &ops {
            apply_op(&mut live, op);
        }
        let records = log.collect_after(0).expect("nothing pruned");
        for record in records {
            if let DeltaOp::Mutation(delta) = record.op {
                let value = delta.to_value();
                let back = RegistryDelta::from_value(&value).expect("round trip");
                prop_assert_eq!(back, delta);
            }
        }
    }
}
