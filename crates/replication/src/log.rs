//! The append-only registry delta log.
//!
//! One log per primary shard. The shard's `ProviderRegistry` feeds it
//! through the [`sbqa_core::DeltaSink`] hook, assigning every effective
//! mutation a monotonically increasing sequence number; checkpoints append a
//! [`DeltaOp::SnapshotMark`] so a cut point is totally ordered against the
//! mutations around it. Records are serde round-trippable: a log shipped
//! through serialization replays to the same state as the in-memory one.

use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use sbqa_core::{DeltaSink, RegistryDelta};

/// One entry of the log: what happened, and its position in the total order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// Position in the log's total order; starts at 1, increases by exactly
    /// 1 per appended record.
    pub sequence: u64,
    /// The recorded event.
    pub op: DeltaOp,
}

/// The payload of a [`DeltaRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// An effective registry mutation, as emitted by the primary.
    Mutation(RegistryDelta),
    /// A checkpoint was cut here: every mutation at or before this sequence
    /// is contained in the checkpoint's state, everything after is tail.
    SnapshotMark,
}

/// An append-only, monotonically-sequenced delta log with front pruning.
///
/// Retained records are contiguous: `records[i].sequence` is
/// `first_retained + i`, so tail reads are a slice, not a scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeltaLog {
    records: Vec<DeltaRecord>,
    /// Sequence of the most recently appended record (0 = nothing ever).
    appended: u64,
    /// Records dropped off the front by [`DeltaLog::prune_through`].
    pruned: u64,
    /// Snapshot marks ever appended.
    marks: u64,
}

impl DeltaLog {
    /// Creates an empty log whose first append gets sequence 1.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a mutation record, returning its sequence.
    pub fn append_mutation(&mut self, delta: RegistryDelta) -> u64 {
        self.append(DeltaOp::Mutation(delta))
    }

    /// Appends a snapshot mark, returning its sequence. Everything at or
    /// before the returned sequence is promised to be inside the checkpoint
    /// cut alongside this mark.
    pub fn mark_snapshot(&mut self) -> u64 {
        self.marks += 1;
        self.append(DeltaOp::SnapshotMark)
    }

    fn append(&mut self, op: DeltaOp) -> u64 {
        self.appended += 1;
        self.records.push(DeltaRecord {
            sequence: self.appended,
            op,
        });
        self.appended
    }

    /// Sequence of the most recently appended record; 0 if none ever.
    #[must_use]
    pub fn last_sequence(&self) -> u64 {
        self.appended
    }

    /// Sequence of the oldest retained record, or `None` if the log holds
    /// nothing (empty or fully pruned).
    #[must_use]
    pub fn first_retained(&self) -> Option<u64> {
        self.records.first().map(|record| record.sequence)
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.records.len()
    }

    /// Snapshot marks appended over the log's lifetime.
    #[must_use]
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// The retained records with sequence strictly greater than `after`, or
    /// `None` if pruning has already dropped part of that range — the signal
    /// that a reader at watermark `after` can no longer be caught up from
    /// this log and needs a fresh checkpoint.
    #[must_use]
    pub fn tail_after(&self, after: u64) -> Option<&[DeltaRecord]> {
        if after < self.pruned {
            return None;
        }
        let skip = usize::try_from(after - self.pruned).ok()?;
        self.records.get(skip.min(self.records.len())..)
    }

    /// Drops every record with sequence at or below `through` (typically a
    /// checkpoint watermark: the checkpoint now carries that prefix).
    pub fn prune_through(&mut self, through: u64) {
        let keep = self
            .records
            .iter()
            .position(|record| record.sequence > through)
            .unwrap_or(self.records.len());
        self.records.drain(..keep);
        self.pruned = self.pruned.max(through.min(self.appended));
    }

    /// All retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[DeltaRecord] {
        &self.records
    }
}

/// A cloneable handle on a shared [`DeltaLog`]: the form the registry's
/// delta hook consumes (the registry owns one erased handle, the standby and
/// the orchestrator hold others).
///
/// Lock poisoning is absorbed with `PoisonError::into_inner` rather than a
/// panic: the log's state is a plain `Vec` append, valid after any
/// interrupted writer.
#[derive(Debug, Clone, Default)]
pub struct SharedDeltaLog {
    inner: Arc<Mutex<DeltaLog>>,
}

impl SharedDeltaLog {
    /// Creates a handle on a fresh, empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` under the log lock.
    fn with<T>(&self, f: impl FnOnce(&mut DeltaLog) -> T) -> T {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Appends a mutation record, returning its sequence.
    pub fn append_mutation(&self, delta: RegistryDelta) -> u64 {
        self.with(|log| log.append_mutation(delta))
    }

    /// Appends a snapshot mark, returning its sequence.
    pub fn mark_snapshot(&self) -> u64 {
        self.with(DeltaLog::mark_snapshot)
    }

    /// Sequence of the most recently appended record; 0 if none ever.
    #[must_use]
    pub fn last_sequence(&self) -> u64 {
        self.with(|log| log.last_sequence())
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.with(|log| log.depth())
    }

    /// Snapshot marks appended over the log's lifetime.
    #[must_use]
    pub fn marks(&self) -> u64 {
        self.with(|log| log.marks())
    }

    /// Clones out the records with sequence strictly greater than `after`;
    /// `None` if that range has been partially pruned (the reader needs a
    /// fresh checkpoint instead).
    #[must_use]
    pub fn collect_after(&self, after: u64) -> Option<Vec<DeltaRecord>> {
        self.with(|log| log.tail_after(after).map(<[DeltaRecord]>::to_vec))
    }

    /// Drops every record with sequence at or below `through`.
    pub fn prune_through(&self, through: u64) {
        self.with(|log| log.prune_through(through));
    }
}

impl DeltaSink for SharedDeltaLog {
    fn record(&mut self, delta: &RegistryDelta) {
        self.append_mutation(*delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbqa_types::ProviderId;

    fn load(id: u64, queue: usize) -> RegistryDelta {
        RegistryDelta::UpdateLoad {
            id: ProviderId::new(id),
            utilization: queue as f64 * 0.5,
            queue_length: queue,
        }
    }

    #[test]
    fn sequences_are_dense_and_monotonic() {
        let mut log = DeltaLog::new();
        assert_eq!(log.last_sequence(), 0);
        assert_eq!(log.first_retained(), None);
        for i in 1..=5u64 {
            assert_eq!(log.append_mutation(load(i, 1)), i);
        }
        assert_eq!(log.mark_snapshot(), 6);
        assert_eq!(log.last_sequence(), 6);
        assert_eq!(log.depth(), 6);
        assert_eq!(log.marks(), 1);
        let seqs: Vec<u64> = log.records().iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn tail_and_prune_respect_the_watermark() {
        let mut log = DeltaLog::new();
        for i in 1..=8u64 {
            log.append_mutation(load(i, i as usize));
        }
        assert_eq!(log.tail_after(0).map(<[DeltaRecord]>::len), Some(8));
        assert_eq!(log.tail_after(5).map(<[DeltaRecord]>::len), Some(3));
        assert_eq!(log.tail_after(8).map(<[DeltaRecord]>::len), Some(0));
        assert_eq!(log.tail_after(99).map(<[DeltaRecord]>::len), Some(0));

        log.prune_through(5);
        assert_eq!(log.depth(), 3);
        assert_eq!(log.first_retained(), Some(6));
        // A reader at watermark >= 5 can still catch up…
        assert_eq!(log.tail_after(5).map(<[DeltaRecord]>::len), Some(3));
        assert_eq!(log.tail_after(6).map(<[DeltaRecord]>::len), Some(2));
        // …a reader behind the pruned prefix cannot.
        assert_eq!(log.tail_after(4), None);
    }

    #[test]
    fn shared_log_collects_what_the_sink_recorded() {
        let shared = SharedDeltaLog::new();
        let mut sink: Box<dyn DeltaSink> = Box::new(shared.clone());
        sink.record(&load(1, 2));
        sink.record(&load(2, 4));
        assert_eq!(shared.last_sequence(), 2);
        let tail = shared.collect_after(1).expect("contiguous");
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].sequence, 2);
        assert_eq!(tail[0].op, DeltaOp::Mutation(load(2, 4)));
    }

    #[test]
    fn log_round_trips_through_serde() {
        let mut log = DeltaLog::new();
        log.append_mutation(load(3, 7));
        log.mark_snapshot();
        log.prune_through(1);
        let back = DeltaLog::from_value(&log.to_value()).expect("round trip");
        assert_eq!(back.last_sequence(), log.last_sequence());
        assert_eq!(back.depth(), log.depth());
        assert_eq!(back.records(), log.records());
        assert_eq!(back.tail_after(0), log.tail_after(0));
    }
}
