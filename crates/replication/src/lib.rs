//! # sbqa-replication
//!
//! Crash-tolerance for the mediator: an append-only, monotonically-sequenced
//! log of registry mutations, a standby that mirrors a live shard by
//! snapshot + replay, and the handoff package that moves providers between
//! shards without re-registering the world.
//!
//! ## Why replay can promise byte-identity
//!
//! Every decision the SbQA mediator makes is a pure function of its state:
//! the provider registry (candidates enumerate in ascending provider id by
//! construction), the satisfaction registry (ω per pair) and the allocator's
//! RNG position. All three are reproducible:
//!
//! * registry state replays from the [delta log](log::DeltaLog) — the
//!   emission rule mirrors the mutation-stamp rule one-for-one, so a replica
//!   that applies the stream performs exactly the primary's mutations;
//! * the allocator forks ([`sbqa_core::QueryAllocator::fork`]) with its RNG
//!   stream position intact;
//! * satisfaction and RNG state *between* checkpoint and crash depend on the
//!   queries mediated in that window — a starved query consumes no RNG, a
//!   mediated one consumes draws proportional to `k` — so the standby keeps
//!   a [query journal](standby::StandbyShard::observe_query) and, at
//!   promotion, replays deltas and queries interleaved by log watermark: the
//!   exact order the primary saw them.
//!
//! After promotion the standby's mediator is in the primary's precise
//! pre-crash state, and the decision stream continues byte-identically (the
//! service crate's failover tests and `scenario_failover` pin this on seed
//! 42).
//!
//! ## Sequence and epoch invariants
//!
//! Log sequences start at 1 and increase by exactly 1 per appended record —
//! including [`DeltaOp::SnapshotMark`]s, which occupy a sequence so a
//! checkpoint's cut point is totally ordered against mutations. A standby
//! tracks the last sequence it applied and refuses gaps: a pruned-past-its-
//! watermark log is reported as an error, never silently skipped. One
//! checkpoint + contiguous tail is therefore sufficient *and necessary* to
//! reconstruct the primary.

pub mod handoff;
pub mod log;
pub mod standby;

pub use handoff::HandoffPackage;
pub use log::{DeltaLog, DeltaOp, DeltaRecord, SharedDeltaLog};
pub use standby::{JournalEntry, ReplayReport, StandbyShard};

use sbqa_core::{Mediator, RegistryDelta};
use sbqa_types::SbqaResult;

/// Counters describing one shard's replication machinery, surfaced through
/// the service's `ShardReport` tables next to the cache and latency rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationStats {
    /// Records currently retained in the shard's delta log.
    pub log_depth: usize,
    /// Highest sequence ever appended to the log.
    pub last_appended: u64,
    /// Highest sequence the standby has applied to its mirror.
    pub last_applied: u64,
    /// `last_appended - last_applied`: how far the standby trails the log.
    pub replay_lag: u64,
    /// Mutation records the standby holds beyond its checkpoint.
    pub tail_depth: usize,
    /// Queries journaled since the last checkpoint.
    pub journal_depth: usize,
    /// Checkpoints installed into the standby over its lifetime.
    pub checkpoints: u64,
    /// Promotions this shard slot has survived.
    pub promotions: u64,
}

impl ReplicationStats {
    /// Folds another shard's counters into a service-wide aggregate: depths
    /// sum, sequence high-water marks and lag take the maximum (the
    /// service-level lag is its worst shard's lag).
    pub fn merge(&mut self, other: &ReplicationStats) {
        self.log_depth += other.log_depth;
        self.last_appended = self.last_appended.max(other.last_appended);
        self.last_applied = self.last_applied.max(other.last_applied);
        self.replay_lag = self.replay_lag.max(other.replay_lag);
        self.tail_depth += other.tail_depth;
        self.journal_depth += other.journal_depth;
        self.checkpoints += other.checkpoints;
        self.promotions += other.promotions;
    }
}

/// Replays one registry delta through the mediator-level mutators, so the
/// side effects beyond the registry match the primary's ingest path:
/// `Register` also (idempotently) registers the provider's satisfaction
/// tracker, exactly as [`Mediator::register_provider`] does live; the other
/// three touch the registry alone.
///
/// # Errors
///
/// Propagates the registry's [`sbqa_types::SbqaError::UnknownProvider`] when
/// the delta addresses a provider the mediator does not know — the
/// out-of-sync signal of a corrupt or misrouted stream.
pub fn apply_delta(mediator: &mut Mediator, delta: &RegistryDelta) -> SbqaResult<()> {
    match *delta {
        RegistryDelta::Register {
            id,
            capabilities,
            capacity,
        } => {
            mediator.register_provider(id, capabilities, capacity);
            Ok(())
        }
        RegistryDelta::Unregister { id } => {
            if mediator.unregister_provider(id) {
                Ok(())
            } else {
                Err(sbqa_types::SbqaError::UnknownProvider { provider: id })
            }
        }
        RegistryDelta::SetOnline { id, online } => mediator.set_provider_online(id, online),
        RegistryDelta::UpdateLoad {
            id,
            utilization,
            queue_length,
        } => mediator.update_provider_load(id, utilization, queue_length),
    }
}

/// Order-sensitive digest of a registry's replicated state: the slab rows in
/// slot order plus the online tally, folded through FNV-1a over the exact
/// `Debug` rendering (which round-trips `f64` values). Two registries with
/// equal digests agree on membership, slab layout, load columns and online
/// flags — the byte-identity the standby's mirror is held to.
#[must_use]
pub fn registry_digest(registry: &sbqa_core::ProviderRegistry) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for snapshot in registry.iter() {
        fold(format!("{snapshot:?};").as_bytes());
    }
    fold(format!("online={}", registry.online_count()).as_bytes());
    hash
}
