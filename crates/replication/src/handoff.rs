//! Delta-driven shard handoff.
//!
//! Re-routing a provider range to another shard — because the service grew
//! or shrank its shard count — must not "re-register the world": a freshly
//! registered provider would come back online, idle and satisfaction-blank,
//! erasing exactly the state the mediator is trusted to keep. A
//! [`HandoffPackage`] instead ships, per provider:
//!
//! * a snapshot expanded into the **same delta vocabulary the log uses**
//!   (`Register` + `UpdateLoad` + `SetOnline` reproduce the full column
//!   state, including offline providers), and
//! * the provider's satisfaction tracker, transplanted window-intact;
//!
//! plus any tail deltas that arrived after the snapshots were cut, replayed
//! in log order on top. Applying a package to a destination mediator leaves
//! every shipped provider byte-identical to its source-shard state.

use sbqa_core::{Mediator, ProviderSnapshot, RegistryDelta};
use sbqa_satisfaction::ProviderSatisfaction;
use sbqa_types::SbqaResult;

use crate::apply_delta;

/// A batch of providers (snapshots + satisfaction trackers) and tail deltas
/// being moved to one destination shard.
#[derive(Debug, Default)]
pub struct HandoffPackage {
    providers: Vec<(ProviderSnapshot, Option<ProviderSatisfaction>)>,
    tail: Vec<RegistryDelta>,
}

impl HandoffPackage {
    /// Creates an empty package.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a provider: its full registry snapshot and, if the source shard
    /// tracked one, its satisfaction tracker (extracted with
    /// [`sbqa_satisfaction::SatisfactionRegistry::extract_provider`]).
    pub fn push_provider(
        &mut self,
        snapshot: ProviderSnapshot,
        satisfaction: Option<ProviderSatisfaction>,
    ) {
        self.providers.push((snapshot, satisfaction));
    }

    /// Appends a tail delta to replay after the snapshots (a mutation the
    /// source shard emitted after the snapshots were cut).
    pub fn push_delta(&mut self, delta: RegistryDelta) {
        self.tail.push(delta);
    }

    /// Providers carried by this package.
    #[must_use]
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Tail deltas carried by this package.
    #[must_use]
    pub fn delta_count(&self) -> usize {
        self.tail.len()
    }

    /// The delta sequence that reproduces `snapshot` on a registry that does
    /// not know the provider: register (online, idle), restore the load
    /// columns, then restore the online flag. The `SetOnline` entry is
    /// emitted even when the provider is online — a no-op toggle costs
    /// nothing and keeps the expansion shape uniform for tests and tools.
    #[must_use]
    pub fn snapshot_deltas(snapshot: &ProviderSnapshot) -> [RegistryDelta; 3] {
        [
            RegistryDelta::Register {
                id: snapshot.id,
                capabilities: snapshot.capabilities,
                capacity: snapshot.capacity,
            },
            RegistryDelta::UpdateLoad {
                id: snapshot.id,
                utilization: snapshot.utilization,
                queue_length: snapshot.queue_length,
            },
            RegistryDelta::SetOnline {
                id: snapshot.id,
                online: snapshot.online,
            },
        ]
    }

    /// Applies the package to a destination mediator: every provider is
    /// rebuilt through its snapshot deltas, its satisfaction tracker is
    /// adopted window-intact, and the tail deltas are replayed on top in
    /// order. Returns the number of deltas applied.
    ///
    /// # Errors
    ///
    /// Any delta-application error — in a correctly routed handoff the
    /// expansion cannot fail, so an error means the package was built
    /// against a different topology than it is being applied to.
    pub fn apply(self, mediator: &mut Mediator) -> SbqaResult<usize> {
        let mut applied = 0;
        for (snapshot, satisfaction) in self.providers {
            for delta in Self::snapshot_deltas(&snapshot) {
                apply_delta(mediator, &delta)?;
                applied += 1;
            }
            if let Some(tracker) = satisfaction {
                mediator
                    .satisfaction_mut()
                    .adopt_provider(snapshot.id, tracker);
            }
        }
        for delta in self.tail {
            apply_delta(mediator, &delta)?;
            applied += 1;
        }
        Ok(applied)
    }
}
