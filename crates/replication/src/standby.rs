//! The standby: a mirror of a live mediator shard, promotable on crash.
//!
//! A standby owns three things:
//!
//! * a **checkpoint** — the primary's forked allocator (RNG position
//!   intact), provider registry and satisfaction registry, frozen at a log
//!   watermark;
//! * a **mirror** — a lockstep registry replica that applies every delta as
//!   it is observed, proving at any instant that snapshot + replay equals
//!   the live registry (and measuring replay lag);
//! * a **tail + query journal** — the mutations and queries the primary
//!   processed after the checkpoint cut, in log order.
//!
//! On [`promote`](StandbyShard::promote) the checkpoint is rehydrated into a
//! [`Mediator`] and the tail and journal are replayed *interleaved by log
//! watermark* — the exact order the primary saw them. Interleaving is what
//! makes the promise byte-level: a mediation's decision depends on the
//! registry contents at that instant, its RNG consumption depends on whether
//! it starved, and the next decision depends on both, so deltas-then-queries
//! (or queries-then-deltas) would reconstruct a different mediator than the
//! one that crashed.

use sbqa_core::{
    DegradationTier, IntentionOracle, Mediator, ProviderRegistry, QueryAllocator, QueryDisposition,
    RegistryDelta,
};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{ConsumerId, Query, SbqaError, SbqaResult};

use crate::log::{DeltaOp, DeltaRecord, SharedDeltaLog};
use crate::{apply_delta, registry_digest};

/// Tallies of one promotion's replay work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Tail mutations replayed into the checkpoint.
    pub deltas_replayed: usize,
    /// Journaled queries re-mediated successfully.
    pub queries_mediated: usize,
    /// Journaled queries that starved on replay (exactly the ones that
    /// starved on the primary: starvation is part of the decision stream).
    pub queries_starved: usize,
    /// Journaled queries the primary shed under overload: replay skips them
    /// without consuming RNG, exactly as the primary's admission control did.
    pub queries_shed: usize,
}

/// One journaled query together with its admission disposition on the
/// primary. Replaying the disposition — rather than re-running admission —
/// is what keeps promotion byte-identical under overload: the promoted
/// mediator mediates exactly the queries the primary admitted, at exactly
/// the degradation tier the primary used, and skips exactly the sheds.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The query as the primary saw it.
    pub query: Query,
    /// What the primary's admission control decided for it.
    pub disposition: QueryDisposition,
}

/// A promotable mirror of one mediator shard.
pub struct StandbyShard {
    /// Checkpoint state, frozen at `watermark`.
    allocator: Box<dyn QueryAllocator>,
    providers: ProviderRegistry,
    satisfaction: SatisfactionRegistry,
    watermark: u64,
    /// Lockstep registry replica, at `applied`.
    mirror: ProviderRegistry,
    applied: u64,
    /// Mutations observed after `watermark`, in sequence order.
    tail: Vec<(u64, RegistryDelta)>,
    /// Queries the primary observed after the checkpoint — admitted *and*
    /// shed — each tagged with the log watermark in force when it arrived.
    journal: Vec<(u64, JournalEntry)>,
    /// The degraded-`kn` floor the primary's mediator clamps to under
    /// [`DegradationTier::ShrinkKn`]; replay must clamp to the same floor.
    degraded_floor: usize,
    checkpoints: u64,
}

/// The allocator trait object carries no `Debug` bound; report the
/// technique name and the replication counters instead.
impl std::fmt::Debug for StandbyShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandbyShard")
            .field("technique", &self.allocator.name())
            .field("watermark", &self.watermark)
            .field("applied", &self.applied)
            .field("tail_depth", &self.tail.len())
            .field("journal_depth", &self.journal.len())
            .field("checkpoints", &self.checkpoints)
            .finish_non_exhaustive()
    }
}

impl StandbyShard {
    /// Bootstraps a standby from a mediator's decomposed state (the
    /// [`Mediator::into_parts`] triple, or [`Mediator::fork_state`] of a
    /// live one) cut at log watermark `watermark`.
    #[must_use]
    pub fn new(
        allocator: Box<dyn QueryAllocator>,
        providers: ProviderRegistry,
        satisfaction: SatisfactionRegistry,
        watermark: u64,
    ) -> Self {
        let mirror = providers.clone();
        Self {
            allocator,
            providers,
            satisfaction,
            watermark,
            mirror,
            applied: watermark,
            tail: Vec::new(),
            journal: Vec::new(),
            degraded_floor: 2,
            checkpoints: 1,
        }
    }

    /// Sets the degraded-`kn` floor the promoted mediator clamps to when a
    /// journaled query replays at [`DegradationTier::ShrinkKn`]. Must match
    /// the primary's floor or a shrink-tier replay would draw a different
    /// candidate count than the primary did.
    pub fn set_degraded_floor(&mut self, floor: usize) {
        self.degraded_floor = floor.max(1);
    }

    /// Observes one log record. Records at or below the applied watermark
    /// are duplicates of something already observed and are skipped; a gap
    /// above it is an error — the log was pruned past this standby, which
    /// can then only be recovered by a fresh checkpoint.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] on a sequence gap, or any
    /// registry error from applying a mutation to the mirror (both mean the
    /// stream does not extend this standby's state).
    pub fn observe(&mut self, record: &DeltaRecord) -> SbqaResult<()> {
        if record.sequence <= self.applied {
            return Ok(());
        }
        if record.sequence != self.applied + 1 {
            return Err(SbqaError::InvalidConfiguration {
                reason: format!(
                    "replication gap: standby applied {} but next record is {}",
                    self.applied, record.sequence
                ),
            });
        }
        if let DeltaOp::Mutation(delta) = record.op {
            delta.apply(&mut self.mirror)?;
            self.tail.push((record.sequence, delta));
        }
        self.applied = record.sequence;
        Ok(())
    }

    /// Pulls every record the standby has not yet observed from the shared
    /// log. Returns the number of new records applied.
    ///
    /// # Errors
    ///
    /// [`SbqaError::InvalidConfiguration`] when the log was pruned past this
    /// standby's watermark, or any [`StandbyShard::observe`] error.
    pub fn catch_up(&mut self, log: &SharedDeltaLog) -> SbqaResult<usize> {
        let records =
            log.collect_after(self.applied)
                .ok_or_else(|| SbqaError::InvalidConfiguration {
                    reason: format!(
                        "replication gap: log pruned past standby watermark {}",
                        self.applied
                    ),
                })?;
        for record in &records {
            self.observe(record)?;
        }
        Ok(records.len())
    }

    /// Journals a query the primary is about to mediate at
    /// [`DegradationTier::Normal`], tagged with the current applied
    /// watermark so promotion can interleave it with the tail at exactly
    /// the primary's position.
    pub fn observe_query(&mut self, query: &Query) {
        self.observe_query_with(query, QueryDisposition::Mediated(DegradationTier::Normal));
    }

    /// Journals a query with the admission disposition the primary decided
    /// for it: the degradation tier it mediated at, or [`QueryDisposition::Shed`]
    /// for a query its admission control rejected. Shed entries replay as
    /// skips — no mediation, no RNG — so promotion under overload continues
    /// byte-identically.
    pub fn observe_query_with(&mut self, query: &Query, disposition: QueryDisposition) {
        self.journal.push((
            self.applied,
            JournalEntry {
                query: query.clone(),
                disposition,
            },
        ));
    }

    /// Mirrors a control-plane consumer registration. Consumer churn is not
    /// part of the registry delta stream, so the orchestrator forwards it
    /// synchronously; registration is idempotent on both sides.
    pub fn register_consumer(&mut self, id: ConsumerId) {
        self.satisfaction.register_consumer(id);
    }

    /// Installs a fresh checkpoint cut at `watermark`, which must not be
    /// behind the previous one. All journaled queries are presumed contained
    /// in it (the orchestrator cuts checkpoints at batch boundaries, after
    /// syncing the standby), so the journal resets and the tail keeps only
    /// mutations past the new cut.
    pub fn install_checkpoint(
        &mut self,
        allocator: Box<dyn QueryAllocator>,
        providers: ProviderRegistry,
        satisfaction: SatisfactionRegistry,
        watermark: u64,
    ) {
        debug_assert!(watermark >= self.watermark, "checkpoints move forward");
        if watermark > self.applied {
            // The cut is ahead of the mirror (records between were never
            // streamed): re-seat the mirror on the checkpoint itself.
            self.mirror = providers.clone();
            self.applied = watermark;
        }
        self.allocator = allocator;
        self.providers = providers;
        self.satisfaction = satisfaction;
        self.watermark = watermark;
        self.tail.retain(|&(sequence, _)| sequence > watermark);
        self.journal.clear();
        self.checkpoints += 1;
    }

    /// Promotes the standby into a live [`Mediator`] in the primary's exact
    /// pre-crash state: the checkpoint is rehydrated and the tail and query
    /// journal are replayed interleaved by log watermark.
    ///
    /// # Errors
    ///
    /// Any delta-application error (a corrupt or misrouted tail). Query
    /// starvation during replay is *not* an error — it is part of the
    /// decision stream being reproduced.
    pub fn promote(mut self, oracle: &dyn IntentionOracle) -> SbqaResult<(Mediator, ReplayReport)> {
        let mut mediator = Mediator::from_parts(self.allocator, self.providers, self.satisfaction);
        mediator.set_degraded_kn_floor(self.degraded_floor);
        let mut report = ReplayReport::default();
        let mut deltas = self.tail.drain(..).peekable();
        for (watermark, entry) in self.journal.drain(..) {
            while let Some(&(sequence, delta)) = deltas.peek() {
                if sequence > watermark {
                    break;
                }
                apply_delta(&mut mediator, &delta)?;
                report.deltas_replayed += 1;
                deltas.next();
            }
            match entry.disposition {
                QueryDisposition::Shed => {
                    // The primary never mediated it; neither does replay.
                    report.queries_shed += 1;
                }
                QueryDisposition::Mediated(tier) => {
                    mediator.set_degradation_tier(tier);
                    if mediator.submit_in_place(&entry.query, oracle).is_ok() {
                        report.queries_mediated += 1;
                    } else {
                        report.queries_starved += 1;
                    }
                }
            }
        }
        for (_, delta) in deltas {
            apply_delta(&mut mediator, &delta)?;
            report.deltas_replayed += 1;
        }
        Ok((mediator, report))
    }

    /// The log watermark of the installed checkpoint.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The last log sequence applied to the mirror.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Mutations buffered past the checkpoint.
    #[must_use]
    pub fn tail_depth(&self) -> usize {
        self.tail.len()
    }

    /// Queries journaled since the checkpoint.
    #[must_use]
    pub fn journal_depth(&self) -> usize {
        self.journal.len()
    }

    /// Checkpoints this standby has been seeded with (the bootstrap counts
    /// as the first).
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// The lockstep mirror registry.
    #[must_use]
    pub fn mirror(&self) -> &ProviderRegistry {
        &self.mirror
    }

    /// Digest of the mirror's replicated state, for byte-identity checks
    /// against the live registry (see [`registry_digest`]).
    #[must_use]
    pub fn mirror_digest(&self) -> u64 {
        registry_digest(&self.mirror)
    }
}
