//! Property-based coverage of the `sbqa_types` domain invariants:
//!
//! * [`Intention`] clamps every input into `[-1, 1]` (NaN → neutral),
//! * [`Satisfaction`] clamps every input into `[0, 1]` (NaN → minimum),
//! * serde round-trips preserve values exactly, for the bounded domains,
//!   identifiers, capability sets, queries, and the error/configuration enums.

use proptest::prelude::*;

use sbqa_types::{
    AllocationPolicyKind, Capability, CapabilitySet, ConsumerId, Duration, Intention,
    ParticipantId, ProviderId, Query, QueryClass, QueryId, Satisfaction, SbqaError, SystemConfig,
    VirtualTime,
};

/// Serializes with the workspace serde stub and reads the value back.
fn round_trip<T: serde::Serialize + serde::Deserialize>(value: &T) -> T {
    let text = serde::to_string(value);
    serde::from_str(&text).unwrap_or_else(|err| panic!("{err} while re-parsing {text}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intention_always_lands_in_domain(raw in proptest::num::f64::ANY) {
        let intention = Intention::new(raw);
        prop_assert!((-1.0..=1.0).contains(&intention.value()), "from raw {raw}");
        if raw.is_nan() {
            prop_assert_eq!(intention.value(), Intention::NEUTRAL.value());
        }
    }

    #[test]
    fn satisfaction_always_lands_in_domain(raw in proptest::num::f64::ANY) {
        let satisfaction = Satisfaction::new(raw);
        prop_assert!((0.0..=1.0).contains(&satisfaction.value()), "from raw {raw}");
        if raw.is_nan() {
            prop_assert_eq!(satisfaction.value(), Satisfaction::MIN.value());
        }
    }

    #[test]
    fn intention_in_domain_is_preserved_exactly(value in -1.0f64..=1.0) {
        let intention = Intention::new(value);
        prop_assert_eq!(intention.value(), value);
    }

    #[test]
    fn bounded_domains_round_trip_through_serde(
        intention_raw in -1.0f64..=1.0,
        satisfaction_raw in 0.0f64..=1.0,
    ) {
        let intention = Intention::new(intention_raw);
        prop_assert_eq!(round_trip(&intention).value(), intention.value());

        let satisfaction = Satisfaction::new(satisfaction_raw);
        prop_assert_eq!(round_trip(&satisfaction).value(), satisfaction.value());
    }

    #[test]
    fn identifiers_round_trip_through_serde(raw in 0u64..u64::MAX) {
        prop_assert_eq!(round_trip(&ConsumerId::new(raw)), ConsumerId::new(raw));
        prop_assert_eq!(round_trip(&ProviderId::new(raw)), ProviderId::new(raw));
        prop_assert_eq!(round_trip(&QueryId::new(raw)), QueryId::new(raw));
        // The participant wrapper is a data-carrying enum.
        let consumer = ParticipantId::Consumer(ConsumerId::new(raw));
        prop_assert_eq!(round_trip(&consumer), consumer);
        let provider = ParticipantId::Provider(ProviderId::new(raw));
        prop_assert_eq!(round_trip(&provider), provider);
    }

    #[test]
    fn capability_sets_round_trip_through_serde(classes in proptest::collection::vec(0u8..64, 0..12)) {
        let set = CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new));
        prop_assert_eq!(round_trip(&set), set);
    }

    #[test]
    fn capability_requirements_round_trip_through_serde(
        classes in proptest::collection::vec(0u8..64, 0..12),
        conjunctive in proptest::bool::ANY,
    ) {
        use sbqa_types::CapabilityRequirement;

        let set = CapabilitySet::from_capabilities(classes.iter().copied().map(Capability::new));
        let requirement = if conjunctive {
            CapabilityRequirement::All(set)
        } else {
            CapabilityRequirement::Any(set)
        };
        prop_assert_eq!(round_trip(&requirement), requirement);

        // A query carrying the requirement round-trips too.
        let query = Query::requiring(QueryId::new(1), ConsumerId::new(2), requirement).build();
        prop_assert_eq!(round_trip(&query).required, requirement);
    }

    #[test]
    fn queries_round_trip_through_serde(
        id in 0u64..1_000_000,
        consumer in 0u64..1_000_000,
        class in 0u8..64,
        replication in 1usize..5,
        work in 0.01f64..1e4,
        issued in 0.0f64..1e6,
    ) {
        let query = Query::builder(QueryId::new(id), ConsumerId::new(consumer), Capability::new(class))
            .replication(replication)
            .work_units(work)
            .class(QueryClass::all()[(class % 3) as usize])
            .issued_at(VirtualTime::new(issued))
            .build();
        prop_assert_eq!(round_trip(&query), query);
    }

    #[test]
    fn time_values_round_trip_through_serde(seconds in 0.0f64..1e9) {
        let time = VirtualTime::new(seconds);
        prop_assert_eq!(round_trip(&time), time);
        let duration = Duration::new(seconds);
        prop_assert_eq!(round_trip(&duration), duration);
    }
}

#[test]
fn intention_extremes_clamp() {
    assert_eq!(Intention::new(f64::INFINITY).value(), 1.0);
    assert_eq!(Intention::new(f64::NEG_INFINITY).value(), -1.0);
    assert_eq!(Intention::new(2.0).value(), 1.0);
    assert_eq!(Intention::new(-2.0).value(), -1.0);
    assert_eq!(Intention::new(f64::NAN), Intention::NEUTRAL);
}

#[test]
fn satisfaction_extremes_clamp() {
    assert_eq!(Satisfaction::new(f64::INFINITY).value(), 1.0);
    assert_eq!(Satisfaction::new(f64::NEG_INFINITY).value(), 0.0);
    assert_eq!(Satisfaction::new(1.5).value(), 1.0);
    assert_eq!(Satisfaction::new(-0.5).value(), 0.0);
    assert_eq!(Satisfaction::new(f64::NAN), Satisfaction::MIN);
}

#[test]
fn config_and_error_enums_round_trip_through_serde() {
    let config = SystemConfig::default();
    assert_eq!(round_trip(&config), config);

    for kind in AllocationPolicyKind::all() {
        assert_eq!(round_trip(&kind), kind);
    }

    let errors = [
        SbqaError::NoCapableProvider {
            query: QueryId::new(7),
        },
        SbqaError::UnknownProvider {
            provider: ProviderId::new(3),
        },
        SbqaError::InvalidConfiguration {
            reason: "kn must be ≥ k".to_string(),
        },
    ];
    for error in errors {
        assert_eq!(round_trip(&error), error);
    }
}
