//! Shared configuration primitives.
//!
//! Each crate has its own configuration structure (the mediator, the
//! simulator, the workload generator); this module holds the pieces that are
//! shared across them so that scenario descriptions can be serialised as a
//! single document.

use serde::{Deserialize, Serialize};

use crate::error::{SbqaError, SbqaResult};

/// How the mediator chooses the balancing parameter ω of Definition 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OmegaPolicy {
    /// Self-adapting ω computed from the satisfaction gap (Equation 2):
    /// `ω = ((δs(c) − δs(p)) + 1) / 2`. This is the SbQA default.
    #[default]
    Adaptive,
    /// A fixed, application-chosen ω in `[0, 1]`. `0` means "only the
    /// consumer's intention matters" (cooperative providers, quality of
    /// results first); `1` means "only the provider's intention matters".
    Fixed(f64),
}

impl OmegaPolicy {
    /// Validates the policy, rejecting fixed values outside `[0, 1]` or
    /// non-finite.
    pub fn validate(self) -> SbqaResult<()> {
        match self {
            OmegaPolicy::Adaptive => Ok(()),
            OmegaPolicy::Fixed(w) => {
                if w.is_finite() && (0.0..=1.0).contains(&w) {
                    Ok(())
                } else {
                    Err(SbqaError::invalid_config(format!(
                        "fixed omega must lie in [0, 1], got {w}"
                    )))
                }
            }
        }
    }

    /// `true` for the adaptive (Equation 2) policy.
    #[must_use]
    pub const fn is_adaptive(self) -> bool {
        matches!(self, OmegaPolicy::Adaptive)
    }
}

/// The allocation strategies available in this reproduction.
///
/// `SbQA` is the paper's contribution; the others are the baselines used in
/// the evaluation scenarios plus two sanity baselines (random, round-robin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AllocationPolicyKind {
    /// Satisfaction-based query allocation (KnBest + SQLB scoring).
    #[default]
    SbQA,
    /// Capacity-based allocation: queries go to the least-utilized capable
    /// providers, weighted by capacity (BOINC's behaviour, \[9\] in the paper).
    Capacity,
    /// Economic allocation: Mariposa-style bidding, lowest bid wins (\[13\]).
    Economic,
    /// Uniformly random selection among capable providers.
    Random,
    /// Round-robin over capable providers.
    RoundRobin,
    /// Shortest-queue-first (pure load-based) allocation.
    LoadBased,
}

impl AllocationPolicyKind {
    /// All policy kinds, in the order reports list them.
    #[must_use]
    pub const fn all() -> [AllocationPolicyKind; 6] {
        [
            AllocationPolicyKind::SbQA,
            AllocationPolicyKind::Capacity,
            AllocationPolicyKind::Economic,
            AllocationPolicyKind::Random,
            AllocationPolicyKind::RoundRobin,
            AllocationPolicyKind::LoadBased,
        ]
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            AllocationPolicyKind::SbQA => "SbQA",
            AllocationPolicyKind::Capacity => "Capacity",
            AllocationPolicyKind::Economic => "Economic",
            AllocationPolicyKind::Random => "Random",
            AllocationPolicyKind::RoundRobin => "RoundRobin",
            AllocationPolicyKind::LoadBased => "LoadBased",
        }
    }

    /// The three policies compared in the paper's scenarios.
    #[must_use]
    pub const fn paper_policies() -> [AllocationPolicyKind; 3] {
        [
            AllocationPolicyKind::SbQA,
            AllocationPolicyKind::Capacity,
            AllocationPolicyKind::Economic,
        ]
    }
}

/// System-level configuration shared by the mediator and the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Length `k` of the interaction window used for satisfaction
    /// (the "k last interactions" of Section II). The paper assumes all
    /// participants use the same value.
    pub satisfaction_window: usize,
    /// Number of providers drawn at random by KnBest (the set `K`).
    pub knbest_k: usize,
    /// Number of least-utilized providers retained by KnBest (the set `Kn`).
    pub knbest_kn: usize,
    /// The ε of Definition 3, preventing zero scores when an intention equals 1.
    pub epsilon: f64,
    /// How ω is chosen.
    pub omega: OmegaPolicy,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            satisfaction_window: 50,
            knbest_k: 20,
            knbest_kn: 4,
            // The paper states ε > 0 is "usually set to 1".
            epsilon: 1.0,
            omega: OmegaPolicy::Adaptive,
        }
    }
}

impl SystemConfig {
    /// Validates the configuration against the domains stated in the paper.
    pub fn validate(&self) -> SbqaResult<()> {
        if self.satisfaction_window == 0 {
            return Err(SbqaError::invalid_config(
                "satisfaction window k must be at least 1",
            ));
        }
        if self.knbest_k == 0 {
            return Err(SbqaError::invalid_config("KnBest k must be at least 1"));
        }
        if self.knbest_kn == 0 {
            return Err(SbqaError::invalid_config("KnBest kn must be at least 1"));
        }
        if self.knbest_kn > self.knbest_k {
            return Err(SbqaError::invalid_config(format!(
                "KnBest kn ({}) cannot exceed k ({})",
                self.knbest_kn, self.knbest_k
            )));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(SbqaError::invalid_config(format!(
                "epsilon must be a positive finite number, got {}",
                self.epsilon
            )));
        }
        self.omega.validate()
    }

    /// Returns a copy with a different ω policy.
    #[must_use]
    pub fn with_omega(mut self, omega: OmegaPolicy) -> Self {
        self.omega = omega;
        self
    }

    /// Returns a copy with different KnBest parameters.
    #[must_use]
    pub fn with_knbest(mut self, k: usize, kn: usize) -> Self {
        self.knbest_k = k;
        self.knbest_kn = kn;
        self
    }

    /// Returns a copy with a different satisfaction window.
    #[must_use]
    pub fn with_window(mut self, k: usize) -> Self {
        self.satisfaction_window = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SystemConfig::default().validate().unwrap();
    }

    #[test]
    fn omega_policy_validation() {
        OmegaPolicy::Adaptive.validate().unwrap();
        OmegaPolicy::Fixed(0.0).validate().unwrap();
        OmegaPolicy::Fixed(1.0).validate().unwrap();
        assert!(OmegaPolicy::Fixed(1.5).validate().is_err());
        assert!(OmegaPolicy::Fixed(-0.1).validate().is_err());
        assert!(OmegaPolicy::Fixed(f64::NAN).validate().is_err());
        assert!(OmegaPolicy::Adaptive.is_adaptive());
        assert!(!OmegaPolicy::Fixed(0.5).is_adaptive());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_window = SystemConfig {
            satisfaction_window: 0,
            ..SystemConfig::default()
        };
        assert!(bad_window.validate().is_err());

        let bad_kn = SystemConfig::default().with_knbest(4, 8);
        assert!(bad_kn.validate().is_err());

        let zero_k = SystemConfig::default().with_knbest(0, 0);
        assert!(zero_k.validate().is_err());

        let bad_eps = SystemConfig {
            epsilon: 0.0,
            ..SystemConfig::default()
        };
        assert!(bad_eps.validate().is_err());
    }

    #[test]
    fn builder_style_updates() {
        let cfg = SystemConfig::default()
            .with_knbest(10, 3)
            .with_window(25)
            .with_omega(OmegaPolicy::Fixed(0.25));
        assert_eq!(cfg.knbest_k, 10);
        assert_eq!(cfg.knbest_kn, 3);
        assert_eq!(cfg.satisfaction_window, 25);
        assert_eq!(cfg.omega, OmegaPolicy::Fixed(0.25));
        cfg.validate().unwrap();
    }

    #[test]
    fn policy_labels_are_unique() {
        let labels: Vec<&str> = AllocationPolicyKind::all()
            .iter()
            .map(|p| p.label())
            .collect();
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(labels.len(), deduped.len());
        assert_eq!(AllocationPolicyKind::paper_policies().len(), 3);
    }
}
