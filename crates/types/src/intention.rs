//! The `[-1, 1]` intention domain.
//!
//! In SbQA an *intention* expresses how much a participant wants a specific
//! mediation to happen: a consumer's intention to have its query allocated to
//! a given provider, or a provider's intention to perform a given query. The
//! paper fixes the domain to the closed interval `[-1, 1]`:
//!
//! * `1` — the participant strongly wants the interaction,
//! * `0` — indifference,
//! * `-1` — the participant strongly wants to avoid the interaction.
//!
//! [`Intention`] enforces the domain by clamping on construction and keeps a
//! plain `f64` inside, so arithmetic stays cheap on the mediation hot path.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::Neg;

use serde::{Deserialize, Serialize};

use crate::satisfaction_value::Satisfaction;

/// A participant's intention towards a mediation, clamped to `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Intention(f64);

impl Intention {
    /// The strongest positive intention.
    pub const MAX: Intention = Intention(1.0);
    /// Complete indifference.
    pub const NEUTRAL: Intention = Intention(0.0);
    /// The strongest negative intention (refusal).
    pub const MIN: Intention = Intention(-1.0);

    /// Creates an intention, clamping the value to `[-1, 1]`.
    ///
    /// Non-finite inputs (NaN, infinities) are mapped to [`Intention::NEUTRAL`]
    /// so that a misbehaving intention function can never poison the
    /// mediation with NaN scores.
    #[must_use]
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            return Self::NEUTRAL;
        }
        Self(value.clamp(-1.0, 1.0))
    }

    /// Returns the inner value, guaranteed to lie in `[-1, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if the participant is in favour of the interaction
    /// (strictly positive intention).
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// Returns `true` if the participant opposes the interaction
    /// (strictly negative intention).
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Maps the intention onto the unit interval: `(i + 1) / 2`.
    ///
    /// This is the transformation used by both satisfaction definitions in
    /// the paper (Definition 1 and Definition 2): an intention of `-1` yields
    /// `0` satisfaction, `0` yields `0.5`, and `1` yields `1`.
    #[must_use]
    pub fn to_unit(self) -> Satisfaction {
        Satisfaction::new((self.0 + 1.0) / 2.0)
    }

    /// Builds an intention from a unit-interval value, the inverse of
    /// [`Intention::to_unit`].
    #[must_use]
    pub fn from_unit(unit: f64) -> Self {
        Self::new(unit.mul_add(2.0, -1.0))
    }

    /// Linear interpolation between two intentions: `self * (1 - t) + other * t`.
    ///
    /// Used by hybrid intention strategies that trade a static preference for
    /// a dynamic signal (e.g. a provider trading its topical preference for
    /// its current utilization).
    #[must_use]
    pub fn blend(self, other: Intention, t: f64) -> Self {
        let t = t.clamp(0.0, 1.0);
        Self::new(self.0 * (1.0 - t) + other.0 * t)
    }

    /// Returns the average of a slice of intentions, or `NEUTRAL` for an
    /// empty slice.
    #[must_use]
    pub fn mean(values: &[Intention]) -> Self {
        if values.is_empty() {
            return Self::NEUTRAL;
        }
        let sum: f64 = values.iter().map(|i| i.0).sum();
        Self::new(sum / values.len() as f64)
    }
}

impl Default for Intention {
    fn default() -> Self {
        Self::NEUTRAL
    }
}

impl From<f64> for Intention {
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl From<Intention> for f64 {
    fn from(i: Intention) -> Self {
        i.0
    }
}

impl Neg for Intention {
    type Output = Intention;

    fn neg(self) -> Self::Output {
        Intention(-self.0)
    }
}

impl Eq for Intention {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Intention {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Intention {
    fn cmp(&self, other: &Self) -> Ordering {
        crate::float_ord::f64_total_cmp(self.0, other.0)
    }
}

impl Sum for Intention {
    fn sum<I: Iterator<Item = Intention>>(iter: I) -> Self {
        let mut total = 0.0;
        for i in iter {
            total += i.0;
        }
        Intention::new(total)
    }
}

impl fmt::Display for Intention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_clamps_to_domain() {
        assert_eq!(Intention::new(2.0), Intention::MAX);
        assert_eq!(Intention::new(-7.5), Intention::MIN);
        assert_eq!(Intention::new(0.25).value(), 0.25);
    }

    #[test]
    fn nan_and_infinities_are_tamed() {
        assert_eq!(Intention::new(f64::NAN), Intention::NEUTRAL);
        assert_eq!(Intention::new(f64::INFINITY), Intention::MAX);
        assert_eq!(Intention::new(f64::NEG_INFINITY), Intention::MIN);
    }

    #[test]
    fn unit_mapping_matches_paper_transformation() {
        assert_eq!(Intention::MIN.to_unit().value(), 0.0);
        assert_eq!(Intention::NEUTRAL.to_unit().value(), 0.5);
        assert_eq!(Intention::MAX.to_unit().value(), 1.0);
    }

    #[test]
    fn from_unit_is_inverse_of_to_unit() {
        for raw in [-1.0, -0.4, 0.0, 0.3, 1.0] {
            let i = Intention::new(raw);
            let back = Intention::from_unit(i.to_unit().value());
            assert!((back.value() - i.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn blend_interpolates_linearly() {
        let a = Intention::new(-1.0);
        let b = Intention::new(1.0);
        assert_eq!(a.blend(b, 0.0), a);
        assert_eq!(a.blend(b, 1.0), b);
        assert_eq!(a.blend(b, 0.5), Intention::NEUTRAL);
        // t outside [0, 1] is clamped rather than extrapolated.
        assert_eq!(a.blend(b, 2.0), b);
    }

    #[test]
    fn mean_of_empty_slice_is_neutral() {
        assert_eq!(Intention::mean(&[]), Intention::NEUTRAL);
        let m = Intention::mean(&[Intention::new(1.0), Intention::new(0.0)]);
        assert!((m.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_sign_helpers() {
        assert!(Intention::new(0.9) > Intention::new(0.1));
        assert!(Intention::new(0.1).is_positive());
        assert!(Intention::new(-0.1).is_negative());
        assert!(!Intention::NEUTRAL.is_positive());
        assert!(!Intention::NEUTRAL.is_negative());
        assert_eq!(-Intention::new(0.4), Intention::new(-0.4));
    }

    proptest! {
        #[test]
        fn prop_new_always_in_domain(raw in proptest::num::f64::ANY) {
            let i = Intention::new(raw);
            prop_assert!(i.value() >= -1.0 && i.value() <= 1.0);
        }

        #[test]
        fn prop_to_unit_in_unit_interval(raw in -1.0f64..=1.0) {
            let u = Intention::new(raw).to_unit().value();
            prop_assert!((0.0..=1.0).contains(&u));
        }

        #[test]
        fn prop_blend_stays_in_domain(a in -1.0f64..=1.0, b in -1.0f64..=1.0, t in 0.0f64..=1.0) {
            let blended = Intention::new(a).blend(Intention::new(b), t);
            prop_assert!(blended.value() >= -1.0 && blended.value() <= 1.0);
        }

        #[test]
        fn prop_blend_is_bounded_by_endpoints(a in -1.0f64..=1.0, b in -1.0f64..=1.0, t in 0.0f64..=1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let blended = Intention::new(a).blend(Intention::new(b), t).value();
            prop_assert!(blended >= lo - 1e-12 && blended <= hi + 1e-12);
        }
    }
}
