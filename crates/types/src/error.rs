//! Error types shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::{ConsumerId, ProviderId, QueryId};

/// Convenience alias for results produced by the SbQA stack.
pub type SbqaResult<T> = Result<T, SbqaError>;

/// Errors that can arise during query allocation and simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SbqaError {
    /// No provider in the system is capable of performing the query.
    NoCapableProvider {
        /// The query that could not be allocated.
        query: QueryId,
    },
    /// Providers capable of the query exist but none is currently online.
    NoProviderOnline {
        /// The query that could not be allocated.
        query: QueryId,
    },
    /// A provider id was used that is not registered with the mediator.
    UnknownProvider {
        /// The offending provider id.
        provider: ProviderId,
    },
    /// A consumer id was used that is not registered with the mediator.
    UnknownConsumer {
        /// The offending consumer id.
        consumer: ConsumerId,
    },
    /// A configuration value is outside its legal domain.
    InvalidConfiguration {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The simulation was asked to run with an empty workload or population.
    EmptyScenario {
        /// Human-readable description of the missing ingredient.
        reason: String,
    },
    /// The query was rejected by admission control before mediation: the
    /// degradation ladder was in its shed tier when the query arrived. Not a
    /// starvation — the system chose not to serve it, deterministically.
    QueryShed {
        /// The query that was shed.
        query: QueryId,
    },
}

impl fmt::Display for SbqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbqaError::NoCapableProvider { query } => {
                write!(f, "no provider is capable of performing query {query}")
            }
            SbqaError::NoProviderOnline { query } => {
                write!(f, "no capable provider is online for query {query}")
            }
            SbqaError::UnknownProvider { provider } => {
                write!(f, "provider {provider} is not registered with the mediator")
            }
            SbqaError::UnknownConsumer { consumer } => {
                write!(f, "consumer {consumer} is not registered with the mediator")
            }
            SbqaError::InvalidConfiguration { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SbqaError::EmptyScenario { reason } => {
                write!(f, "scenario cannot run: {reason}")
            }
            SbqaError::QueryShed { query } => {
                write!(f, "query {query} was shed by overload admission control")
            }
        }
    }
}

impl std::error::Error for SbqaError {}

impl SbqaError {
    /// Builds an [`SbqaError::InvalidConfiguration`] from anything printable.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SbqaError::InvalidConfiguration {
            reason: reason.into(),
        }
    }

    /// Builds an [`SbqaError::EmptyScenario`] from anything printable.
    pub fn empty_scenario(reason: impl Into<String>) -> Self {
        SbqaError::EmptyScenario {
            reason: reason.into(),
        }
    }

    /// `true` when the error means the query simply could not be placed
    /// (starvation), as opposed to a programming/configuration error.
    #[must_use]
    pub fn is_starvation(&self) -> bool {
        matches!(
            self,
            SbqaError::NoCapableProvider { .. } | SbqaError::NoProviderOnline { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = SbqaError::NoCapableProvider {
            query: QueryId::new(7),
        };
        assert!(e.to_string().contains("q7"));
        let e = SbqaError::UnknownProvider {
            provider: ProviderId::new(3),
        };
        assert!(e.to_string().contains("p3"));
        let e = SbqaError::UnknownConsumer {
            consumer: ConsumerId::new(9),
        };
        assert!(e.to_string().contains("c9"));
    }

    #[test]
    fn starvation_classification() {
        assert!(SbqaError::NoCapableProvider {
            query: QueryId::new(1)
        }
        .is_starvation());
        assert!(SbqaError::NoProviderOnline {
            query: QueryId::new(1)
        }
        .is_starvation());
        assert!(!SbqaError::invalid_config("bad k").is_starvation());
        assert!(!SbqaError::empty_scenario("no consumers").is_starvation());
        assert!(
            !SbqaError::QueryShed {
                query: QueryId::new(1)
            }
            .is_starvation(),
            "shedding is a deliberate admission decision, not starvation"
        );
    }

    #[test]
    fn constructors_capture_reason() {
        match SbqaError::invalid_config("k must be positive") {
            SbqaError::InvalidConfiguration { reason } => {
                assert_eq!(reason, "k must be positive");
            }
            other => panic!("unexpected variant {other:?}"),
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SbqaError::empty_scenario("no providers"));
        assert!(e.to_string().contains("no providers"));
    }
}
