//! NaN-safe total ordering for `f64` comparison on the allocation hot path.
//!
//! SbQA's query allocation is specified to be a pure function of
//! `(registry state, seed)`, and every ranking step in the workspace sorts or
//! selects by some `f64` score (satisfaction, utilization, bids). The two
//! idiomatic float-comparison escapes both break that contract:
//!
//! * `partial_cmp(..).unwrap()` panics the mediator on the first NaN, and
//! * `partial_cmp(..).unwrap_or(Ordering::Equal)` makes NaN compare *equal to
//!   everything*, which is not transitive — the resulting sort order then
//!   depends on element positions and the standard library's sort
//!   implementation rather than on the data.
//!
//! [`f64_total_cmp`] is the single comparator every ranking site is expected
//! to use (the `float-ordering` rule of `sbqa-lint` rejects raw
//! `.partial_cmp(..)` calls in library code). It is [`f64::total_cmp`] with
//! one adjustment: `-0.0` and `+0.0` compare equal, exactly as they did under
//! `partial_cmp`, so adopting it cannot reorder any historical golden output.
//! NaN values order deterministically at the extremes (`-NaN` below
//! `-infinity`, `+NaN` above `+infinity`) instead of nondeterministically in
//! the middle.

use std::cmp::Ordering;

/// Compares two `f64` values under a deterministic total order.
///
/// Properties:
///
/// * agrees with `partial_cmp` for every pair of non-NaN operands, including
///   `-0.0 == +0.0` (so swapping it in preserves byte-identical outputs on
///   NaN-free data);
/// * total and transitive even when NaN appears: `-NaN < -∞` and `+∞ < +NaN`,
///   so a stray NaN score ranks deterministically instead of panicking
///   (`unwrap`) or corrupting the sort (`unwrap_or(Equal)`).
///
/// ```
/// use std::cmp::Ordering;
/// use sbqa_types::float_ord::f64_total_cmp;
///
/// assert_eq!(f64_total_cmp(1.0, 2.0), Ordering::Less);
/// assert_eq!(f64_total_cmp(-0.0, 0.0), Ordering::Equal);
/// assert_eq!(f64_total_cmp(f64::NAN, f64::INFINITY), Ordering::Greater);
/// ```
#[must_use]
pub fn f64_total_cmp(a: f64, b: f64) -> Ordering {
    // `x + 0.0` maps `-0.0` to `+0.0` and leaves every other value (including
    // NaN) in its equivalence class, so the only place this differs from raw
    // `total_cmp` is the signed-zero pair.
    (a + 0.0).total_cmp(&(b + 0.0))
}

/// Sorts a slice of `f64` ascending under [`f64_total_cmp`].
pub fn sort_ascending(values: &mut [f64]) {
    values.sort_unstable_by(|a, b| f64_total_cmp(*a, *b));
}

/// Sorts a slice of `f64` descending under [`f64_total_cmp`].
pub fn sort_descending(values: &mut [f64]) {
    values.sort_unstable_by(|a, b| f64_total_cmp(*b, *a));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_partial_cmp_on_ordinary_values() {
        let samples = [
            -f64::INFINITY,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            0.25,
            1.0,
            f64::INFINITY,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    f64_total_cmp(a, b),
                    a.partial_cmp(&b).expect("samples are not NaN"),
                    "mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn nan_orders_at_the_extremes() {
        assert_eq!(f64_total_cmp(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(f64_total_cmp(-f64::NAN, -f64::INFINITY), Ordering::Less);
        assert_eq!(f64_total_cmp(f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn transitive_even_with_nan() {
        let mut values = [1.0, f64::NAN, -0.0, -f64::NAN, 0.5, f64::INFINITY];
        sort_ascending(&mut values);
        for pair in values.windows(2) {
            assert_ne!(f64_total_cmp(pair[0], pair[1]), Ordering::Greater);
        }
        sort_descending(&mut values);
        for pair in values.windows(2) {
            assert_ne!(f64_total_cmp(pair[0], pair[1]), Ordering::Less);
        }
    }

    #[test]
    fn signed_zero_compares_equal() {
        assert_eq!(f64_total_cmp(-0.0, 0.0), Ordering::Equal);
        assert_eq!(f64_total_cmp(0.0, -0.0), Ordering::Equal);
    }
}
