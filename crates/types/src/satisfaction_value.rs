//! The `[0, 1]` satisfaction domain.
//!
//! Satisfaction measures, in the long run, how well the system meets a
//! participant's intentions. Both Definition 1 (consumer satisfaction) and
//! Definition 2 (provider satisfaction) of the paper produce values in the
//! closed interval `[0, 1]`; the closer to `1`, the more satisfied the
//! participant. [`Satisfaction`] enforces the interval by clamping.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A satisfaction level in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Satisfaction(f64);

impl Satisfaction {
    /// Complete satisfaction.
    pub const MAX: Satisfaction = Satisfaction(1.0);
    /// The midpoint of the domain, produced by a neutral intention.
    pub const NEUTRAL: Satisfaction = Satisfaction(0.5);
    /// Complete dissatisfaction.
    pub const MIN: Satisfaction = Satisfaction(0.0);

    /// Creates a satisfaction value, clamping into `[0, 1]`.
    ///
    /// NaN inputs map to [`Satisfaction::MIN`]: a satisfaction that cannot be
    /// computed is treated as "not satisfied at all", which is the
    /// conservative choice for departure decisions.
    #[must_use]
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            return Self::MIN;
        }
        Self(value.clamp(0.0, 1.0))
    }

    /// Returns the inner value, guaranteed to lie in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if this satisfaction is strictly below `threshold`.
    ///
    /// This is the predicate used by the autonomous-environment departure
    /// rules in Scenario 2 and Scenario 4 (providers leave below `0.35`,
    /// consumers below `0.5`).
    #[must_use]
    pub fn is_below(self, threshold: f64) -> bool {
        self.0 < threshold
    }

    /// The arithmetic mean of a slice of satisfactions, or `None` if empty.
    #[must_use]
    pub fn mean(values: &[Satisfaction]) -> Option<Satisfaction> {
        if values.is_empty() {
            return None;
        }
        let sum: f64 = values.iter().map(|s| s.0).sum();
        Some(Satisfaction::new(sum / values.len() as f64))
    }

    /// The absolute gap between two satisfactions, in `[0, 1]`.
    ///
    /// Equation 2 of the paper turns the *signed* gap between a consumer's and
    /// a provider's satisfaction into the balancing weight ω; the unsigned gap
    /// is used by the experiment reports as a fairness indicator.
    #[must_use]
    pub fn gap(self, other: Satisfaction) -> f64 {
        (self.0 - other.0).abs()
    }

    /// Computes the balancing parameter ω of Equation 2:
    /// `ω = ((δs(c) − δs(p)) + 1) / 2`.
    ///
    /// `self` is interpreted as the consumer's satisfaction and `provider` as
    /// the provider's. A consumer that is *more* satisfied than the provider
    /// yields ω above `0.5`, shifting the mediator's attention towards the
    /// provider's intention (which is raised to the power ω in Definition 3).
    #[must_use]
    pub fn omega_against(self, provider: Satisfaction) -> f64 {
        ((self.0 - provider.0) + 1.0) / 2.0
    }
}

impl Default for Satisfaction {
    /// A participant with no history starts at full satisfaction, matching
    /// the paper's assumption that newcomers have no grievance yet.
    fn default() -> Self {
        Self::MAX
    }
}

impl From<f64> for Satisfaction {
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl From<Satisfaction> for f64 {
    fn from(s: Satisfaction) -> Self {
        s.0
    }
}

impl Eq for Satisfaction {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Satisfaction {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Satisfaction {
    fn cmp(&self, other: &Self) -> Ordering {
        crate::float_ord::f64_total_cmp(self.0, other.0)
    }
}

impl Add for Satisfaction {
    type Output = Satisfaction;

    fn add(self, rhs: Self) -> Self::Output {
        Satisfaction::new(self.0 + rhs.0)
    }
}

impl Sub for Satisfaction {
    type Output = Satisfaction;

    fn sub(self, rhs: Self) -> Self::Output {
        Satisfaction::new(self.0 - rhs.0)
    }
}

impl Sum for Satisfaction {
    fn sum<I: Iterator<Item = Satisfaction>>(iter: I) -> Self {
        let mut total = 0.0;
        for s in iter {
            total += s.0;
        }
        Satisfaction::new(total)
    }
}

impl fmt::Display for Satisfaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_clamps_to_unit_interval() {
        assert_eq!(Satisfaction::new(1.5), Satisfaction::MAX);
        assert_eq!(Satisfaction::new(-0.5), Satisfaction::MIN);
        assert_eq!(Satisfaction::new(f64::NAN), Satisfaction::MIN);
        assert_eq!(Satisfaction::new(0.75).value(), 0.75);
    }

    #[test]
    fn departure_predicate_is_strict() {
        let s = Satisfaction::new(0.35);
        assert!(!s.is_below(0.35));
        assert!(Satisfaction::new(0.3499).is_below(0.35));
    }

    #[test]
    fn omega_matches_equation_two() {
        // Equal satisfaction -> balanced weight.
        let c = Satisfaction::new(0.6);
        let p = Satisfaction::new(0.6);
        assert!((c.omega_against(p) - 0.5).abs() < 1e-12);

        // Fully satisfied consumer, fully dissatisfied provider -> ω = 1,
        // i.e. all the weight on the provider's intention.
        assert!((Satisfaction::MAX.omega_against(Satisfaction::MIN) - 1.0).abs() < 1e-12);
        // The symmetric case gives ω = 0.
        assert!((Satisfaction::MIN.omega_against(Satisfaction::MAX)).abs() < 1e-12);
    }

    #[test]
    fn mean_and_gap_behave() {
        assert_eq!(Satisfaction::mean(&[]), None);
        let m = Satisfaction::mean(&[Satisfaction::new(0.2), Satisfaction::new(0.6)]).unwrap();
        assert!((m.value() - 0.4).abs() < 1e-12);
        assert!((Satisfaction::new(0.9).gap(Satisfaction::new(0.4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_fully_satisfied() {
        assert_eq!(Satisfaction::default(), Satisfaction::MAX);
    }

    #[test]
    fn arithmetic_saturates_at_domain_bounds() {
        assert_eq!(
            Satisfaction::new(0.8) + Satisfaction::new(0.8),
            Satisfaction::MAX
        );
        assert_eq!(
            Satisfaction::new(0.2) - Satisfaction::new(0.8),
            Satisfaction::MIN
        );
    }

    proptest! {
        #[test]
        fn prop_always_in_unit_interval(raw in proptest::num::f64::ANY) {
            let s = Satisfaction::new(raw);
            prop_assert!((0.0..=1.0).contains(&s.value()));
        }

        #[test]
        fn prop_omega_in_unit_interval(c in 0.0f64..=1.0, p in 0.0f64..=1.0) {
            let omega = Satisfaction::new(c).omega_against(Satisfaction::new(p));
            prop_assert!((0.0..=1.0).contains(&omega));
        }

        #[test]
        fn prop_omega_monotone_in_consumer_satisfaction(
            c1 in 0.0f64..=1.0, c2 in 0.0f64..=1.0, p in 0.0f64..=1.0
        ) {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let p = Satisfaction::new(p);
            prop_assert!(
                Satisfaction::new(lo).omega_against(p) <= Satisfaction::new(hi).omega_against(p) + 1e-12
            );
        }
    }
}
