//! Queries and mediation outcomes.
//!
//! A query in SbQA is an independent unit of work issued by a consumer. In the
//! BOINC demonstration it is "a set of input files and an application
//! program"; for allocation purposes the mediator only needs:
//!
//! * which consumer issued it ([`Query::consumer`]),
//! * which providers are able to perform it (derived from
//!   [`Query::required`], a conjunctive or disjunctive
//!   [`CapabilityRequirement`] over capability classes),
//! * how many providers must perform it ([`Query::replication`] — BOINC
//!   consumers replicate work units to validate results from possibly
//!   malicious volunteers; the paper calls this `q.n`),
//! * how much work it represents ([`Query::work_units`], used by the
//!   simulator to derive service times).

use serde::{Deserialize, Serialize};

use crate::capability::{Capability, CapabilityRequirement};
use crate::id::{ConsumerId, ProviderId, QueryId};
use crate::time::{Duration, VirtualTime};

/// A coarse class of query, used by workload generators to vary work size and
/// by intention functions that prefer some query types over others.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum QueryClass {
    /// A short, cheap query (e.g. a small work unit).
    Short,
    /// A typical query.
    #[default]
    Medium,
    /// A long-running, expensive query (e.g. a large work unit).
    Long,
}

impl QueryClass {
    /// A multiplicative factor applied to the base work size of a query of
    /// this class. Chosen so that the mean over a uniform class mix is ~1.
    #[must_use]
    pub const fn work_factor(self) -> f64 {
        match self {
            QueryClass::Short => 0.4,
            QueryClass::Medium => 1.0,
            QueryClass::Long => 1.6,
        }
    }

    /// All classes, in increasing work order.
    #[must_use]
    pub const fn all() -> [QueryClass; 3] {
        [QueryClass::Short, QueryClass::Medium, QueryClass::Long]
    }
}

/// An independent unit of work submitted by a consumer and allocated by the
/// mediator to one or more providers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Unique identifier of the query.
    pub id: QueryId,
    /// The consumer that issued the query (written `q.c` in the paper).
    pub consumer: ConsumerId,
    /// What a provider must advertise to belong to `Pq`: all of a capability
    /// set, or any of it. Single-capability queries are the trivial one-bit
    /// case, [`CapabilityRequirement::single`].
    pub required: CapabilityRequirement,
    /// Number of providers that must perform the query (written `q.n`).
    ///
    /// This is the replication factor used by BOINC-style result validation;
    /// it is at least 1.
    pub replication: usize,
    /// Size of the query in abstract work units. A provider with capacity `C`
    /// (work units per virtual second) serves the query in
    /// `work_units / C` seconds.
    pub work_units: f64,
    /// The coarse class of the query.
    pub class: QueryClass,
    /// Virtual time at which the consumer issued the query.
    pub issued_at: VirtualTime,
}

impl Query {
    /// Starts building a single-capability query; see [`QueryBuilder`]. This
    /// is the original API surface — existing call sites keep compiling and
    /// produce the trivial `All{cap}` requirement.
    #[must_use]
    pub fn builder(id: QueryId, consumer: ConsumerId, capability: Capability) -> QueryBuilder {
        QueryBuilder::new(id, consumer, capability)
    }

    /// Starts building a query with an explicit [`CapabilityRequirement`].
    #[must_use]
    pub fn requiring(
        id: QueryId,
        consumer: ConsumerId,
        required: CapabilityRequirement,
    ) -> QueryBuilder {
        QueryBuilder::requiring(id, consumer, required)
    }

    /// Service time of this query on a provider with the given capacity
    /// (work units per virtual second).
    ///
    /// Returns [`Duration::ZERO`] for a non-positive capacity, which the
    /// simulator treats as "cannot be served" upstream.
    #[must_use]
    pub fn service_time(&self, capacity: f64) -> Duration {
        if capacity <= 0.0 {
            return Duration::ZERO;
        }
        Duration::new(self.work_units / capacity)
    }
}

/// Builder for [`Query`] with sensible defaults (replication 1, one work
/// unit, medium class, issued at time zero).
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: QueryId,
    consumer: ConsumerId,
    required: CapabilityRequirement,
    replication: usize,
    work_units: f64,
    class: QueryClass,
    issued_at: VirtualTime,
}

impl QueryBuilder {
    /// Creates a builder for a single-capability query with default work size
    /// and replication.
    #[must_use]
    pub fn new(id: QueryId, consumer: ConsumerId, capability: Capability) -> Self {
        Self::requiring(id, consumer, CapabilityRequirement::single(capability))
    }

    /// Creates a builder with an explicit capability requirement.
    #[must_use]
    pub fn requiring(id: QueryId, consumer: ConsumerId, required: CapabilityRequirement) -> Self {
        Self {
            id,
            consumer,
            required,
            replication: 1,
            work_units: 1.0,
            class: QueryClass::Medium,
            issued_at: VirtualTime::ZERO,
        }
    }

    /// Replaces the capability requirement.
    #[must_use]
    pub fn require(mut self, required: CapabilityRequirement) -> Self {
        self.required = required;
        self
    }

    /// Sets the replication factor (`q.n`). Values below 1 are raised to 1.
    #[must_use]
    pub fn replication(mut self, n: usize) -> Self {
        self.replication = n.max(1);
        self
    }

    /// Sets the work size in abstract units. Non-positive or non-finite sizes
    /// fall back to one work unit.
    #[must_use]
    pub fn work_units(mut self, units: f64) -> Self {
        self.work_units = if units.is_finite() && units > 0.0 {
            units
        } else {
            1.0
        };
        self
    }

    /// Sets the query class and scales the work size by the class factor.
    #[must_use]
    pub fn class(mut self, class: QueryClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the issue timestamp.
    #[must_use]
    pub fn issued_at(mut self, at: VirtualTime) -> Self {
        self.issued_at = at;
        self
    }

    /// Finalises the query.
    #[must_use]
    pub fn build(self) -> Query {
        Query {
            id: self.id,
            consumer: self.consumer,
            required: self.required,
            replication: self.replication,
            work_units: self.work_units * self.class.work_factor(),
            class: self.class,
            issued_at: self.issued_at,
        }
    }
}

/// The outcome of a completed query, recorded once every selected provider
/// has finished (or the query was dropped).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The query this outcome describes.
    pub query: QueryId,
    /// The consumer that issued the query.
    pub consumer: ConsumerId,
    /// Providers that actually performed the query (the paper's `P̂q`).
    pub performed_by: Vec<ProviderId>,
    /// Virtual time at which the query was issued.
    pub issued_at: VirtualTime,
    /// Virtual time at which the last required result arrived, if the query
    /// completed.
    pub completed_at: Option<VirtualTime>,
    /// `true` if the mediator could not allocate the query (no capable or no
    /// live provider).
    pub starved: bool,
}

impl QueryOutcome {
    /// Response time of the query, if it completed.
    #[must_use]
    pub fn response_time(&self) -> Option<Duration> {
        self.completed_at.map(|done| done.since(self.issued_at))
    }

    /// `true` if at least one provider performed the query.
    #[must_use]
    pub fn was_performed(&self) -> bool {
        !self.performed_by.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_query() -> Query {
        Query::builder(QueryId::new(1), ConsumerId::new(2), Capability::new(0))
            .replication(3)
            .work_units(10.0)
            .issued_at(VirtualTime::new(5.0))
            .build()
    }

    #[test]
    fn builder_applies_all_fields() {
        let q = sample_query();
        assert_eq!(q.id, QueryId::new(1));
        assert_eq!(q.consumer, ConsumerId::new(2));
        assert_eq!(q.replication, 3);
        assert_eq!(q.work_units, 10.0);
        assert_eq!(q.issued_at, VirtualTime::new(5.0));
        // The single-capability shim produces the trivial requirement.
        assert_eq!(
            q.required,
            crate::capability::CapabilityRequirement::single(Capability::new(0))
        );
        assert_eq!(q.required.as_single(), Some(Capability::new(0)));
    }

    #[test]
    fn builder_supports_multi_capability_requirements() {
        use crate::capability::{CapabilityRequirement, CapabilitySet};

        let set = CapabilitySet::from_capabilities([Capability::new(1), Capability::new(4)]);
        let q = Query::requiring(
            QueryId::new(9),
            ConsumerId::new(3),
            CapabilityRequirement::Any(set),
        )
        .build();
        assert_eq!(q.required, CapabilityRequirement::Any(set));
        assert_eq!(q.required.as_single(), None);

        // `require` overrides the builder shim's singleton.
        let q = Query::builder(QueryId::new(9), ConsumerId::new(3), Capability::new(0))
            .require(CapabilityRequirement::All(set))
            .build();
        assert_eq!(q.required, CapabilityRequirement::All(set));
    }

    #[test]
    fn builder_sanitises_degenerate_inputs() {
        let q = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .replication(0)
            .work_units(-3.0)
            .build();
        assert_eq!(q.replication, 1);
        assert_eq!(q.work_units, 1.0);

        let q = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .work_units(f64::NAN)
            .build();
        assert_eq!(q.work_units, 1.0);
    }

    #[test]
    fn class_scales_work_units() {
        let short = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
            .work_units(10.0)
            .class(QueryClass::Short)
            .build();
        let long = Query::builder(QueryId::new(2), ConsumerId::new(1), Capability::new(0))
            .work_units(10.0)
            .class(QueryClass::Long)
            .build();
        assert!(short.work_units < long.work_units);
    }

    #[test]
    fn service_time_scales_inversely_with_capacity() {
        let q = sample_query();
        assert_eq!(q.service_time(2.0).seconds(), 5.0);
        assert_eq!(q.service_time(10.0).seconds(), 1.0);
        assert_eq!(q.service_time(0.0), Duration::ZERO);
        assert_eq!(q.service_time(-1.0), Duration::ZERO);
    }

    #[test]
    fn outcome_response_time() {
        let outcome = QueryOutcome {
            query: QueryId::new(1),
            consumer: ConsumerId::new(2),
            performed_by: vec![ProviderId::new(3)],
            issued_at: VirtualTime::new(5.0),
            completed_at: Some(VirtualTime::new(9.0)),
            starved: false,
        };
        assert_eq!(outcome.response_time().unwrap().seconds(), 4.0);
        assert!(outcome.was_performed());

        let starved = QueryOutcome {
            completed_at: None,
            performed_by: vec![],
            starved: true,
            ..outcome
        };
        assert_eq!(starved.response_time(), None);
        assert!(!starved.was_performed());
    }

    proptest! {
        #[test]
        fn prop_service_time_positive_for_positive_capacity(
            work in 0.01f64..1e6, capacity in 0.01f64..1e6
        ) {
            let q = Query::builder(QueryId::new(0), ConsumerId::new(0), Capability::new(0))
                .work_units(work)
                .build();
            prop_assert!(q.service_time(capacity).seconds() > 0.0);
        }

        #[test]
        fn prop_replication_at_least_one(n in 0usize..32) {
            let q = Query::builder(QueryId::new(0), ConsumerId::new(0), Capability::new(0))
                .replication(n)
                .build();
            prop_assert!(q.replication >= 1);
        }
    }
}
