//! # sbqa-types
//!
//! Core vocabulary for the SbQA (Satisfaction-based Query Allocation)
//! reproduction. Every other crate in the workspace builds on these types:
//!
//! * identifiers for participants and queries ([`ConsumerId`], [`ProviderId`],
//!   [`QueryId`]),
//! * the bounded numeric domains of the paper ([`Intention`] in `[-1, 1]`,
//!   [`Satisfaction`] in `[0, 1]`),
//! * the [`Query`] structure carried through mediation,
//! * capability classes used to determine which providers can perform a query,
//! * virtual-time primitives used by the simulator,
//! * shared error and configuration types.
//!
//! The crate is deliberately free of allocation-policy logic: it only encodes
//! the *domains* the paper defines, including their invariants (clamping,
//! ordering, serialisation).

#![forbid(unsafe_code)]

pub mod capability;
pub mod config;
pub mod error;
pub mod float_ord;
pub mod id;
pub mod intention;
pub mod provider;
pub mod query;
pub mod satisfaction_value;
pub mod time;

pub use capability::{Capability, CapabilityRequirement, CapabilitySet, MAX_CAPABILITY_CLASSES};
pub use config::{AllocationPolicyKind, OmegaPolicy, SystemConfig};
pub use error::{SbqaError, SbqaResult};
pub use float_ord::f64_total_cmp;
pub use id::{ConsumerId, IdGenerator, ParticipantId, ProviderId, QueryId};
pub use intention::Intention;
pub use provider::{ProviderColumns, ProviderSnapshot};
pub use query::{Query, QueryBuilder, QueryClass, QueryOutcome};
pub use satisfaction_value::Satisfaction;
pub use time::{Duration, VirtualTime};
