//! Mediator-visible provider state: the per-provider snapshot and the
//! struct-of-arrays column store the registry keeps it in.
//!
//! [`ProviderSnapshot`] is the *row* view — what one provider looks like at
//! allocation time. It is the unit of serialization and the convenient shape
//! for tests and ad-hoc callers. The registry, however, stores the population
//! as [`ProviderColumns`]: one dense, slot-indexed column per field. Scoring
//! a merged candidate block then touches only the columns it needs (KnBest
//! reads utilization and id; capability checks read the mask column), one
//! cache-friendly linear pass instead of striding over 48-byte rows for a
//! single 8-byte field.

use serde::{Deserialize, Serialize};

use crate::capability::CapabilitySet;
use crate::id::ProviderId;
use crate::query::Query;

/// The mediator-visible state of a provider at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderSnapshot {
    /// The provider's identity.
    pub id: ProviderId,
    /// Capabilities the provider advertises.
    pub capabilities: CapabilitySet,
    /// Processing capacity in work units per virtual second.
    pub capacity: f64,
    /// Current utilization, defined as outstanding work divided by capacity
    /// (i.e. the virtual seconds of work already queued). KnBest uses this to
    /// keep the `kn` least-utilized providers.
    pub utilization: f64,
    /// Number of queries currently queued or running at the provider.
    pub queue_length: usize,
    /// `true` if the provider is currently online.
    pub online: bool,
}

impl ProviderSnapshot {
    /// Creates a snapshot for an idle, online provider.
    #[must_use]
    pub fn idle(id: ProviderId, capabilities: CapabilitySet, capacity: f64) -> Self {
        Self {
            id,
            capabilities,
            capacity: if capacity.is_finite() && capacity > 0.0 {
                capacity
            } else {
                1.0
            },
            utilization: 0.0,
            queue_length: 0,
            online: true,
        }
    }

    /// `true` if this provider can perform the given query and is online.
    #[must_use]
    pub fn can_perform(&self, query: &Query) -> bool {
        self.online && query.required.matched_by(self.capabilities)
    }
}

/// Struct-of-arrays storage for a population of provider snapshots.
///
/// Every column is indexed by *slot* (a dense position that is only stable
/// between mutations — the registry compacts with a swap-remove on
/// unregister). The row form of slot `s` is [`ProviderColumns::snapshot`];
/// the columns themselves are exposed as slices so hot paths can read just
/// the field they rank by.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProviderColumns {
    ids: Vec<ProviderId>,
    capabilities: Vec<CapabilitySet>,
    capacity: Vec<f64>,
    utilization: Vec<f64>,
    queue_length: Vec<usize>,
    online: Vec<bool>,
}

impl ProviderColumns {
    /// Creates an empty column store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if no provider is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends a snapshot, returning its slot.
    pub fn push(&mut self, snapshot: ProviderSnapshot) -> usize {
        let slot = self.ids.len();
        self.ids.push(snapshot.id);
        self.capabilities.push(snapshot.capabilities);
        self.capacity.push(snapshot.capacity);
        self.utilization.push(snapshot.utilization);
        self.queue_length.push(snapshot.queue_length);
        self.online.push(snapshot.online);
        slot
    }

    /// Overwrites every column of `slot` with the snapshot's fields.
    pub fn set(&mut self, slot: usize, snapshot: ProviderSnapshot) {
        self.ids[slot] = snapshot.id;
        self.capabilities[slot] = snapshot.capabilities;
        self.capacity[slot] = snapshot.capacity;
        self.utilization[slot] = snapshot.utilization;
        self.queue_length[slot] = snapshot.queue_length;
        self.online[slot] = snapshot.online;
    }

    /// Removes `slot` by moving the last row into it (column-wise
    /// `swap_remove`), mirroring the registry's slab compaction.
    pub fn swap_remove(&mut self, slot: usize) {
        self.ids.swap_remove(slot);
        self.capabilities.swap_remove(slot);
        self.capacity.swap_remove(slot);
        self.utilization.swap_remove(slot);
        self.queue_length.swap_remove(slot);
        self.online.swap_remove(slot);
    }

    /// Assembles the row view of `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn snapshot(&self, slot: usize) -> ProviderSnapshot {
        ProviderSnapshot {
            id: self.ids[slot],
            capabilities: self.capabilities[slot],
            capacity: self.capacity[slot],
            utilization: self.utilization[slot],
            queue_length: self.queue_length[slot],
            online: self.online[slot],
        }
    }

    /// Iterates the row views in slot order.
    pub fn snapshots(&self) -> impl Iterator<Item = ProviderSnapshot> + '_ {
        (0..self.len()).map(move |slot| self.snapshot(slot))
    }

    /// The id column, slot-indexed.
    #[must_use]
    pub fn ids(&self) -> &[ProviderId] {
        &self.ids
    }

    /// The capability-mask column, slot-indexed.
    #[must_use]
    pub fn capabilities(&self) -> &[CapabilitySet] {
        &self.capabilities
    }

    /// The capacity column, slot-indexed.
    #[must_use]
    pub fn capacity(&self) -> &[f64] {
        &self.capacity
    }

    /// The utilization column, slot-indexed.
    #[must_use]
    pub fn utilization(&self) -> &[f64] {
        &self.utilization
    }

    /// The queue-length column, slot-indexed.
    #[must_use]
    pub fn queue_length(&self) -> &[usize] {
        &self.queue_length
    }

    /// The online-flag column, slot-indexed.
    #[must_use]
    pub fn online(&self) -> &[bool] {
        &self.online
    }

    /// Updates the load columns of `slot` (utilization is sanitized to a
    /// finite non-negative value, exactly as the row form does).
    pub fn set_load(&mut self, slot: usize, utilization: f64, queue_length: usize) {
        self.utilization[slot] = if utilization.is_finite() && utilization > 0.0 {
            utilization
        } else {
            0.0
        };
        self.queue_length[slot] = queue_length;
    }

    /// Updates the online flag of `slot`.
    pub fn set_online(&mut self, slot: usize, online: bool) {
        self.online[slot] = online;
    }
}

// The column store serializes as the vector of row snapshots, so the wire
// format is identical to the array-of-structs layout it replaced.
impl Serialize for ProviderColumns {
    fn to_value(&self) -> serde::Value {
        let rows: Vec<ProviderSnapshot> = self.snapshots().collect();
        rows.to_value()
    }
}

impl Deserialize for ProviderColumns {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let rows = Vec::<ProviderSnapshot>::from_value(value)?;
        let mut columns = Self::new();
        for row in rows {
            columns.push(row);
        }
        Ok(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::Capability;

    fn caps(class: u8) -> CapabilitySet {
        CapabilitySet::singleton(Capability::new(class))
    }

    #[test]
    fn idle_snapshot_sanitises_capacity() {
        let snap = ProviderSnapshot::idle(ProviderId::new(1), CapabilitySet::ALL, -3.0);
        assert_eq!(snap.capacity, 1.0);
        assert!(snap.online);
        let ok = ProviderSnapshot::idle(ProviderId::new(1), CapabilitySet::ALL, 4.0);
        assert_eq!(ok.capacity, 4.0);
    }

    #[test]
    fn push_snapshot_round_trips_rows() {
        let mut columns = ProviderColumns::new();
        assert!(columns.is_empty());
        let a = ProviderSnapshot::idle(ProviderId::new(7), caps(0), 2.0);
        let mut b = ProviderSnapshot::idle(ProviderId::new(9), caps(1), 3.0);
        b.utilization = 4.5;
        b.queue_length = 2;
        b.online = false;
        assert_eq!(columns.push(a), 0);
        assert_eq!(columns.push(b), 1);
        assert_eq!(columns.len(), 2);
        assert_eq!(columns.snapshot(0), a);
        assert_eq!(columns.snapshot(1), b);
        let rows: Vec<ProviderSnapshot> = columns.snapshots().collect();
        assert_eq!(rows, vec![a, b]);
    }

    #[test]
    fn swap_remove_compacts_column_wise() {
        let mut columns = ProviderColumns::new();
        for id in 0..4u64 {
            columns.push(ProviderSnapshot::idle(ProviderId::new(id), caps(0), 1.0));
        }
        columns.swap_remove(1);
        assert_eq!(columns.len(), 3);
        // The former last row (id 3) moved into slot 1 across every column.
        assert_eq!(columns.ids()[1], ProviderId::new(3));
        assert_eq!(columns.snapshot(1).id, ProviderId::new(3));
    }

    #[test]
    fn load_and_online_setters_touch_single_columns() {
        let mut columns = ProviderColumns::new();
        columns.push(ProviderSnapshot::idle(ProviderId::new(1), caps(0), 1.0));
        columns.set_load(0, 6.25, 3);
        columns.set_online(0, false);
        assert_eq!(columns.utilization()[0], 6.25);
        assert_eq!(columns.queue_length()[0], 3);
        assert!(!columns.online()[0]);
        // Degenerate utilization is clamped to zero, as in the row form.
        columns.set_load(0, f64::NAN, 0);
        assert_eq!(columns.utilization()[0], 0.0);
    }

    #[test]
    fn serde_matches_the_row_vector_format() {
        let mut columns = ProviderColumns::new();
        for id in [3u64, 1, 2] {
            columns.push(ProviderSnapshot::idle(ProviderId::new(id), caps(0), 1.0));
        }
        let rows: Vec<ProviderSnapshot> = columns.snapshots().collect();
        assert_eq!(serde::to_string(&columns), serde::to_string(&rows));
        let back: ProviderColumns = serde::from_str(&serde::to_string(&columns)).unwrap();
        assert_eq!(back, columns);
    }
}
