//! Strongly-typed identifiers for participants and queries.
//!
//! The paper distinguishes *consumers* (which issue queries), *providers*
//! (which perform them) and the queries themselves. Using distinct newtypes
//! prevents the classic bug of indexing a provider table with a consumer id,
//! and keeps hash-map keys cheap (`u64`).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw integer.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer behind this identifier.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the identifier as a `usize`, convenient for dense
            /// vector indexing in the simulator.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a consumer (a query issuer; in the BOINC demo, a project).
    ConsumerId,
    "c"
);
define_id!(
    /// Identifier of a provider (a query performer; in the BOINC demo, a volunteer).
    ProviderId,
    "p"
);
define_id!(
    /// Identifier of a query (an independent unit of work submitted by a consumer).
    QueryId,
    "q"
);

/// Either side of a mediation: a consumer or a provider.
///
/// Several parts of the framework (satisfaction tracking, departure rules,
/// reporting) treat both kinds of participants uniformly; this enum lets them
/// do so without erasing the underlying type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ParticipantId {
    /// A consumer-side participant.
    Consumer(ConsumerId),
    /// A provider-side participant.
    Provider(ProviderId),
}

impl ParticipantId {
    /// Returns `true` if this participant is a consumer.
    #[must_use]
    pub const fn is_consumer(self) -> bool {
        matches!(self, ParticipantId::Consumer(_))
    }

    /// Returns `true` if this participant is a provider.
    #[must_use]
    pub const fn is_provider(self) -> bool {
        matches!(self, ParticipantId::Provider(_))
    }

    /// Returns the consumer id if this participant is a consumer.
    #[must_use]
    pub const fn as_consumer(self) -> Option<ConsumerId> {
        match self {
            ParticipantId::Consumer(c) => Some(c),
            ParticipantId::Provider(_) => None,
        }
    }

    /// Returns the provider id if this participant is a provider.
    #[must_use]
    pub const fn as_provider(self) -> Option<ProviderId> {
        match self {
            ParticipantId::Provider(p) => Some(p),
            ParticipantId::Consumer(_) => None,
        }
    }
}

impl From<ConsumerId> for ParticipantId {
    fn from(id: ConsumerId) -> Self {
        ParticipantId::Consumer(id)
    }
}

impl From<ProviderId> for ParticipantId {
    fn from(id: ProviderId) -> Self {
        ParticipantId::Provider(id)
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParticipantId::Consumer(c) => write!(f, "{c}"),
            ParticipantId::Provider(p) => write!(f, "{p}"),
        }
    }
}

/// A monotonically increasing generator of identifiers.
///
/// Used by workload generators and the simulator to mint fresh query ids and
/// participant ids without coordination.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdGenerator {
    next: u64,
}

impl IdGenerator {
    /// Creates a generator starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self { next: 0 }
    }

    /// Creates a generator that starts at `first`.
    #[must_use]
    pub const fn starting_at(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next raw identifier value.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Mints a fresh consumer id.
    pub fn next_consumer(&mut self) -> ConsumerId {
        ConsumerId::new(self.next_raw())
    }

    /// Mints a fresh provider id.
    pub fn next_provider(&mut self) -> ProviderId {
        ProviderId::new(self.next_raw())
    }

    /// Mints a fresh query id.
    pub fn next_query(&mut self) -> QueryId {
        QueryId::new(self.next_raw())
    }

    /// Number of identifiers handed out so far.
    #[must_use]
    pub const fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        let c = ConsumerId::new(7);
        assert_eq!(c.raw(), 7);
        assert_eq!(u64::from(c), 7);
        assert_eq!(ConsumerId::from(7u64), c);
        assert_eq!(c.index(), 7usize);
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(ConsumerId::new(3).to_string(), "c3");
        assert_eq!(ProviderId::new(4).to_string(), "p4");
        assert_eq!(QueryId::new(5).to_string(), "q5");
        assert_eq!(ParticipantId::from(ConsumerId::new(3)).to_string(), "c3");
        assert_eq!(ParticipantId::from(ProviderId::new(9)).to_string(), "p9");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(QueryId::new(1) < QueryId::new(2));
        assert!(ProviderId::new(10) > ProviderId::new(2));
    }

    #[test]
    fn participant_id_discriminates_sides() {
        let c: ParticipantId = ConsumerId::new(1).into();
        let p: ParticipantId = ProviderId::new(1).into();
        assert!(c.is_consumer());
        assert!(!c.is_provider());
        assert!(p.is_provider());
        assert_eq!(c.as_consumer(), Some(ConsumerId::new(1)));
        assert_eq!(c.as_provider(), None);
        assert_eq!(p.as_provider(), Some(ProviderId::new(1)));
        assert_eq!(p.as_consumer(), None);
        assert_ne!(c, p);
    }

    #[test]
    fn generator_is_monotonic_and_counts() {
        let mut gen = IdGenerator::new();
        let a = gen.next_query();
        let b = gen.next_query();
        assert!(a < b);
        assert_eq!(gen.issued(), 2);

        let mut gen = IdGenerator::starting_at(100);
        assert_eq!(gen.next_provider().raw(), 100);
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let id = ProviderId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: ProviderId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
