//! Virtual time for the discrete-event simulation.
//!
//! The paper's prototype used SimJava; our substitute keeps its own virtual
//! clock. Time is represented as a non-negative `f64` number of *virtual
//! seconds*; the unit is arbitrary but consistent across the workspace
//! (query service times, network latencies and inter-arrival times are all
//! expressed in it).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct VirtualTime(f64);

/// A span of virtual time, in seconds. Always non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Duration(f64);

impl VirtualTime {
    /// The origin of the simulation.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a time point; negative or NaN inputs are clamped to zero.
    #[must_use]
    pub fn new(seconds: f64) -> Self {
        if seconds.is_nan() || seconds < 0.0 {
            return Self::ZERO;
        }
        Self(seconds)
    }

    /// Seconds since the origin.
    #[must_use]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: VirtualTime) -> Duration {
        Duration::new(self.0 - earlier.0)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration; negative or NaN inputs are clamped to zero.
    #[must_use]
    pub fn new(seconds: f64) -> Self {
        if seconds.is_nan() || seconds < 0.0 {
            return Self::ZERO;
        }
        Self(seconds)
    }

    /// The span expressed in seconds.
    #[must_use]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// `true` if the duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scales the duration by a non-negative factor.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Duration {
        Duration::new(self.0 * factor)
    }
}

impl Eq for VirtualTime {}
impl Eq for Duration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> Ordering {
        crate::float_ord::f64_total_cmp(self.0, other.0)
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    fn cmp(&self, other: &Self) -> Ordering {
        crate::float_ord::f64_total_cmp(self.0, other.0)
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, rhs: Duration) -> Self::Output {
        VirtualTime::new(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for VirtualTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = Duration;

    fn sub(self, rhs: VirtualTime) -> Self::Output {
        Duration::new(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Self::Output {
        Duration::new(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Self {
        let mut total = Duration::ZERO;
        for d in iter {
            total += d;
        }
        total
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_rejects_negative_and_nan() {
        assert_eq!(VirtualTime::new(-1.0), VirtualTime::ZERO);
        assert_eq!(VirtualTime::new(f64::NAN), VirtualTime::ZERO);
        assert_eq!(Duration::new(-0.5), Duration::ZERO);
        assert_eq!(Duration::new(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = VirtualTime::new(10.0);
        let d = Duration::new(2.5);
        let t1 = t0 + d;
        assert_eq!(t1.seconds(), 12.5);
        assert_eq!((t1 - t0).seconds(), 2.5);
        assert_eq!(t1.since(t0).seconds(), 2.5);
        // Subtraction saturates rather than going negative.
        assert_eq!((t0 - t1), Duration::ZERO);
    }

    #[test]
    fn ordering_and_sums() {
        assert!(VirtualTime::new(1.0) < VirtualTime::new(2.0));
        let total: Duration = [Duration::new(1.0), Duration::new(2.0)].into_iter().sum();
        assert_eq!(total.seconds(), 3.0);
        assert!(Duration::new(0.0).is_zero());
        assert_eq!(Duration::new(2.0).scaled(1.5).seconds(), 3.0);
        assert_eq!(Duration::new(2.0).scaled(-1.0), Duration::ZERO);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = VirtualTime::ZERO;
        t += Duration::new(4.0);
        t += Duration::new(0.5);
        assert_eq!(t.seconds(), 4.5);
    }

    proptest! {
        #[test]
        fn prop_times_never_negative(raw in proptest::num::f64::ANY) {
            prop_assert!(VirtualTime::new(raw).seconds() >= 0.0);
            prop_assert!(Duration::new(raw).seconds() >= 0.0);
        }

        #[test]
        fn prop_add_then_subtract_round_trips(base in 0.0f64..1e9, delta in 0.0f64..1e6) {
            let t0 = VirtualTime::new(base);
            let d = Duration::new(delta);
            let diff = ((t0 + d) - t0).seconds();
            prop_assert!((diff - delta).abs() < 1e-6);
        }
    }
}
