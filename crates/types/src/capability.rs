//! Provider capabilities and query requirements.
//!
//! The paper assumes that for every incoming query `q` the mediator knows the
//! set `Pq` of providers *able* to perform it. How that set is obtained is
//! orthogonal to the allocation process (in BOINC it is "every volunteer that
//! installed the project's application"); we model it with a small capability
//! system: each provider advertises a [`CapabilitySet`], each query carries a
//! [`CapabilityRequirement`] — conjunctive ([`CapabilityRequirement::All`])
//! or disjunctive ([`CapabilityRequirement::Any`]) over a capability set —
//! and `Pq` is the set of providers whose capability set satisfies it.
//!
//! Capability classes are small integers, so membership checks are a bitmask
//! test and sets are `Copy`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of distinct capability classes supported by the bitmask
/// representation.
pub const MAX_CAPABILITY_CLASSES: u8 = 64;

/// A single capability class (e.g. "can run SETI@home work units",
/// "sells books", "answers SQL range queries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Capability(u8);

impl Capability {
    /// Creates a capability class.
    ///
    /// # Panics
    /// Panics if `class` is `>= MAX_CAPABILITY_CLASSES`; capability classes
    /// are created at configuration time, so a panic is the appropriate
    /// failure mode for a mis-configured experiment.
    #[must_use]
    pub fn new(class: u8) -> Self {
        assert!(
            class < MAX_CAPABILITY_CLASSES,
            "capability class {class} exceeds the supported maximum of {MAX_CAPABILITY_CLASSES}"
        );
        Self(class)
    }

    /// The class index.
    #[must_use]
    pub const fn class(self) -> u8 {
        self.0
    }

    fn bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

/// A set of capability classes, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CapabilitySet(u64);

impl CapabilitySet {
    /// The empty set.
    pub const EMPTY: CapabilitySet = CapabilitySet(0);

    /// The set containing every supported capability class.
    pub const ALL: CapabilitySet = CapabilitySet(u64::MAX);

    /// Creates an empty capability set.
    #[must_use]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set from an iterator of capabilities.
    #[must_use]
    pub fn from_capabilities<I: IntoIterator<Item = Capability>>(caps: I) -> Self {
        let mut set = Self::EMPTY;
        for cap in caps {
            set.insert(cap);
        }
        set
    }

    /// Creates a singleton set.
    #[must_use]
    pub fn singleton(cap: Capability) -> Self {
        let mut set = Self::EMPTY;
        set.insert(cap);
        set
    }

    /// Adds a capability to the set.
    pub fn insert(&mut self, cap: Capability) {
        self.0 |= cap.bit();
    }

    /// Removes a capability from the set.
    pub fn remove(&mut self, cap: Capability) {
        self.0 &= !cap.bit();
    }

    /// Returns `true` if the set contains `cap`.
    #[must_use]
    pub const fn contains(self, cap: Capability) -> bool {
        self.0 & (1u64 << cap.0) != 0
    }

    /// Returns `true` if the set contains every capability of `other`.
    #[must_use]
    pub const fn is_superset_of(self, other: CapabilitySet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of capabilities in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Union of two sets.
    #[must_use]
    pub const fn union(self, other: CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 | other.0)
    }

    /// Intersection of two sets.
    #[must_use]
    pub const fn intersection(self, other: CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 & other.0)
    }

    /// The raw 64-bit mask (bit `i` set ⇔ class `i` is in the set). Useful
    /// as a compact map key when counting providers per capability profile.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw mask produced by [`CapabilitySet::bits`].
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Iterates over the capabilities in ascending class order.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        (0..MAX_CAPABILITY_CLASSES).filter_map(move |class| {
            let cap = Capability(class);
            if self.contains(cap) {
                Some(cap)
            } else {
                None
            }
        })
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<T: IntoIterator<Item = Capability>>(iter: T) -> Self {
        Self::from_capabilities(iter)
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for cap in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{cap}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// What a query demands from a provider's advertised [`CapabilitySet`].
///
/// The single-capability queries of the original model are the trivial
/// one-bit case ([`CapabilityRequirement::single`]); multi-capability queries
/// either require every listed class (`All`, conjunctive — "can run the
/// application *and* has the dataset") or at least one of them (`Any`,
/// disjunctive — "speaks one of these protocols").
///
/// Degenerate empty sets follow the usual quantifier semantics: `All` over
/// the empty set is satisfied by every provider, `Any` over the empty set by
/// none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapabilityRequirement {
    /// The provider must advertise every capability in the set.
    All(CapabilitySet),
    /// The provider must advertise at least one capability in the set.
    Any(CapabilitySet),
}

impl CapabilityRequirement {
    /// The requirement equivalent to the original single-capability model.
    #[must_use]
    pub fn single(cap: Capability) -> Self {
        CapabilityRequirement::All(CapabilitySet::singleton(cap))
    }

    /// The capability classes the requirement mentions.
    #[must_use]
    pub const fn classes(self) -> CapabilitySet {
        match self {
            CapabilityRequirement::All(set) | CapabilityRequirement::Any(set) => set,
        }
    }

    /// `true` if a provider advertising `caps` satisfies the requirement.
    #[must_use]
    pub const fn matched_by(self, caps: CapabilitySet) -> bool {
        match self {
            CapabilityRequirement::All(set) => caps.is_superset_of(set),
            CapabilityRequirement::Any(set) => !caps.intersection(set).is_empty(),
        }
    }

    /// The single required capability, when the requirement is the trivial
    /// one-bit case (`All` and `Any` coincide on singletons).
    #[must_use]
    pub fn as_single(self) -> Option<Capability> {
        let set = self.classes();
        if set.len() == 1 {
            set.iter().next()
        } else {
            None
        }
    }

    /// `true` for conjunctive (`All`) semantics.
    #[must_use]
    pub const fn is_conjunctive(self) -> bool {
        matches!(self, CapabilityRequirement::All(_))
    }
}

impl From<Capability> for CapabilityRequirement {
    fn from(cap: Capability) -> Self {
        Self::single(cap)
    }
}

impl fmt::Display for CapabilityRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapabilityRequirement::All(set) => write!(f, "all{set}"),
            CapabilityRequirement::Any(set) => write!(f, "any{set}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = CapabilitySet::new();
        let a = Capability::new(3);
        let b = Capability::new(17);
        assert!(set.is_empty());
        set.insert(a);
        set.insert(b);
        assert!(set.contains(a));
        assert!(set.contains(b));
        assert!(!set.contains(Capability::new(5)));
        assert_eq!(set.len(), 2);
        set.remove(a);
        assert!(!set.contains(a));
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn capability_class_out_of_range_panics() {
        let _ = Capability::new(64);
    }

    #[test]
    fn superset_union_intersection() {
        let a = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(1)]);
        let b = CapabilitySet::singleton(Capability::new(1));
        assert!(a.is_superset_of(b));
        assert!(!b.is_superset_of(a));
        assert_eq!(a.union(b), a);
        assert_eq!(a.intersection(b), b);
        assert!(CapabilitySet::ALL.is_superset_of(a));
        assert!(a.is_superset_of(CapabilitySet::EMPTY));
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let set: CapabilitySet = [Capability::new(9), Capability::new(2), Capability::new(40)]
            .into_iter()
            .collect();
        let classes: Vec<u8> = set.iter().map(Capability::class).collect();
        assert_eq!(classes, vec![2, 9, 40]);
        assert_eq!(set.to_string(), "{cap2, cap9, cap40}");
    }

    #[test]
    fn requirement_matching_follows_quantifier_semantics() {
        let caps = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(2)]);
        let both = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(2)]);
        let mixed = CapabilitySet::from_capabilities([Capability::new(2), Capability::new(5)]);
        let disjoint = CapabilitySet::singleton(Capability::new(7));

        assert!(CapabilityRequirement::All(caps).matched_by(both));
        assert!(!CapabilityRequirement::All(caps).matched_by(mixed));
        assert!(CapabilityRequirement::Any(caps).matched_by(mixed));
        assert!(!CapabilityRequirement::Any(caps).matched_by(disjoint));

        // Empty sets: All matches everything, Any matches nothing.
        assert!(CapabilityRequirement::All(CapabilitySet::EMPTY).matched_by(disjoint));
        assert!(!CapabilityRequirement::Any(CapabilitySet::EMPTY).matched_by(disjoint));
    }

    #[test]
    fn requirement_singleton_case_is_the_original_model() {
        let cap = Capability::new(3);
        let req = CapabilityRequirement::single(cap);
        assert!(req.is_conjunctive());
        assert_eq!(req.as_single(), Some(cap));
        assert_eq!(CapabilityRequirement::from(cap), req);
        assert!(req.matched_by(CapabilitySet::singleton(cap)));
        assert!(!req.matched_by(CapabilitySet::singleton(Capability::new(4))));
        // Singletons make All and Any coincide.
        let any = CapabilityRequirement::Any(CapabilitySet::singleton(cap));
        assert_eq!(any.as_single(), Some(cap));
        for caps in [CapabilitySet::EMPTY, CapabilitySet::ALL] {
            assert_eq!(req.matched_by(caps), any.matched_by(caps));
        }
        // Multi-class requirements are not singletons.
        let multi = CapabilityRequirement::All(CapabilitySet::from_capabilities([
            Capability::new(0),
            Capability::new(1),
        ]));
        assert_eq!(multi.as_single(), None);
        assert_eq!(multi.to_string(), "all{cap0, cap1}");
        assert_eq!(
            CapabilityRequirement::Any(multi.classes()).to_string(),
            "any{cap0, cap1}"
        );
    }

    #[test]
    fn bits_round_trip() {
        let set = CapabilitySet::from_capabilities([Capability::new(1), Capability::new(63)]);
        assert_eq!(CapabilitySet::from_bits(set.bits()), set);
    }

    proptest! {
        #[test]
        fn prop_requirement_matches_bruteforce(
            req_classes in proptest::collection::vec(0u8..64, 0..6),
            cap_classes in proptest::collection::vec(0u8..64, 0..10),
            conjunctive in proptest::bool::ANY,
        ) {
            let set = CapabilitySet::from_capabilities(req_classes.iter().copied().map(Capability::new));
            let caps = CapabilitySet::from_capabilities(cap_classes.iter().copied().map(Capability::new));
            let req = if conjunctive {
                CapabilityRequirement::All(set)
            } else {
                CapabilityRequirement::Any(set)
            };
            let expected = if conjunctive {
                set.iter().all(|c| caps.contains(c))
            } else {
                set.iter().any(|c| caps.contains(c))
            };
            prop_assert_eq!(req.matched_by(caps), expected);
        }

        #[test]
        fn prop_insert_then_contains(classes in proptest::collection::vec(0u8..64, 0..20)) {
            let caps: Vec<Capability> = classes.iter().copied().map(Capability::new).collect();
            let set = CapabilitySet::from_capabilities(caps.iter().copied());
            for cap in &caps {
                prop_assert!(set.contains(*cap));
            }
            prop_assert_eq!(set.iter().count(), set.len());
        }

        #[test]
        fn prop_union_is_superset_of_both(
            a in proptest::collection::vec(0u8..64, 0..10),
            b in proptest::collection::vec(0u8..64, 0..10),
        ) {
            let sa = CapabilitySet::from_capabilities(a.into_iter().map(Capability::new));
            let sb = CapabilitySet::from_capabilities(b.into_iter().map(Capability::new));
            let u = sa.union(sb);
            prop_assert!(u.is_superset_of(sa));
            prop_assert!(u.is_superset_of(sb));
            prop_assert!(sa.is_superset_of(sa.intersection(sb)));
        }
    }
}
