//! Provider capabilities and query requirements.
//!
//! The paper assumes that for every incoming query `q` the mediator knows the
//! set `Pq` of providers *able* to perform it. How that set is obtained is
//! orthogonal to the allocation process (in BOINC it is "every volunteer that
//! installed the project's application"); we model it with a small capability
//! system: each provider advertises a [`CapabilitySet`], each query requires a
//! single [`Capability`], and `Pq` is the set of providers whose capability
//! set contains the requirement.
//!
//! Capability classes are small integers, so membership checks are a bitmask
//! test and sets are `Copy`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of distinct capability classes supported by the bitmask
/// representation.
pub const MAX_CAPABILITY_CLASSES: u8 = 64;

/// A single capability class (e.g. "can run SETI@home work units",
/// "sells books", "answers SQL range queries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Capability(u8);

impl Capability {
    /// Creates a capability class.
    ///
    /// # Panics
    /// Panics if `class` is `>= MAX_CAPABILITY_CLASSES`; capability classes
    /// are created at configuration time, so a panic is the appropriate
    /// failure mode for a mis-configured experiment.
    #[must_use]
    pub fn new(class: u8) -> Self {
        assert!(
            class < MAX_CAPABILITY_CLASSES,
            "capability class {class} exceeds the supported maximum of {MAX_CAPABILITY_CLASSES}"
        );
        Self(class)
    }

    /// The class index.
    #[must_use]
    pub const fn class(self) -> u8 {
        self.0
    }

    fn bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

/// A set of capability classes, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CapabilitySet(u64);

impl CapabilitySet {
    /// The empty set.
    pub const EMPTY: CapabilitySet = CapabilitySet(0);

    /// The set containing every supported capability class.
    pub const ALL: CapabilitySet = CapabilitySet(u64::MAX);

    /// Creates an empty capability set.
    #[must_use]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set from an iterator of capabilities.
    #[must_use]
    pub fn from_capabilities<I: IntoIterator<Item = Capability>>(caps: I) -> Self {
        let mut set = Self::EMPTY;
        for cap in caps {
            set.insert(cap);
        }
        set
    }

    /// Creates a singleton set.
    #[must_use]
    pub fn singleton(cap: Capability) -> Self {
        let mut set = Self::EMPTY;
        set.insert(cap);
        set
    }

    /// Adds a capability to the set.
    pub fn insert(&mut self, cap: Capability) {
        self.0 |= cap.bit();
    }

    /// Removes a capability from the set.
    pub fn remove(&mut self, cap: Capability) {
        self.0 &= !cap.bit();
    }

    /// Returns `true` if the set contains `cap`.
    #[must_use]
    pub const fn contains(self, cap: Capability) -> bool {
        self.0 & (1u64 << cap.0) != 0
    }

    /// Returns `true` if the set contains every capability of `other`.
    #[must_use]
    pub const fn is_superset_of(self, other: CapabilitySet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of capabilities in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Union of two sets.
    #[must_use]
    pub const fn union(self, other: CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 | other.0)
    }

    /// Intersection of two sets.
    #[must_use]
    pub const fn intersection(self, other: CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 & other.0)
    }

    /// Iterates over the capabilities in ascending class order.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        (0..MAX_CAPABILITY_CLASSES).filter_map(move |class| {
            let cap = Capability(class);
            if self.contains(cap) {
                Some(cap)
            } else {
                None
            }
        })
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<T: IntoIterator<Item = Capability>>(iter: T) -> Self {
        Self::from_capabilities(iter)
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for cap in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{cap}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = CapabilitySet::new();
        let a = Capability::new(3);
        let b = Capability::new(17);
        assert!(set.is_empty());
        set.insert(a);
        set.insert(b);
        assert!(set.contains(a));
        assert!(set.contains(b));
        assert!(!set.contains(Capability::new(5)));
        assert_eq!(set.len(), 2);
        set.remove(a);
        assert!(!set.contains(a));
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn capability_class_out_of_range_panics() {
        let _ = Capability::new(64);
    }

    #[test]
    fn superset_union_intersection() {
        let a = CapabilitySet::from_capabilities([Capability::new(0), Capability::new(1)]);
        let b = CapabilitySet::singleton(Capability::new(1));
        assert!(a.is_superset_of(b));
        assert!(!b.is_superset_of(a));
        assert_eq!(a.union(b), a);
        assert_eq!(a.intersection(b), b);
        assert!(CapabilitySet::ALL.is_superset_of(a));
        assert!(a.is_superset_of(CapabilitySet::EMPTY));
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let set: CapabilitySet = [Capability::new(9), Capability::new(2), Capability::new(40)]
            .into_iter()
            .collect();
        let classes: Vec<u8> = set.iter().map(Capability::class).collect();
        assert_eq!(classes, vec![2, 9, 40]);
        assert_eq!(set.to_string(), "{cap2, cap9, cap40}");
    }

    proptest! {
        #[test]
        fn prop_insert_then_contains(classes in proptest::collection::vec(0u8..64, 0..20)) {
            let caps: Vec<Capability> = classes.iter().copied().map(Capability::new).collect();
            let set = CapabilitySet::from_capabilities(caps.iter().copied());
            for cap in &caps {
                prop_assert!(set.contains(*cap));
            }
            prop_assert_eq!(set.iter().count(), set.len());
        }

        #[test]
        fn prop_union_is_superset_of_both(
            a in proptest::collection::vec(0u8..64, 0..10),
            b in proptest::collection::vec(0u8..64, 0..10),
        ) {
            let sa = CapabilitySet::from_capabilities(a.into_iter().map(Capability::new));
            let sb = CapabilitySet::from_capabilities(b.into_iter().map(Capability::new));
            let u = sa.union(sb);
            prop_assert!(u.is_superset_of(sa));
            prop_assert!(u.is_superset_of(sb));
            prop_assert!(sa.is_superset_of(sa.intersection(sb)));
        }
    }
}
