//! Micro-benchmark: the sharded mediation service's ingest path.
//!
//! Two questions:
//!
//! * **batch size vs latency** — `submit_batch` amortizes the routing scratch
//!   and per-shard buffers over a drain; the `ingest/batch=N` series measures
//!   the per-query cost of draining chunks of 1, 16, 128 and 1024 queries
//!   through a 1-shard and a 4-shard service, which is the synchronous core
//!   of the trade-off the threaded front exposes (bigger producer chunks →
//!   fewer channel sends, longer queueing);
//! * **routing overhead** — `router/assign` pins the pure cost of the seeded
//!   hash that places a query, which must stay a few nanoseconds so the thin
//!   router never becomes the bottleneck of a multi-core drain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_core::StaticIntentions;
use sbqa_service::{ShardRouter, ShardedMediator};
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
    VirtualTime,
};

const PROVIDERS: u64 = 10_000;
const CLASSES: u8 = 8;

fn capabilities(i: u64) -> CapabilitySet {
    let base = (i % u64::from(CLASSES)) as u8;
    let mut caps = CapabilitySet::singleton(Capability::new(base));
    if i.is_multiple_of(3) {
        caps.insert(Capability::new((base + 1) % CLASSES));
    }
    caps
}

fn service(shards: usize) -> ShardedMediator {
    let mut service =
        ShardedMediator::sbqa(SystemConfig::default().with_knbest(20, 4), 42, shards).unwrap();
    for p in 0..PROVIDERS {
        service.register_provider(ProviderId::new(p), capabilities(p), 1.0 + (p % 4) as f64);
    }
    service.register_consumer(ConsumerId::new(1));
    service
}

fn stream(count: usize) -> Vec<Query> {
    (0..count as u64)
        .map(|id| {
            Query::builder(
                QueryId::new(id),
                ConsumerId::new(1),
                Capability::new((id % u64::from(CLASSES)) as u8),
            )
            .issued_at(VirtualTime::new(id as f64))
            .build()
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6));
    let mut group = c.benchmark_group("ingest");
    for shards in [1usize, 4] {
        let mut svc = service(shards);
        for batch in [1usize, 16, 128, 1024] {
            let queries = stream(batch);
            group.bench_function(
                BenchmarkId::new(format!("shards={shards}"), format!("batch={batch}")),
                |b| {
                    b.iter(|| {
                        let report = svc.submit_batch(black_box(&queries), &oracle, |_, _, _| {});
                        black_box(report.submitted())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let router = ShardRouter::new(8, 42);
    c.bench_function("router/assign", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = id.wrapping_add(1);
            black_box(router.shard_of_query(QueryId::new(black_box(id))))
        });
    });
}

criterion_group!(benches, bench_ingest, bench_router);
criterion_main!(benches);
