//! Micro-benchmark: the requirement-keyed candidate-plan cache.
//!
//! PR 6 made the postings *merge* the dominant cost of multi-capability
//! resolution (at 100k providers: ~10µs for 2-way intersections, ~244µs for
//! 4-way unions). The plan cache memoizes the id-sorted merge result per
//! `CapabilityRequirement` and invalidates it with per-class epoch counters,
//! so a warm hit is an O(#classes) generation check plus a borrowed view —
//! no merge work at all. The series here prove the three claims the cache
//! makes:
//!
//! * `resolve/cold_*` vs `resolve/warm_*` — the same merge queries with the
//!   cache disabled (capacity 0, every resolution merges into the shared
//!   scratch) and enabled (every resolution after the first is a hit). The
//!   warm series must be ≥10× faster than the cold one at 100k providers;
//!   in practice it is nanoseconds against tens-to-hundreds of microseconds.
//! * `churn/load_*` vs `churn/membership_*` — a registry mutation between
//!   every resolution. Load updates do **not** bump class epochs, so the
//!   cache keeps hitting; membership churn (an online/offline flip inside a
//!   mentioned class) bumps the epoch and forces a stale rebuild, which
//!   costs the same as a cold merge plus the validity bookkeeping. The gap
//!   between the two is the cache's selling point for SbQA workloads, where
//!   load changes vastly outnumber membership changes.
//! * `dedup/*` — full `submit_batch` mediation of multi-capability batches
//!   with (a) plan cache + batch dedup (the default), (b) plan cache but no
//!   batch memo, and (c) neither. Batches repeat a handful of requirements,
//!   as real consumer populations do, so (a) resolves each distinct
//!   requirement once per validity window while (c) merges per query.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_core::allocator::StaticIntentions;
use sbqa_core::{Mediator, ProviderRegistry};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

/// Number of capability classes the synthetic population spreads over.
const CLASSES: u8 = 8;

/// A query requiring `width` consecutive classes starting at 3, with `All`
/// (intersection) or `Any` (union) semantics — the same windows the
/// `registry` bench measures, so cold numbers line up across benches.
fn merge_query(width: u8, conjunctive: bool) -> Query {
    let set = CapabilitySet::from_capabilities(
        (0..width).map(|offset| Capability::new((3 + offset) % CLASSES)),
    );
    let required = if conjunctive {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    };
    Query::requiring(QueryId::new(1), ConsumerId::new(1), required)
        .replication(2)
        .build()
}

/// Overlapping capability profiles, identical to the `registry` bench.
fn capabilities(i: usize) -> CapabilitySet {
    let base = (i % CLASSES as usize) as u8;
    let mut caps = CapabilitySet::singleton(Capability::new(base));
    if i.is_multiple_of(3) {
        caps.insert(Capability::new((base + 1) % CLASSES));
    }
    if i.is_multiple_of(5) {
        caps.insert(Capability::new((base + 2) % CLASSES));
    }
    if i.is_multiple_of(15) {
        caps.insert(Capability::new((base + 3) % CLASSES));
    }
    caps
}

fn registry(n: usize) -> ProviderRegistry {
    let mut registry = ProviderRegistry::new();
    for i in 0..n {
        registry.register(ProviderId::new(i as u64), capabilities(i), 1.0);
    }
    registry
}

fn merge_cases() -> [(&'static str, Query); 4] {
    [
        ("all_2way", merge_query(2, true)),
        ("all_4way", merge_query(4, true)),
        ("any_2way", merge_query(2, false)),
        ("any_4way", merge_query(4, false)),
    ]
}

/// Cold (cache off) vs warm (cache on, steady-state hits) resolution.
fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");

    for size in [10_000usize, 100_000] {
        for (label, q) in merge_cases() {
            let mut cold = registry(size);
            cold.set_plan_cache_capacity(0);
            group.bench_function(
                BenchmarkId::new(format!("resolve/cold_{label}"), size),
                |b| {
                    b.iter(|| {
                        let candidates = cold.candidates(black_box(&q));
                        black_box(candidates.len())
                    });
                },
            );

            let mut warm = registry(size);
            // Populate the entry once so the measured loop is pure hits.
            let _ = warm.candidates(&q);
            group.bench_function(
                BenchmarkId::new(format!("resolve/warm_{label}"), size),
                |b| {
                    b.iter(|| {
                        let candidates = warm.candidates(black_box(&q));
                        black_box(candidates.len())
                    });
                },
            );
        }
    }

    group.finish();
}

/// A registry mutation between every resolution: load churn keeps hitting
/// (epochs untouched), membership churn forces a stale rebuild per hit.
fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");

    for size in [10_000usize, 100_000] {
        for (label, q) in [
            ("all_4way", merge_query(4, true)),
            ("any_4way", merge_query(4, false)),
        ] {
            // Provider 3 advertises base class 3 (and, being a multiple of
            // 3, class 4) — inside the merge window, so flipping it online
            // and offline bumps the epochs of mentioned classes.
            let churned = ProviderId::new(3);

            let mut reg = registry(size);
            let _ = reg.candidates(&q);
            group.bench_function(BenchmarkId::new(format!("churn/load_{label}"), size), |b| {
                let mut utilization = 0.0f64;
                b.iter(|| {
                    utilization += 0.5;
                    reg.update_load(churned, utilization, 1).unwrap();
                    let candidates = reg.candidates(black_box(&q));
                    black_box(candidates.len())
                });
            });

            let mut reg = registry(size);
            let _ = reg.candidates(&q);
            group.bench_function(
                BenchmarkId::new(format!("churn/membership_{label}"), size),
                |b| {
                    let mut online = false;
                    b.iter(|| {
                        reg.set_online(churned, online).unwrap();
                        online = !online;
                        let candidates = reg.candidates(black_box(&q));
                        black_box(candidates.len())
                    });
                },
            );
        }
    }

    group.finish();
}

/// Full mediation of multi-capability batches under the three cache
/// configurations. Each batch cycles over four distinct requirements, so
/// with dedup every repetition after the first per requirement rides the
/// batch memo, and without any cache every query pays its merge.
fn bench_dedup(c: &mut Criterion) {
    type MediatorBuilder = Box<dyn Fn() -> Mediator>;

    let mut group = c.benchmark_group("cache");
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.3));

    let build = |size: usize| {
        let mut mediator = Mediator::sbqa(SystemConfig::default(), 42).unwrap();
        for i in 0..size {
            mediator.register_provider(ProviderId::new(i as u64), capabilities(i), 1.0);
        }
        mediator.register_consumer(ConsumerId::new(1));
        mediator
    };
    let batch_of = |len: usize| -> Vec<Query> {
        (0..len)
            .map(|i| {
                let template = &merge_cases()[i % 4].1;
                Query::requiring(
                    QueryId::new(i as u64),
                    ConsumerId::new(1),
                    template.required,
                )
                .replication(2)
                .build()
            })
            .collect()
    };

    for size in [10_000usize, 100_000] {
        for batch_len in [16usize, 64, 256] {
            let batch = batch_of(batch_len);
            let configs: [(&str, MediatorBuilder); 3] = [
                (
                    "dedup_on",
                    Box::new(move || build(size)), // cache + memo: the default
                ),
                (
                    "dedup_off",
                    Box::new(move || {
                        let mut m = build(size);
                        m.set_batch_dedup(false);
                        m
                    }),
                ),
                (
                    "uncached",
                    Box::new(move || {
                        let mut m = build(size);
                        m.set_plan_cache_capacity(0);
                        m
                    }),
                ),
            ];
            for (label, make) in configs {
                let mut mediator = make();
                group.bench_function(
                    BenchmarkId::new(format!("dedup/{label}/batch_{batch_len}"), size),
                    |b| {
                        b.iter(|| {
                            let mut selected = 0usize;
                            let report = mediator.submit_batch(
                                black_box(&batch),
                                &oracle,
                                |_, _, result| {
                                    if let Ok(decision) = result {
                                        selected += decision.selected.len();
                                    }
                                },
                            );
                            black_box((report.mediated, selected))
                        });
                    },
                );
            }
        }
    }

    group.finish();
}

criterion_group!(benches, bench_resolve, bench_churn, bench_dedup);
criterion_main!(benches);
