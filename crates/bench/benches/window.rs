//! Micro-benchmark: satisfaction bookkeeping cost.
//!
//! Every mediation updates one consumer window and `kn` provider windows, and
//! the ω computation reads both sides' satisfaction back. This bench measures
//! the cost of those updates and reads as the window length `k` grows, which
//! is what the `scenario_k_sweep` ablation trades against satisfaction
//! stability.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_satisfaction::{ConsumerSatisfaction, ProviderSatisfaction, SatisfactionRegistry};
use sbqa_types::{ConsumerId, Intention, ProviderId, QueryId};

fn bench_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction");

    for k in [10usize, 50, 250, 1000] {
        group.bench_with_input(
            BenchmarkId::new("provider_record_and_read", k),
            &k,
            |b, k| {
                let mut tracker = ProviderSatisfaction::new(*k);
                // Pre-fill the window so the benchmark measures steady state.
                for i in 0..*k {
                    tracker.record_proposal(
                        QueryId::new(i as u64),
                        Intention::new(0.3),
                        i % 2 == 0,
                    );
                }
                let mut next = *k as u64;
                b.iter(|| {
                    tracker.record_proposal(
                        QueryId::new(next),
                        black_box(Intention::new(0.4)),
                        true,
                    );
                    next += 1;
                    black_box(tracker.satisfaction())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("consumer_record_and_read", k),
            &k,
            |b, k| {
                let mut tracker = ConsumerSatisfaction::new(*k);
                for i in 0..*k {
                    tracker.record_outcome(
                        QueryId::new(i as u64),
                        1,
                        &[(ProviderId::new(1), Intention::new(0.5))],
                    );
                }
                let mut next = *k as u64;
                b.iter(|| {
                    tracker.record_outcome(
                        QueryId::new(next),
                        1,
                        &[(ProviderId::new(1), black_box(Intention::new(0.6)))],
                    );
                    next += 1;
                    black_box(tracker.satisfaction())
                });
            },
        );
    }

    group.bench_function("registry_record_mediation/kn=4", |b| {
        let mut registry = SatisfactionRegistry::new(50);
        let proposals: Vec<(ProviderId, Intention, bool)> = (0..4)
            .map(|i| (ProviderId::new(i), Intention::new(0.2), i == 0))
            .collect();
        let selected = vec![(ProviderId::new(0), Intention::new(0.8))];
        let mut q = 0u64;
        b.iter(|| {
            registry.record_mediation(
                QueryId::new(q),
                ConsumerId::new(1),
                1,
                black_box(&selected),
                black_box(&proposals),
            );
            q += 1;
        });
    });

    group.finish();
}

criterion_group!(benches, bench_windows);
criterion_main!(benches);
