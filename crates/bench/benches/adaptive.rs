//! Micro-benchmark: adaptive-`kn` controller overhead on the mediation hot
//! path.
//!
//! The controller's per-query work is one width lookup before the KnBest
//! draw and one gap-sample push after the mediation; per batch it adds one
//! adaptation round. The acceptance bar is **< 1 % of `submit_batch`**: the
//! `submit_batch/adaptive-*` series must sit within a percent of the
//! `submit_batch/static` series on the same population, batch and seed. The
//! standalone controller series pin the costs of the controller's own
//! operations (`observe`, `adapt`, `kn_for_query`) in nanoseconds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_core::{KnController, KnControllerConfig, Mediator, StaticIntentions};
use sbqa_satisfaction::GapSample;
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
};

const PROVIDERS: u64 = 10_000;
const BATCH: usize = 256;

fn build_mediator(adaptive: bool) -> Mediator {
    let config = SystemConfig::default().with_knbest(20, 4);
    let mut mediator = Mediator::sbqa(config, 42).unwrap();
    for p in 0..PROVIDERS {
        mediator.register_provider(
            ProviderId::new(p),
            CapabilitySet::singleton(Capability::new((p % 8) as u8)),
            1.0 + (p % 4) as f64,
        );
    }
    for c in 1..=4u64 {
        mediator.register_consumer(ConsumerId::new(c));
    }
    if adaptive {
        // Pinned width (min = max = the static kn): the controller performs
        // every per-query lookup, every gap-sample push and every adaptation
        // round, but the KnBest draw stays identical to the static build —
        // the measured difference is purely the controller tax.
        mediator.enable_adaptive_kn(KnControllerConfig {
            initial_kn: 4,
            min_kn: 4,
            max_kn: 4,
            ..KnControllerConfig::default()
        });
    }
    mediator
}

fn batch() -> Vec<Query> {
    (0..BATCH as u64)
        .map(|id| {
            Query::builder(
                QueryId::new(id),
                ConsumerId::new(1 + id % 4),
                Capability::new((id % 8) as u8),
            )
            .build()
        })
        .collect()
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");
    let queries = batch();
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.3));

    // The overhead pair: identical population, stream and seed; the only
    // difference is the controller. Their ratio is the controller tax.
    for (label, adaptive) in [("static", false), ("adaptive", true)] {
        group.bench_with_input(
            BenchmarkId::new("submit_batch", label),
            &adaptive,
            |b, &adaptive| {
                let mut mediator = build_mediator(adaptive);
                // Warm the scratch buffers and (when enabled) the controller
                // state out of the measurement.
                mediator.submit_batch(&queries, &oracle, |_, _, _| {});
                b.iter(|| {
                    let report = mediator.submit_batch(black_box(&queries), &oracle, |_, _, _| {});
                    black_box(report)
                });
            },
        );
    }

    // A controller under live adaptation pressure (gap far outside the
    // band) pays the same per-query price as a converged one.
    group.bench_function("submit_batch/adaptive-moving", |b| {
        let mut mediator = build_mediator(true);
        let hostile =
            StaticIntentions::new().with_defaults(Intention::new(0.9), Intention::new(-0.9));
        mediator.submit_batch(&queries, &hostile, |_, _, _| {});
        b.iter(|| {
            let report = mediator.submit_batch(black_box(&queries), &hostile, |_, _, _| {});
            black_box(report)
        });
    });

    // Standalone controller costs.
    group.bench_function("controller/observe", |b| {
        let mut controller = KnController::new(KnControllerConfig::default()).unwrap();
        let sample = GapSample::new(0.8, 0.3);
        b.iter(|| controller.observe(black_box(3), black_box(sample)));
    });
    group.bench_function("controller/adapt_8_classes", |b| {
        let mut controller = KnController::new(KnControllerConfig::default()).unwrap();
        for class in 0..8u8 {
            controller.observe(class, GapSample::new(0.6, 0.4));
        }
        b.iter(|| {
            // Keep every class fresh so adapt() always does full work.
            for class in 0..8u8 {
                controller.observe(class, GapSample::new(0.6, 0.4));
            }
            black_box(controller.adapt())
        });
    });
    group.bench_function("controller/kn_for_query", |b| {
        let mut controller = KnController::new(KnControllerConfig::default()).unwrap();
        let query = Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(3)).build();
        controller.observe(3, GapSample::new(0.5, 0.5));
        b.iter(|| black_box(controller.kn_for_query(black_box(&query))));
    });

    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
