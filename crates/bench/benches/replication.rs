//! Micro-benchmarks of the replication subsystem.
//!
//! Three claims the delta log makes, each measured directly:
//!
//! * `log/append` — appending one mutation record to the log: a sequence
//!   increment and a `Vec` push (tens of nanoseconds), which is the entire
//!   cost a registry mutation pays on top of its own work when a sink is
//!   attached.
//! * `replay/churn_1k` — applying a 1k-record churn tail to a standby
//!   registry: the per-record cost of catch-up and promotion replay.
//! * `submit/hook_{off,on}` — the acceptance series: one load update (the
//!   mutation that emits a delta when the hook is armed) plus one
//!   `submit_in_place` mediation, against 10k- and 100k-provider
//!   registries, with and without a delta sink attached. The hook-on series
//!   must stay within 5% of hook-off at 100k providers — mediation work
//!   dwarfs the append, and a disabled hook is a single branch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_core::allocator::StaticIntentions;
use sbqa_core::{Mediator, ProviderRegistry, RegistryDelta};
use sbqa_replication::{DeltaLog, SharedDeltaLog};
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
};

/// Number of capability classes the synthetic population spreads over.
const CLASSES: u8 = 8;

/// Overlapping capability profiles, identical to the `registry` bench.
fn capabilities(i: usize) -> CapabilitySet {
    let base = (i % CLASSES as usize) as u8;
    let mut caps = CapabilitySet::singleton(Capability::new(base));
    if i.is_multiple_of(3) {
        caps.insert(Capability::new((base + 1) % CLASSES));
    }
    if i.is_multiple_of(5) {
        caps.insert(Capability::new((base + 2) % CLASSES));
    }
    caps
}

fn registry(n: usize) -> ProviderRegistry {
    let mut registry = ProviderRegistry::new();
    for i in 0..n {
        registry.register(ProviderId::new(i as u64), capabilities(i), 1.0);
    }
    registry
}

fn mediator(n: usize) -> Mediator {
    let mut mediator = Mediator::sbqa(SystemConfig::default().with_knbest(20, 4), 42)
        .expect("default config validates");
    for i in 0..n {
        mediator.register_provider(ProviderId::new(i as u64), capabilities(i), 1.0);
    }
    mediator.register_consumer(ConsumerId::new(1));
    mediator
}

fn query() -> Query {
    Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(3))
        .replication(2)
        .build()
}

/// Appending one mutation record to a plain log.
fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    let delta = RegistryDelta::UpdateLoad {
        id: ProviderId::new(7),
        utilization: 1.5,
        queue_length: 3,
    };
    let mut log = DeltaLog::new();
    group.bench_function("log/append", |b| {
        b.iter(|| {
            let sequence = log.append_mutation(black_box(delta));
            // Bound memory: drop the retained prefix once in a while
            // (amortized to nothing per iteration).
            if log.depth() >= 1 << 20 {
                log.prune_through(sequence);
            }
            black_box(sequence)
        });
    });
    group.finish();
}

/// Replaying a 1k-record churn tail into a standby registry.
fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");

    // Record a real churn tail by mutating a sink-armed registry. A
    // no-op `set_online` emits nothing, so loop on the log depth rather
    // than the op count to land on exactly 1k records.
    let log = SharedDeltaLog::new();
    let mut live = registry(10_000);
    live.set_delta_sink(Box::new(log.clone()));
    let mut i = 0usize;
    while log.depth() < 1_000 {
        let id = ProviderId::new((i as u64 * 37) % 10_000);
        if i.is_multiple_of(4) {
            live.set_online(id, !i.is_multiple_of(8))
                .expect("provider exists");
        } else {
            live.update_load(id, (i % 32) as f64 * 0.25, i % 6)
                .expect("provider exists");
        }
        i += 1;
    }
    let tail = log.collect_after(0).expect("nothing pruned");
    assert_eq!(tail.len(), 1_000);

    // Churn deltas only (no membership changes), so replaying the same tail
    // repeatedly into the same standby is valid and allocation-free.
    let mut standby = registry(10_000);
    group.bench_function("replay/churn_1k", |b| {
        b.iter(|| {
            for record in &tail {
                if let sbqa_replication::DeltaOp::Mutation(delta) = record.op {
                    delta.apply(&mut standby).expect("churn replays cleanly");
                }
            }
            black_box(standby.online_count())
        });
    });
    group.finish();
}

/// The acceptance series: load-update + mediation with the hook off vs on.
fn bench_submit_hook(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.5), Intention::new(0.2));
    let q = query();

    for size in [10_000usize, 100_000] {
        let mut plain = mediator(size);
        let mut tick = 0u64;
        group.bench_function(BenchmarkId::new("submit/hook_off", size), |b| {
            b.iter(|| {
                tick = tick.wrapping_add(1);
                let id = ProviderId::new(tick % size as u64);
                plain
                    .update_provider_load(id, (tick % 16) as f64 * 0.5, (tick % 4) as usize)
                    .expect("provider exists");
                let decision = plain.submit_in_place(black_box(&q), &oracle);
                black_box(decision.is_ok())
            });
        });

        let mut hooked = mediator(size);
        let log = SharedDeltaLog::new();
        hooked.set_delta_sink(Box::new(log.clone()));
        let mut tick = 0u64;
        group.bench_function(BenchmarkId::new("submit/hook_on", size), |b| {
            b.iter(|| {
                tick = tick.wrapping_add(1);
                let id = ProviderId::new(tick % size as u64);
                hooked
                    .update_provider_load(id, (tick % 16) as f64 * 0.5, (tick % 4) as usize)
                    .expect("provider exists");
                let decision = hooked.submit_in_place(black_box(&q), &oracle);
                // Bound the log the way a deployment does: checkpoints every
                // few batches keep it a few thousand records deep. Letting it
                // grow unboundedly instead would measure cache pollution from
                // a multi-megabyte log no real configuration retains.
                if log.depth() >= 1 << 12 {
                    log.prune_through(log.last_sequence());
                }
                black_box(decision.is_ok())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay, bench_submit_hook);
criterion_main!(benches);
