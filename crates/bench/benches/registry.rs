//! Micro-benchmark: the capability-indexed registry against the pre-refactor
//! clone-and-scan path, at realistic population sizes.
//!
//! Before the indexed engine, every mediation (1) scanned the whole provider
//! `HashMap`, cloning each capable snapshot into a fresh `Vec` and sorting it
//! (`capable_of`), then (2) cloned that vector *again* inside KnBest and
//! full-shuffled it to draw `k` — O(|P|) time and O(|P|) allocations per
//! query even when `kn = 4`. The `legacy` series below reproduces that path
//! verbatim so the `indexed` series (postings-list lookup + O(k) partial
//! Fisher–Yates into reused scratch) can be compared against it on the same
//! populations. The `candidates/*` series compare the single-capability
//! lookup against 2- and 4-way postings merges (`All` intersection / `Any`
//! union) so regressions in the merge cost — which should scale with
//! Σ|postings|, not |P| — are visible; the `candidates_vec/*` series
//! reproduce the pre-bitmap flat sorted `Vec<u32>` postings representation
//! (galloping binary-search intersection, k-way heap-less union) on the same
//! populations, which is the baseline the bitmap containers must beat at
//! 100k+ providers. The `mediate` group measures the full `Mediator` hot
//! path — `Pq` + KnBest + scoring + ranking + satisfaction bookkeeping — via
//! `submit_in_place` and `submit_batch`.
//!
//! The top population size is **1,000,000 providers**, the head-line scale
//! this registry targets: single-class resolution must stay sub-µs there
//! (the borrowed postings view costs O(1) regardless of population), and the
//! merge and mediation series must keep scaling with Σ|postings| of the
//! mentioned classes only. The O(|P|)-per-query `legacy` scan series stops
//! at 100k — at 1M it spends tens of milliseconds per query, which is the
//! point of its existence but a waste of benchmark wall-clock.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sbqa_core::allocator::{ProviderSnapshot, StaticIntentions};
use sbqa_core::knbest::{KnBestScratch, KnBestSelector};
use sbqa_core::{Mediator, ProviderRegistry};
use sbqa_types::{
    Capability, CapabilityRequirement, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

/// Number of capability classes the synthetic population spreads over.
const CLASSES: u8 = 8;

fn query(class: u8) -> Query {
    Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(class))
        .replication(2)
        .build()
}

/// A query requiring `width` consecutive classes starting at 3, with `All`
/// (intersection) or `Any` (union) semantics.
fn merge_query(width: u8, conjunctive: bool) -> Query {
    let set = CapabilitySet::from_capabilities(
        (0..width).map(|offset| Capability::new((3 + offset) % CLASSES)),
    );
    let required = if conjunctive {
        CapabilityRequirement::All(set)
    } else {
        CapabilityRequirement::Any(set)
    };
    Query::requiring(QueryId::new(1), ConsumerId::new(1), required)
        .replication(2)
        .build()
}

/// Overlapping capability profiles: every provider advertises its base class
/// plus, for a third of the population, the next class, for a fifth, the
/// class after that, and for a fifteenth, a third extra class — so 2-, 3-
/// and 4-way merges all see non-trivial (non-empty) intersections.
fn capabilities(i: usize) -> CapabilitySet {
    let base = (i % CLASSES as usize) as u8;
    let mut caps = CapabilitySet::singleton(Capability::new(base));
    if i.is_multiple_of(3) {
        caps.insert(Capability::new((base + 1) % CLASSES));
    }
    if i.is_multiple_of(5) {
        caps.insert(Capability::new((base + 2) % CLASSES));
    }
    if i.is_multiple_of(15) {
        caps.insert(Capability::new((base + 3) % CLASSES));
    }
    caps
}

fn snapshot(i: usize) -> ProviderSnapshot {
    ProviderSnapshot {
        id: ProviderId::new(i as u64),
        capabilities: capabilities(i),
        capacity: 1.0 + (i % 4) as f64,
        utilization: (i % 13) as f64 * 0.5,
        queue_length: i % 7,
        online: true,
    }
}

fn indexed_registry(n: usize) -> ProviderRegistry {
    let mut registry = ProviderRegistry::new();
    for i in 0..n {
        registry.register(ProviderId::new(i as u64), capabilities(i), 1.0);
    }
    registry
}

/// The pre-refactor representation: snapshots in a `HashMap`, `Pq` by scan.
fn legacy_registry(n: usize) -> HashMap<ProviderId, ProviderSnapshot> {
    (0..n)
        .map(|i| (ProviderId::new(i as u64), snapshot(i)))
        .collect()
}

/// The pre-refactor `capable_of`: scan, clone, sort.
fn legacy_capable_of(
    providers: &HashMap<ProviderId, ProviderSnapshot>,
    q: &Query,
) -> Vec<ProviderSnapshot> {
    let mut capable: Vec<ProviderSnapshot> = providers
        .values()
        .filter(|p| p.online && q.required.matched_by(p.capabilities))
        .copied()
        .collect();
    capable.sort_by_key(|p| p.id);
    capable
}

/// The pre-bitmap postings representation: one flat sorted `Vec<u32>` of
/// provider indices per capability class (lists hold only online providers,
/// as the old registry's did). The merge routines below mirror the old
/// registry's `All`/`Any` paths verbatim: a k-way forward-cursor
/// intersection driven by the shortest list, and a min-head cursor union —
/// the `Vec<u32>` baseline the bitmap containers must beat at 100k+.
struct VecPostings {
    classes: Vec<Vec<u32>>,
}

impl VecPostings {
    fn build(n: usize) -> Self {
        let mut classes = vec![Vec::new(); CLASSES as usize];
        for i in 0..n {
            let caps = capabilities(i);
            for class in 0..CLASSES {
                if caps.contains(Capability::new(class)) {
                    classes[class as usize].push(i as u32);
                }
            }
        }
        Self { classes }
    }

    /// `All` merge: advance every list's cursor past the driver's id.
    fn intersect(&self, classes: &[u8], out: &mut Vec<u32>) {
        out.clear();
        let driver = classes
            .iter()
            .map(|&c| c as usize)
            .min_by_key(|&c| self.classes[c].len())
            .expect("at least two classes");
        let mut cursors = [0usize; CLASSES as usize];
        'members: for &slot in &self.classes[driver] {
            for &class in classes {
                let class = class as usize;
                if class == driver {
                    continue;
                }
                let list = &self.classes[class];
                let cursor = &mut cursors[class];
                while *cursor < list.len() && list[*cursor] < slot {
                    *cursor += 1;
                }
                if *cursor == list.len() {
                    break 'members;
                }
                if list[*cursor] != slot {
                    continue 'members;
                }
            }
            out.push(slot);
        }
    }

    /// `Any` merge: emit the minimum head across the lists, advance matches.
    fn union(&self, classes: &[u8], out: &mut Vec<u32>) {
        out.clear();
        let mut cursors = [0usize; CLASSES as usize];
        loop {
            let mut next: Option<u32> = None;
            for &class in classes {
                let list = &self.classes[class as usize];
                if let Some(&head) = list.get(cursors[class as usize]) {
                    next = Some(next.map_or(head, |n: u32| n.min(head)));
                }
            }
            let Some(next) = next else { break };
            for &class in classes {
                let class = class as usize;
                if self.classes[class].get(cursors[class]) == Some(&next) {
                    cursors[class] += 1;
                }
            }
            out.push(next);
        }
    }
}

/// The pre-refactor KnBest: clone the candidates again, full-shuffle, sort.
fn legacy_knbest(
    candidates: &[ProviderSnapshot],
    k: usize,
    kn: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<ProviderSnapshot> {
    let mut pool: Vec<ProviderSnapshot> = candidates.to_vec();
    pool.shuffle(rng);
    pool.truncate(k);
    pool.sort_by(|a, b| {
        sbqa_types::f64_total_cmp(a.utilization, b.utilization).then_with(|| a.id.cmp(&b.id))
    });
    pool.truncate(kn);
    pool
}

fn bench_capable_of(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    let q = query(3);

    for size in [1_000usize, 10_000, 100_000, 1_000_000] {
        // The O(|P|)-per-query legacy scan stops at 100k; see module docs.
        if size <= 100_000 {
            let legacy = legacy_registry(size);
            group.bench_with_input(
                BenchmarkId::new("capable_of/legacy_scan_clone", size),
                &legacy,
                |b, legacy| {
                    let mut rng = ChaCha8Rng::seed_from_u64(42);
                    b.iter(|| {
                        let candidates = legacy_capable_of(black_box(legacy), &q);
                        let kn = legacy_knbest(&candidates, 20, 4, &mut rng);
                        black_box(kn.len())
                    });
                },
            );
        }

        let mut indexed = indexed_registry(size);
        group.bench_function(
            BenchmarkId::new("capable_of/indexed_zero_clone", size),
            |b| {
                let mut rng = ChaCha8Rng::seed_from_u64(42);
                let selector = KnBestSelector::new(20, 4);
                let mut scratch = KnBestScratch::new();
                b.iter(|| {
                    let candidates = indexed.candidates(black_box(&q));
                    let kn = selector.select_into(candidates, &mut rng, &mut scratch);
                    black_box(kn.len())
                });
            },
        );
    }

    group.finish();
}

/// Merge scaling: a single-capability lookup against 2- and 4-way postings
/// merges (intersection and union) on the same populations. The merge series
/// should track Σ|postings| of the mentioned classes — growing with the
/// requirement width and the population share per class — and stay far below
/// anything O(|P|): compare against `capable_of/legacy_scan_clone`, which
/// scans the full population per query.
fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");

    for size in [10_000usize, 100_000, 1_000_000] {
        let mut registry = indexed_registry(size);
        let cases = [
            ("candidates/single", merge_query(1, true)),
            ("candidates/all_2way", merge_query(2, true)),
            ("candidates/all_4way", merge_query(4, true)),
            ("candidates/any_2way", merge_query(2, false)),
            ("candidates/any_4way", merge_query(4, false)),
        ];
        for (label, q) in cases {
            group.bench_function(BenchmarkId::new(label, size), |b| {
                b.iter(|| {
                    let candidates = registry.candidates(black_box(&q));
                    black_box(candidates.len())
                });
            });
        }

        // The same merges over the pre-bitmap flat sorted `Vec<u32>` lists.
        // The class windows match `merge_query`: `width` consecutive classes
        // starting at 3.
        let vec_postings = VecPostings::build(size);
        let mut out = Vec::new();
        let vec_cases = [
            ("candidates_vec/all_2way", [3u8, 4].as_slice(), true),
            ("candidates_vec/all_4way", [3u8, 4, 5, 6].as_slice(), true),
            ("candidates_vec/any_2way", [3u8, 4].as_slice(), false),
            ("candidates_vec/any_4way", [3u8, 4, 5, 6].as_slice(), false),
        ];
        for (label, classes, conjunctive) in vec_cases {
            group.bench_function(BenchmarkId::new(label, size), |b| {
                b.iter(|| {
                    if conjunctive {
                        vec_postings.intersect(black_box(classes), &mut out);
                    } else {
                        vec_postings.union(black_box(classes), &mut out);
                    }
                    black_box(out.len())
                });
            });
        }
    }

    group.finish();
}

fn bench_mediate(c: &mut Criterion) {
    let mut group = c.benchmark_group("mediate");
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.3));

    for size in [10_000usize, 100_000, 1_000_000] {
        let build = |size: usize| {
            let mut mediator = Mediator::sbqa(SystemConfig::default(), 42).unwrap();
            for i in 0..size {
                mediator.register_provider(ProviderId::new(i as u64), capabilities(i), 1.0);
            }
            mediator.register_consumer(ConsumerId::new(1));
            mediator
        };

        let mut mediator = build(size);
        group.bench_function(BenchmarkId::new("submit_in_place", size), |b| {
            let q = query(3);
            b.iter(|| {
                let decision = mediator.submit_in_place(black_box(&q), &oracle).unwrap();
                black_box(decision.selected.len())
            });
        });

        let mut mediator = build(size);
        let batch: Vec<Query> = (0..64u8)
            .map(|i| {
                Query::builder(
                    QueryId::new(u64::from(i)),
                    ConsumerId::new(1),
                    Capability::new(i % CLASSES),
                )
                .replication(2)
                .build()
            })
            .collect();
        group.bench_function(BenchmarkId::new("submit_batch/64", size), |b| {
            b.iter(|| {
                let mut selected = 0usize;
                let report = mediator.submit_batch(black_box(&batch), &oracle, |_, _, result| {
                    if let Ok(decision) = result {
                        selected += decision.selected.len();
                    }
                });
                black_box((report.mediated, selected))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_capable_of, bench_merge, bench_mediate);
criterion_main!(benches);
