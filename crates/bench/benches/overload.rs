//! Micro-benchmarks of the overload machinery.
//!
//! Three costs the degradation ladder adds to the ingest path, each
//! measured directly so regressions show up in `BENCH_overload.json`:
//!
//! * `ring/push_pop` — one push + one pop through the bounded ring
//!   (uncontended): the per-query cost of the bounded queue versus the
//!   seed's unbounded mpsc.
//! * `ladder/observe` — one admission verdict: a leak computation, a tier
//!   adjustment and a counter bump. This runs once per enqueued query, so
//!   it must stay trivially cheap.
//! * `submit/{normal,shrunk,baseline}` — one mediation at each admission
//!   tier against a 10k-provider registry: what a degraded query costs
//!   relative to a full-quality one. Baseline-tier mediation skips scoring
//!   and RNG entirely and should be the cheapest of the three.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sbqa_core::{
    DegradationConfig, DegradationLadder, DegradationTier, Mediator, StaticIntentions,
};
use sbqa_service::BoundedRing;
use sbqa_types::{
    Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query, QueryId, SystemConfig,
    VirtualTime,
};

/// Number of capability classes the synthetic population spreads over.
const CLASSES: u8 = 8;

fn capabilities(i: usize) -> CapabilitySet {
    let base = (i % CLASSES as usize) as u8;
    let mut caps = CapabilitySet::singleton(Capability::new(base));
    if i.is_multiple_of(3) {
        caps.insert(Capability::new((base + 1) % CLASSES));
    }
    caps
}

fn mediator(n: usize) -> Mediator {
    let mut mediator = Mediator::sbqa(SystemConfig::default().with_knbest(20, 4), 42)
        .expect("default config validates");
    for i in 0..n {
        mediator.register_provider(ProviderId::new(i as u64), capabilities(i), 1.0);
    }
    mediator.register_consumer(ConsumerId::new(1));
    mediator
}

fn query(id: u64) -> Query {
    Query::builder(
        QueryId::new(id),
        ConsumerId::new(1),
        Capability::new((id % u64::from(CLASSES)) as u8),
    )
    .issued_at(VirtualTime::new(id as f64 * 1e-3))
    .build()
}

fn bench_ring(c: &mut Criterion) {
    let ring: BoundedRing<u64> = BoundedRing::new(1_024);
    c.bench_function("ring/push_pop", |b| {
        b.iter(|| {
            ring.try_push(black_box(7u64)).expect("ring has room");
            black_box(ring.try_pop())
        });
    });
}

fn bench_ladder(c: &mut Criterion) {
    let mut ladder = DegradationLadder::new(DegradationConfig::default()).expect("valid config");
    let mut tick = 0u64;
    c.bench_function("ladder/observe", |b| {
        b.iter(|| {
            tick += 1;
            black_box(ladder.observe_arrival(VirtualTime::new(tick as f64 * 1e-3)))
        });
    });
}

fn bench_tiered_submit(c: &mut Criterion) {
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.6));
    let mut group = c.benchmark_group("submit");
    for (label, tier) in [
        ("normal", DegradationTier::Normal),
        ("shrunk", DegradationTier::ShrinkKn),
        ("baseline", DegradationTier::Baseline),
    ] {
        let mut mediator = mediator(10_000);
        mediator.set_degraded_kn_floor(2);
        mediator.set_degradation_tier(tier);
        let mut id = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                id += 1;
                let q = query(id);
                black_box(mediator.submit_in_place(&q, &oracle).is_ok())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring, bench_ladder, bench_tiered_submit);
criterion_main!(benches);
