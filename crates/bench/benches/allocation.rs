//! Micro-benchmark: end-to-end cost of one allocation decision for every
//! technique, on identical candidate sets.
//!
//! This is the per-query overhead a mediator pays for being interest-aware:
//! SbQA consults the oracle `2·kn` times and scores/ranks, the baselines just
//! sort. The series over `|Pq|` shows how each technique scales with the
//! provider population.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_baselines::build_allocator;
use sbqa_core::allocator::{AllocationDecision, Candidates, ProviderSnapshot, StaticIntentions};
use sbqa_satisfaction::SatisfactionRegistry;
use sbqa_types::{
    AllocationPolicyKind, Capability, CapabilitySet, ConsumerId, Intention, ProviderId, Query,
    QueryId, SystemConfig,
};

fn candidates(n: usize) -> Vec<ProviderSnapshot> {
    (0..n)
        .map(|i| ProviderSnapshot {
            id: ProviderId::new(i as u64),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0 + (i % 4) as f64,
            utilization: (i % 13) as f64 * 0.5,
            queue_length: i % 7,
            online: true,
        })
        .collect()
}

fn query(replication: usize) -> Query {
    Query::builder(QueryId::new(1), ConsumerId::new(1), Capability::new(0))
        .replication(replication)
        .work_units(1.0)
        .build()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_decision");
    let config = SystemConfig::default();
    let satisfaction = SatisfactionRegistry::new(config.satisfaction_window);
    let oracle = StaticIntentions::new().with_defaults(Intention::new(0.4), Intention::new(0.3));

    for kind in AllocationPolicyKind::paper_policies() {
        for size in [50usize, 200, 1000] {
            let pool = candidates(size);
            group.bench_with_input(BenchmarkId::new(kind.label(), size), &pool, |b, pool| {
                let mut allocator = build_allocator(kind, &config, 42).unwrap();
                let mut decision = AllocationDecision::default();
                let q = query(2);
                b.iter(|| {
                    allocator
                        .allocate_into(
                            black_box(&q),
                            Candidates::from_slice(black_box(pool)),
                            &oracle,
                            &satisfaction,
                            &mut decision,
                        )
                        .unwrap();
                    black_box(&decision);
                });
            });
        }
    }

    // SbQA sensitivity to kn: the intention-gathering and scoring work grows
    // linearly with kn, the KnBest shuffle with |Pq|.
    for kn in [2usize, 4, 16, 64] {
        let pool = candidates(1000);
        let config = SystemConfig::default().with_knbest(kn.max(20), kn);
        group.bench_with_input(BenchmarkId::new("SbQA_by_kn", kn), &pool, |b, pool| {
            let mut allocator = build_allocator(AllocationPolicyKind::SbQA, &config, 42).unwrap();
            let mut decision = AllocationDecision::default();
            let q = query(2);
            b.iter(|| {
                allocator
                    .allocate_into(
                        black_box(&q),
                        Candidates::from_slice(black_box(pool)),
                        &oracle,
                        &satisfaction,
                        &mut decision,
                    )
                    .unwrap();
                black_box(&decision);
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
