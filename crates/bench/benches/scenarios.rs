//! Macro-benchmark: wall-clock cost of simulating the paper's scenarios at a
//! reduced scale, one measurement per scenario family.
//!
//! These are *not* the experiments themselves (run the `scenarioN` binaries
//! for those); they track the cost of the experiment harness so that
//! regressions in the simulator or the allocators show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sbqa_boinc::{Scenario, ScenarioId};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_simulation");
    group.sample_size(10);

    // One captive comparison (S3) and one autonomous comparison (S4), at a
    // reduced scale so a bench run stays in seconds.
    for id in [ScenarioId::S3, ScenarioId::S4] {
        group.bench_with_input(
            BenchmarkId::new("quick", format!("scenario{}", id.number())),
            &id,
            |b, id| {
                b.iter(|| {
                    Scenario::sized(*id, 30, 60.0, 8.0)
                        .run()
                        .expect("scenario runs")
                });
            },
        );
    }

    // A single-technique run to isolate simulator cost from comparison cost.
    group.bench_function("single_run/sbqa_40_volunteers", |b| {
        b.iter(|| {
            let scenario = Scenario::sized(ScenarioId::S1, 40, 60.0, 8.0);
            let population = sbqa_boinc::BoincPopulation::generate(&scenario.population);
            let allocator = sbqa_baselines::build_allocator(
                sbqa_types::AllocationPolicyKind::SbQA,
                &scenario.sim.system,
                scenario.sim.seed,
            )
            .unwrap();
            sbqa_sim::SimulationBuilder::new(scenario.sim.clone())
                .allocator(allocator)
                .consumers(population.consumers.iter().cloned())
                .providers(population.providers.iter().cloned())
                .run()
                .expect("simulation runs")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
