//! Micro-benchmark: KnBest pre-selection cost as a function of the candidate
//! population size (`|Pq|`) and of `k`/`kn`. KnBest's point is precisely to
//! keep the per-query work bounded even when thousands of providers are
//! capable, so the interesting series is how flat the cost stays as `|Pq|`
//! grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sbqa_core::allocator::{Candidates, ProviderSnapshot};
use sbqa_core::knbest::{KnBestScratch, KnBestSelector};
use sbqa_types::{CapabilitySet, ProviderId};

fn population(n: usize) -> Vec<ProviderSnapshot> {
    (0..n)
        .map(|i| ProviderSnapshot {
            id: ProviderId::new(i as u64),
            capabilities: CapabilitySet::ALL,
            capacity: 1.0 + (i % 4) as f64,
            utilization: (i % 17) as f64,
            queue_length: i % 5,
            online: true,
        })
        .collect()
}

fn bench_knbest(c: &mut Criterion) {
    let mut group = c.benchmark_group("knbest");

    for size in [16usize, 64, 256, 1024, 4096] {
        let candidates = population(size);
        group.bench_with_input(
            BenchmarkId::new("select/k=20,kn=4", size),
            &candidates,
            |b, candidates| {
                let selector = KnBestSelector::new(20, 4);
                let mut rng = StdRng::seed_from_u64(7);
                let mut scratch = KnBestScratch::new();
                b.iter(|| {
                    let kn = selector.select_into(
                        Candidates::from_slice(black_box(candidates)),
                        &mut rng,
                        &mut scratch,
                    );
                    black_box(kn.len())
                });
            },
        );
    }

    for (k, kn) in [(5usize, 2usize), (20, 4), (50, 16), (200, 64)] {
        let candidates = population(1024);
        group.bench_with_input(
            BenchmarkId::new("select/pq=1024", format!("k={k},kn={kn}")),
            &candidates,
            |b, candidates| {
                let selector = KnBestSelector::new(k, kn);
                let mut rng = StdRng::seed_from_u64(7);
                let mut scratch = KnBestScratch::new();
                b.iter(|| {
                    let kn = selector.select_into(
                        Candidates::from_slice(black_box(candidates)),
                        &mut rng,
                        &mut scratch,
                    );
                    black_box(kn.len())
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_knbest);
criterion_main!(benches);
