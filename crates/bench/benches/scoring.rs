//! Micro-benchmark: cost of one SQLB score evaluation (Definition 3) and of
//! the ω resolution (Equation 2). These sit on the mediation hot path — SbQA
//! evaluates them `kn` times per query — so their cost bounds the mediation
//! throughput reported in the allocation bench.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sbqa_core::scoring::{provider_score, resolve_omega};
use sbqa_types::{Intention, OmegaPolicy, Satisfaction};

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring");

    group.bench_function("provider_score/both_positive", |b| {
        b.iter(|| {
            provider_score(
                black_box(Intention::new(0.7)),
                black_box(Intention::new(0.4)),
                black_box(0.6),
                black_box(1.0),
            )
        });
    });

    group.bench_function("provider_score/negative_branch", |b| {
        b.iter(|| {
            provider_score(
                black_box(Intention::new(-0.7)),
                black_box(Intention::new(0.4)),
                black_box(0.6),
                black_box(1.0),
            )
        });
    });

    group.bench_function("resolve_omega/adaptive", |b| {
        b.iter(|| {
            resolve_omega(
                black_box(OmegaPolicy::Adaptive),
                black_box(Satisfaction::new(0.8)),
                black_box(Satisfaction::new(0.3)),
            )
        });
    });

    group.bench_function("score_batch/kn=16", |b| {
        let intentions: Vec<(Intention, Intention)> = (0..16)
            .map(|i| {
                (
                    Intention::new((i as f64) / 16.0 - 0.5),
                    Intention::new(0.5 - (i as f64) / 32.0),
                )
            })
            .collect();
        b.iter(|| {
            intentions
                .iter()
                .map(|(pi, ci)| provider_score(*pi, *ci, black_box(0.5), 1.0))
                .sum::<f64>()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
